//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! and `Bencher::iter`. Timing is wall-clock via `std::time::Instant`
//! with a short warm-up, a batch-size calibration pass, and a
//! median-of-samples report — much simpler than upstream's statistics,
//! but stable enough to compare hot paths within one run.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            measurement_time: Duration::from_millis(900),
            warm_up_time: Duration::from_millis(150),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed samples.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up duration before sampling.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            config: self.clone(),
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }
}

/// Per-benchmark measurement context.
#[derive(Debug)]
pub struct Bencher {
    config: Criterion,
    /// Per-iteration time of each sample, in nanoseconds.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`, called in calibrated batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate the batch size so one batch lasts
        // roughly measurement_time / sample_size.
        let warm_until = Instant::now() + self.config.warm_up_time;
        let mut warm_iters = 0u64;
        let warm_started = Instant::now();
        while Instant::now() < warm_until {
            hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_started.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let slot = self.config.measurement_time.as_secs_f64() / self.config.sample_size as f64;
        let batch = ((slot / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);
        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            let nanos = start.elapsed().as_secs_f64() * 1e9;
            self.samples.push(nanos / batch as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let median = sorted[sorted.len() / 2];
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        println!(
            "{id:<40} time: [{} {} {}]",
            format_ns(lo),
            format_ns(median),
            format_ns(hi)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        quick().bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            });
        });
        assert!(calls > 0, "routine never ran");
    }

    #[test]
    fn group_macro_compiles_both_forms() {
        fn noop(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        }
        criterion_group! {
            name = configured;
            config = super::tests::quick();
            targets = noop
        }
        criterion_group!(plain, noop);
        // Only the configured (fast) group actually runs in the test.
        configured();
        let _ = plain;
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with("s"));
    }
}
