//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Differences from upstream, deliberately accepted:
//! - case generation is **deterministic**: case `i` of every test uses a
//!   fixed seed derived from `i`, so failures reproduce without a
//!   persistence file;
//! - no integrated shrinking: a failing case reports the panic from the
//!   property body directly (`prop_assert!` panics rather than returning
//!   `Err`). Harnesses that replay concrete op sequences shrink them
//!   explicitly with [`shrink::minimize_sequence`];
//! - only the strategies this workspace uses exist: ranges, `any`,
//!   `prop::collection::vec`, `prop::option::of`, and `prop_map`.
//!
//! The number of cases per property honours `ProptestConfig::with_cases`
//! and the `PROPTEST_CASES` environment variable (upstream's knob).

use rand::rngs::SmallRng;
use rand::{Rng, SampleRange, SeedableRng};
use std::marker::PhantomData;

/// The per-case random source handed to strategies.
pub type TestRng = SmallRng;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Drives a property over its cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Builds a runner for `config`.
    #[must_use]
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs the property body once per case with a case-specific rng.
    pub fn run_cases<F: FnMut(&mut TestRng)>(&mut self, mut body: F) {
        for case in 0..u64::from(self.config.cases) {
            // Fixed per-case seed: failures name a reproducible case.
            let mut rng =
                TestRng::seed_from_u64(0x5eed_cafe ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            body(&mut rng);
        }
    }
}

/// A generator of values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_single(rng)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection length specification accepted by [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some(inner)` about three times out of four, otherwise `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prop {
    //! Namespace mirror of upstream's `prop` module.
    pub use crate::collection;
    pub use crate::option;
}

pub mod shrink {
    //! Explicit sequence shrinking (delta debugging).
    //!
    //! Upstream proptest shrinks through its strategy tree; this stand-in
    //! instead offers one generic minimizer for harnesses whose failing
    //! input is a *replayable sequence of operations*: greedily remove
    //! chunks (halves, then quarters, … down to single elements) as long
    //! as the predicate keeps failing, until a fixpoint.

    /// Shrinks `input` to a (locally) minimal subsequence for which
    /// `still_fails` returns `true`.
    ///
    /// `still_fails` must be a pure predicate of the subsequence and must
    /// hold for `input` itself; the returned subsequence preserves the
    /// relative order of the surviving elements, and removing any single
    /// remaining element makes the predicate pass (1-minimality).
    ///
    /// # Panics
    ///
    /// Panics if `still_fails(input)` is `false` (nothing to shrink).
    pub fn minimize_sequence<T: Clone, F: FnMut(&[T]) -> bool>(
        input: &[T],
        mut still_fails: F,
    ) -> Vec<T> {
        assert!(
            still_fails(input),
            "minimize_sequence: the input does not fail"
        );
        let mut current: Vec<T> = input.to_vec();
        let mut chunk = current.len().div_ceil(2).max(1);
        loop {
            let mut removed_any = false;
            let mut start = 0;
            while start < current.len() && current.len() > 1 {
                let end = (start + chunk).min(current.len());
                let mut candidate = Vec::with_capacity(current.len() - (end - start));
                candidate.extend_from_slice(&current[..start]);
                candidate.extend_from_slice(&current[end..]);
                if !candidate.is_empty() && still_fails(&candidate) {
                    current = candidate;
                    removed_any = true;
                    // Re-test the same offset: it now holds new elements.
                } else {
                    start = end;
                }
            }
            if chunk == 1 && !removed_any {
                return current;
            }
            if !removed_any {
                chunk = (chunk / 2).max(1);
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::minimize_sequence;

        #[test]
        fn shrinks_to_single_culprit() {
            let input: Vec<u32> = (0..100).collect();
            let out = minimize_sequence(&input, |s| s.contains(&73));
            assert_eq!(out, vec![73]);
        }

        #[test]
        fn preserves_order_of_interacting_elements() {
            // Fails only when 7 appears before 42.
            let input: Vec<u32> = vec![1, 7, 9, 13, 42, 50];
            let fails = |s: &[u32]| {
                let a = s.iter().position(|&x| x == 7);
                let b = s.iter().position(|&x| x == 42);
                matches!((a, b), (Some(i), Some(j)) if i < j)
            };
            let out = minimize_sequence(&input, fails);
            assert_eq!(out, vec![7, 42]);
        }

        #[test]
        fn result_is_one_minimal() {
            let input: Vec<u32> = (0..64).collect();
            // Fails when at least three even elements are present.
            let fails = |s: &[u32]| s.iter().filter(|&&x| x % 2 == 0).count() >= 3;
            let out = minimize_sequence(&input, fails);
            assert!(fails(&out));
            for i in 0..out.len() {
                let mut smaller = out.clone();
                smaller.remove(i);
                assert!(!fails(&smaller), "removing index {i} should pass");
            }
        }

        #[test]
        fn already_minimal_input_is_returned_unchanged() {
            let out = minimize_sequence(&[5u8], |s| !s.is_empty());
            assert_eq!(out, vec![5]);
        }

        #[test]
        #[should_panic(expected = "does not fail")]
        fn rejects_passing_input() {
            let _ = minimize_sequence(&[1u8, 2, 3], |_| false);
        }
    }
}

pub mod prelude {
    //! The usual glob import.
    pub use crate::{any, prop, Arbitrary, ProptestConfig, Strategy, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each argument is drawn from its strategy
/// once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::new($cfg);
                runner.run_cases(|__proptest_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)*
                    $body
                });
            }
        )*
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts two values differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -4i32..=4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u8..8, 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 8));
        }

        #[test]
        fn prop_map_applies(s in (0u8..4).prop_map(|b| b * 10)) {
            prop_assert_eq!(s % 10, 0);
            prop_assert!(s <= 30);
        }

        #[test]
        fn assume_skips(a in any::<u8>(), b in any::<u8>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let draw = || {
            let mut out = Vec::new();
            let mut runner = TestRunner::new(ProptestConfig::with_cases(10));
            runner.run_cases(|rng| out.push(any::<u64>().generate(rng)));
            out
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn option_of_produces_both_arms() {
        let strat = crate::option::of(0u8..4);
        let mut some = 0;
        let mut none = 0;
        let mut runner = TestRunner::new(ProptestConfig::with_cases(200));
        runner.run_cases(|rng| match strat.generate(rng) {
            Some(_) => some += 1,
            None => none += 1,
        });
        assert!(some > 0 && none > 0);
    }
}
