//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The container image has no registry access, so the workspace
//! pins its `rand` dependency to this local crate.
//!
//! Scope (see the workspace audit in CHANGES.md): `rngs::SmallRng`,
//! `SeedableRng::{from_seed, seed_from_u64}`, `Rng::{gen, gen_range,
//! gen_bool}` over the primitive types the simulator samples, and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded via
//! SplitMix64 — a different stream than upstream `SmallRng`, but every
//! consumer in this workspace only requires determinism for a fixed
//! seed, not any particular stream.

/// Core infallible generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// SplitMix64 step: the standard seeding mixer for xoshiro generators.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic construction from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state, for exact-position snapshots.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact saved position.
        ///
        /// An all-zero state (invalid for xoshiro) is remapped the same
        /// way `from_seed` remaps it, so any input yields a valid
        /// generator; states obtained from [`SmallRng::state`] are
        /// restored verbatim.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <SmallRng as SeedableRng>::from_seed([0u8; 32]);
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro state must not be all-zero.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xD1B5_4A32_D192_ED03, 1, 2];
            }
            SmallRng { s }
        }
    }
}

pub mod distributions {
    use super::Rng;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for each primitive: uniform over all
    /// values for integers and `bool`, uniform in `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    macro_rules! standard_int {
        ($($t:ty),* $(,)?) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
            (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
        }
    }

    impl Distribution<i128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i128 {
            let v: u128 = self.sample(rng);
            v as i128
        }
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty => $unit:expr),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = $unit(rng);
                self.start + (self.end - self.start) * unit
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = $unit(rng);
                start + (end - start) * unit
            }
        }
    )*};
}
float_sample_range!(
    f64 => |rng: &mut R| (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64),
    f32 => |rng: &mut R| (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32),
);

/// Convenience sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::Rng;

    /// Slice extensions backed by a generator.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(19);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = SmallRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn state_round_trip_resumes_the_exact_stream() {
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..100 {
            rng.next_u64();
        }
        let saved = rng.state();
        let tail: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
        let mut resumed = SmallRng::from_state(saved);
        let replayed: Vec<u64> = (0..32).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, replayed);
    }

    #[test]
    fn from_state_remaps_the_all_zero_state() {
        let mut rng = SmallRng::from_state([0; 4]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }
}
