//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The real serde is a zero-copy framework parameterized over
//! serializer/deserializer implementations; this workspace only ever
//! derives `Serialize`/`Deserialize` on plain data types and round-trips
//! them through `serde_json`. That permits a much smaller model: every
//! type converts to and from a self-describing [`Value`] tree, and
//! `serde_json` is just a text encoding of that tree.
//!
//! Encoding conventions (mirroring serde's defaults closely enough for
//! lossless round-trips):
//! - named-field structs → `Value::Map`
//! - newtype structs → the inner value
//! - tuple structs / tuples → `Value::Seq`
//! - unit enum variants → `Value::Str(variant)`
//! - data-carrying variants → externally tagged `Value::Map`
//! - `Option`: `None` → `Value::Null`, `Some(v)` → `v`
//! - ordered maps → `Value::Seq` of two-element `Value::Seq` pairs
//!   (serde_json requires string keys; encoding pairs instead keeps
//!   non-string keys like `InterruptKind` lossless)

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / `None` / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Any integer (wide enough for `u64` and `i64` losslessly).
    Int(i128),
    /// A binary floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (struct fields, enum tags).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Views this value as a struct-style map.
    pub fn as_map(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(entries) => Ok(entries),
            other => Err(Error::custom(format_args!(
                "expected map, found {}",
                other.kind()
            ))),
        }
    }

    /// Views this value as a sequence.
    pub fn as_seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::custom(format_args!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }

    /// Views this value as a string.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::custom(format_args!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Looks up a struct field in a serialized map (derive support).
pub fn get_field<'a>(map: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format_args!("missing field `{name}`")))
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self`.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes a value of this type.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

pub mod de {
    //! Deserialization support (mirrors `serde::de`).
    pub use super::Error;

    /// A type deserializable without borrowing from the input. Every
    /// [`Deserialize`](super::Deserialize) type qualifies in this model.
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

pub mod ser {
    //! Serialization support (mirrors `serde::ser`).
    pub use super::Error;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format_args!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        Error::custom(format_args!(
                            "integer {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    other => Err(Error::custom(format_args!(
                        "expected integer, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    // A float whose shortest decimal form has no
                    // fractional digits parses back as an integer.
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::custom(format_args!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()?
            .iter()
            .map(|pair| {
                let pair = pair.as_seq()?;
                if pair.len() != 2 {
                    return Err(Error::custom("map entry is not a [key, value] pair"));
                }
                Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
            })
            .collect()
    }
}

impl<T: Serialize> Serialize for Reverse<T> {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl<T: Deserialize> Deserialize for Reverse<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Reverse)
    }
}

impl<T: Serialize + Ord + Clone> Serialize for BinaryHeap<T> {
    fn to_value(&self) -> Value {
        // Heap iteration order is unspecified; serialize sorted so equal
        // heaps always produce identical bytes.
        Value::Seq(
            self.clone()
                .into_sorted_vec()
                .iter()
                .map(Serialize::to_value)
                .collect(),
        )
    }
}

impl<T: Deserialize + Ord> Deserialize for BinaryHeap<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_seq()?.iter().map(T::from_value).collect()
    }
}

macro_rules! impl_tuple {
    ($(($($idx:tt $t:ident),+)),* $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let seq = value.as_seq()?;
                let arity = [$($idx),+].len();
                if seq.len() != arity {
                    return Err(Error::custom(format_args!(
                        "expected tuple of {arity} elements, found {}",
                        seq.len()
                    )));
                }
                Ok(($($t::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let seq = value.as_seq()?;
        if seq.len() != N {
            return Err(Error::custom(format_args!(
                "expected array of {N} elements, found {}",
                seq.len()
            )));
        }
        let items: Vec<T> = seq.iter().map(T::from_value).collect::<Result<_, _>>()?;
        items
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::custom(format_args!(
                "expected null, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let back = T::from_value(&v.to_value()).expect("from_value");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round(true);
        round(0xDEAD_BEEF_DEAD_BEEFu64);
        round(-42i64);
        round(3.5f64);
        round(1.25f32);
        round(String::from("hello \"world\""));
        round(());
    }

    #[test]
    fn containers_round_trip() {
        round(vec![1u32, 2, 3]);
        round(Some(7u8));
        round(None::<u8>);
        round((1usize, 2.5f64, -3i32));
        let mut map = BTreeMap::new();
        map.insert(String::from("a"), (1usize, 2.0f64));
        map.insert(String::from("b"), (3usize, 4.0f64));
        round(map);
    }

    #[test]
    fn out_of_range_integer_errors() {
        let v = Value::Int(300);
        assert!(u8::from_value(&v).is_err());
    }

    #[test]
    fn missing_field_errors() {
        let map = vec![(String::from("a"), Value::Int(1))];
        assert!(get_field(&map, "b").is_err());
        assert!(get_field(&map, "a").is_ok());
    }
}
