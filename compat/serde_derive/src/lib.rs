//! Derive macros for the offline serde stand-in.
//!
//! Parses `struct`/`enum` definitions directly from the raw
//! `proc_macro` token stream (no syn/quote available offline) and emits
//! `serde::Serialize` / `serde::Deserialize` impls against the
//! Value-tree model. Supports the shapes this workspace actually
//! derives on: named-field structs, tuple/newtype/unit structs, enums
//! with unit / newtype / tuple / struct variants, and simple type
//! parameters (`struct TimedRun<T> { ... }`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its identifier plus whether `#[serde(default)]`
/// marks it optional on deserialization (a missing map entry falls back
/// to `Default::default()` — the usual forward-compatibility escape
/// hatch for config structs that grow new flags).
#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug, Clone)]
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    /// Type parameter identifiers, in declaration order.
    generics: Vec<String>,
    shape: Shape,
}

/// Consumes leading outer attributes (`#[...]`, including expanded doc
/// comments) starting at `i`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while *i + 1 < tokens.len() {
        match (&tokens[*i], &tokens[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

/// Consumes leading outer attributes like [`skip_attributes`], but also
/// reports whether one of them was `#[serde(default)]`.
fn take_field_attributes(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    while *i + 1 < tokens.len() {
        match (&tokens[*i], &tokens[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    let is_default_arg = |t: &TokenTree| matches!(t, TokenTree::Ident(a) if a.to_string() == "default");
                    if id.to_string() == "serde"
                        && args.delimiter() == Delimiter::Parenthesis
                        && args.stream().into_iter().any(|t| is_default_arg(&t))
                    {
                        default = true;
                    }
                }
                *i += 2;
            }
            _ => break,
        }
    }
    default
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parses a generics declaration starting at the `<` at `i`, returning
/// the type-parameter names. Lifetimes are skipped; bounds are skipped.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    let mut depth = 0usize;
    // Tracks whether the next ident at depth 1 starts a parameter (true
    // right after `<` or a depth-1 comma).
    let mut at_param_start = false;
    let mut in_lifetime = false;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    if depth == 1 {
                        at_param_start = true;
                    }
                }
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        *i += 1;
                        break;
                    }
                }
                ',' if depth == 1 => at_param_start = true,
                ':' if depth == 1 => at_param_start = false,
                '\'' => in_lifetime = true,
                _ => {}
            },
            TokenTree::Ident(id) => {
                if in_lifetime {
                    in_lifetime = false;
                } else if depth == 1 && at_param_start {
                    let name = id.to_string();
                    if name == "const" {
                        // `const N: usize` — the following ident is a
                        // const parameter, not a type parameter.
                        at_param_start = false;
                    } else {
                        params.push(name);
                        at_param_start = false;
                    }
                }
            }
            _ => {}
        }
        *i += 1;
    }
    params
}

/// Parses the contents of a `{ ... }` field block into fields.
fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let default = take_field_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(Field {
            name: id.to_string(),
            default,
        });
        i += 1;
        // Skip `:` and the type, up to a top-level comma. Generic
        // arguments in the type nest via `<`/`>` puncts; grouped tokens
        // (parens for tuples, brackets for arrays) arrive as single
        // atoms, so only angle-bracket depth needs tracking.
        let mut angle_depth = 0isize;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant `( ... )` block.
fn count_tuple_fields(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle_depth = 0isize;
    for (idx, token) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                // A separating comma (a trailing one is ignored).
                ',' if angle_depth == 0 && idx + 1 < tokens.len() => count += 1,
                _ => {}
            }
        }
    }
    count
}

/// Parses the contents of an enum `{ ... }` block into variants.
fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip any explicit discriminant, up to the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;
    let generics = match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => parse_generics(&tokens, &mut i),
        _ => Vec::new(),
    };
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            _ => Shape::Struct(Fields::Unit),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("derive target must be a struct or enum, found `{other}`"),
    };
    Item {
        name,
        generics,
        shape,
    }
}

/// Renders `impl<T: Bound, ...> Trait for Name<T, ...>` header pieces:
/// `(impl_generics, ty_generics)`.
fn generics_split(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        return (String::new(), String::new());
    }
    let impl_generics = format!(
        "<{}>",
        item.generics
            .iter()
            .map(|p| format!("{p}: {bound}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let ty_generics = format!("<{}>", item.generics.join(", "));
    (impl_generics, ty_generics)
}

fn serialize_body(item: &Item) -> String {
    let name = &item.name;
    match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let entries = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Map(::std::vec![{entries}])")
        }
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Seq(::std::vec![{items}])")
        }
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        Fields::Tuple(n) => {
                            let binds = (0..*n)
                                .map(|i| format!("f{i}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items = (0..*n)
                                    .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                    .collect::<Vec<_>>()
                                    .join(", ");
                                format!("::serde::Value::Seq(::std::vec![{items}])")
                            };
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), {inner})]),"
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let entries = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Map(::std::vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n            ");
            format!("match self {{\n            {arms}\n        }}")
        }
    }
}

/// Renders one named field's deserialization initializer. A
/// `#[serde(default)]` field tolerates a missing map entry by falling
/// back to `Default::default()`; a present entry must still parse.
fn named_field_init(f: &Field) -> String {
    let name = &f.name;
    if f.default {
        format!(
            "{name}: match ::serde::get_field(map, \"{name}\") {{\
             ::std::result::Result::Ok(v) => ::serde::Deserialize::from_value(v)?,\
             ::std::result::Result::Err(_) => ::std::default::Default::default(),}},"
        )
    } else {
        format!(
            "{name}: ::serde::Deserialize::from_value(\
             ::serde::get_field(map, \"{name}\")?)?,"
        )
    }
}

fn deserialize_body(item: &Item) -> String {
    let name = &item.name;
    match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let inits = fields
                .iter()
                .map(named_field_init)
                .collect::<Vec<_>>()
                .join("\n            ");
            format!(
                "let map = value.as_map()?;\n        \
                 ::std::result::Result::Ok({name} {{\n            {inits}\n        }})"
            )
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let seq = value.as_seq()?;\n        \
                 if seq.len() != {n} {{\n            \
                 return ::std::result::Result::Err(::serde::Error::custom(\
                 \"wrong tuple struct arity for {name}\"));\n        }}\n        \
                 ::std::result::Result::Ok({name}({items}))"
            )
        }
        Shape::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect::<Vec<_>>()
                .join("\n                ");
            let data_arms = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let items = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "\"{vname}\" => {{\n                    \
                                 let seq = inner.as_seq()?;\n                    \
                                 if seq.len() != {n} {{\n                        \
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"wrong arity for variant {vname}\"));\n                    }}\n                    \
                                 ::std::result::Result::Ok({name}::{vname}({items}))\n                }}"
                            )
                        }
                        Fields::Named(fields) => {
                            let inits = fields
                                .iter()
                                .map(named_field_init)
                                .collect::<Vec<_>>()
                                .join(" ");
                            format!(
                                "\"{vname}\" => {{\n                    \
                                 let map = inner.as_map()?;\n                    \
                                 ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n                }}"
                            )
                        }
                        Fields::Unit => unreachable!(),
                    }
                })
                .collect::<Vec<_>>()
                .join("\n                ");
            format!(
                "match value {{\n            \
                 ::serde::Value::Str(s) => match s.as_str() {{\n                \
                 {unit_arms}\n                \
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown unit variant `{{other}}` for {name}\"))),\n            }},\n            \
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n                \
                 let (tag, inner) = &entries[0];\n                \
                 match tag.as_str() {{\n                \
                 {data_arms}\n                \
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n                }}\n            }}\n            \
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"invalid enum encoding for {name}\")),\n        }}"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (impl_generics, ty_generics) = generics_split(&item, "::serde::Serialize");
    let name = &item.name;
    let body = serialize_body(&item);
    let code = format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n    \
         fn to_value(&self) -> ::serde::Value {{\n        \
         {body}\n    \
         }}\n\
         }}\n"
    );
    code.parse().expect("derived Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (impl_generics, ty_generics) = generics_split(&item, "::serde::Deserialize");
    let name = &item.name;
    let body = deserialize_body(&item);
    let code = format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n    \
         fn from_value(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n        \
         {body}\n    \
         }}\n\
         }}\n"
    );
    code.parse().expect("derived Deserialize impl parses")
}
