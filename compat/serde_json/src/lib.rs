//! Offline JSON text layer for the serde stand-in: encodes the
//! [`serde::Value`] tree as JSON text and parses it back.
//!
//! Numeric fidelity: integers are printed in full (up to `i128` range)
//! and floats use Rust's shortest-round-trip `Display`, so
//! `from_str(&to_string(x))` reproduces `x` bit-for-bit for every
//! finite number. Non-finite floats are a serialization error.

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // Shortest round-trip form; may lack a fractional part
            // (e.g. `2`), in which case it parses back as an integer
            // and the typed deserializer converts it.
            out.push_str(&f.to_string());
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "unterminated array at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "unterminated object at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(v: T) {
        let json = to_string(&v).expect("serialize");
        let back: T = from_str(&json).expect("deserialize");
        assert_eq!(back, v, "json was: {json}");
    }

    #[test]
    fn scalars_round_trip() {
        round(0u64);
        round(u64::MAX);
        round(i64::MIN);
        round(-0.000_001_5f64);
        round(1e300f64);
        round(0.1f32);
        round(true);
        round(String::from("line\nquote\" back\\slash \u{1F980} \u{1}"));
    }

    #[test]
    fn integral_floats_survive() {
        // 2.0 prints as "2"; the typed deserializer converts back.
        round(2.0f64);
        round(-7.0f32);
    }

    #[test]
    fn containers_round_trip() {
        round(vec![vec![1.5f64], vec![], vec![3.0, 4.25]]);
        round((Some(3u8), None::<u8>, -9i64));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12 t").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("\"unterminated").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v: Vec<(u8, bool)> = from_str(" [ [1 , true] , [2,false] ] ").expect("parse");
        assert_eq!(v, vec![(1, true), (2, false)]);
    }

    #[test]
    fn value_model_matches_serde() {
        assert_eq!(
            to_string(&Some(5u8)).unwrap(),
            "5",
            "Option serializes transparently"
        );
        let n: Option<u8> = from_str("null").unwrap();
        assert_eq!(n, None);
    }
}
