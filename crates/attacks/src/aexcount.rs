//! Enclave attack: probabilistic AEX counting (AEX-NStep style).
//!
//! A privileged attacker single-steps an SGX-style enclave by firing
//! rapid one-shot interrupts (APIC/PMU stepping à la SGX-Step); every
//! shot that lands while the enclave runs forces an Asynchronous
//! Enclave Exit (AEX), and the malicious OS counts kernel exits. The
//! exit count is proportional to enclave execution time, so the
//! attacker recovers a secret-dependent *work count* from it: the
//! victim performs `n` identical work units, the attacker calibrates
//! exits-per-unit on a known-length prefix and estimates `n̂` from the
//! secret phase's count.
//!
//! The scenario exercises the [`segsim`] kernel-exit model end to end:
//! deliveries during [`Machine::enter_enclave`] windows are classified
//! [`segsim::ExitClass::EnclaveAex`], QuanShield destroys the enclave
//! on the first AEX (the calibration phase already trips it, so the
//! attack collapses), and deterministic padding inflates the exit
//! stream with [`segsim::ExitClass::DefensePad`] exits the attacker
//! cannot subtract.

use irq::time::Ps;
use irq::InterruptKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scenario::{Scenario, TrialCtx};
use segsim::{Machine, MachineConfig};
use serde::{Deserialize, Serialize};

/// Parameters of the AEX-counting experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AexCountConfig {
    /// The victim machine (defenses and fault plans travel inside).
    pub machine: MachineConfig,
    /// Independent trials (one secret per trial).
    pub trials: usize,
    /// Smallest secret work count (inclusive).
    pub secret_min: u64,
    /// Largest secret work count (inclusive).
    pub secret_max: u64,
    /// Cycles one work unit burns inside the enclave.
    pub unit_cycles: u64,
    /// Known-length calibration prefix, in work units.
    pub calibration_units: u64,
    /// Attacker single-step period: one one-shot interrupt is armed
    /// every `step_interval` across the enclave run.
    pub step_interval: Ps,
    /// RNG seed (per-trial secrets derive from it).
    pub seed: u64,
}

impl Default for AexCountConfig {
    /// The test-scale [`AexCountConfig::quick`] experiment.
    fn default() -> Self {
        AexCountConfig::quick()
    }
}

impl AexCountConfig {
    /// Test-scale configuration: small secrets, dense stepping.
    #[must_use]
    pub fn quick() -> Self {
        AexCountConfig {
            machine: MachineConfig::xiaomi_air13(),
            trials: 24,
            secret_min: 2,
            secret_max: 10,
            unit_cycles: 400_000,
            calibration_units: 6,
            step_interval: Ps::from_us(20),
            seed: 0xAE_C0,
        }
    }
}

/// One AEX-counting trial: the secret, the attacker's estimate, and the
/// raw exit counts behind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AexCountTrial {
    /// The victim's secret work count.
    pub secret: u64,
    /// The attacker's estimate `n̂`.
    pub estimate: u64,
    /// Kernel exits observed during the calibration prefix.
    pub calibration_exits: u64,
    /// Kernel exits observed during the secret phase.
    pub secret_exits: u64,
    /// Whether a countermeasure destroyed the enclave mid-run.
    pub destroyed: bool,
}

impl AexCountTrial {
    /// Whether the attacker recovered the secret exactly.
    #[must_use]
    pub fn exact(&self) -> bool {
        self.estimate == self.secret
    }
}

/// Summary of an AEX-counting run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AexCountSummary {
    /// Fraction of trials recovering the secret exactly.
    pub accuracy: f64,
    /// Mean `|n̂ − n|` over all trials.
    pub mean_abs_error: f64,
    /// Mean calibrated exits-per-unit (diagnostic; inflated by pads).
    pub mean_exits_per_unit: f64,
    /// Fraction of trials whose enclave was destroyed by a defense.
    pub destroyed_frac: f64,
    /// Trial count.
    pub trials: usize,
}

/// Runs one AEX-counting trial on a prepared machine.
///
/// The machine must be freshly built (warm-up happens here so traces
/// cover it). The secret is drawn from the trial seed's aux stream.
pub fn count_aex_on(
    machine: &mut Machine,
    config: &AexCountConfig,
    trial_seed: u64,
) -> AexCountTrial {
    let mut rng = SmallRng::seed_from_u64(exec::derive_seed(trial_seed, exec::AUX_STREAM));
    let secret = rng.gen_range(config.secret_min..=config.secret_max);

    machine.spin(20_000_000); // warm-up: settle governor and caches

    // Arm the single-step train: generously cover calibration + secret
    // at nominal speed with 3x slack for defense-induced slowdown.
    let total_units = config.calibration_units + config.secret_max;
    let nominal = Ps::from_cycles_at(total_units * config.unit_cycles, machine.config().tsc_khz());
    let horizon = nominal * 3 + Ps::from_ms(2);
    let step = config.step_interval.max(Ps::from_us(1));
    let start = machine.now();
    let shots = (horizon.as_ps() / step.as_ps()).max(1);
    machine.inject_interrupts((1..=shots).map(|i| (start + step * i, InterruptKind::PerfMon)));

    let entered = machine.enter_enclave();

    // Calibration prefix: known unit count, attacker counts exits.
    let before_cal = machine.kernel_entries();
    for _ in 0..config.calibration_units {
        if machine.enclave_destroyed() {
            break;
        }
        machine.spin(config.unit_cycles);
    }
    let calibration_exits = machine.kernel_entries() - before_cal;

    // Secret phase — aborted outright if the enclave self-destructed
    // (the victim's computation is gone; nothing left to count).
    let before_secret = machine.kernel_entries();
    if entered && !machine.enclave_destroyed() {
        for _ in 0..secret {
            if machine.enclave_destroyed() {
                break;
            }
            machine.spin(config.unit_cycles);
        }
    }
    let secret_exits = machine.kernel_entries() - before_secret;
    let destroyed = machine.enclave_destroyed();
    machine.exit_enclave();

    // Estimate: exits scale linearly with work, so n̂ is the secret
    // count over the calibrated per-unit rate.
    let per_unit = calibration_exits as f64 / config.calibration_units.max(1) as f64;
    let estimate = if destroyed || per_unit <= 0.0 {
        0
    } else {
        (secret_exits as f64 / per_unit).round() as u64
    };

    AexCountTrial {
        secret,
        estimate,
        calibration_exits,
        secret_exits,
        destroyed,
    }
}

/// Reduces trial outputs to the run summary.
#[must_use]
pub fn summarize_aex(config: &AexCountConfig, outputs: &[AexCountTrial]) -> AexCountSummary {
    let n = outputs.len().max(1) as f64;
    let exact = outputs.iter().filter(|t| t.exact()).count() as f64;
    let abs_err: f64 = outputs
        .iter()
        .map(|t| (t.estimate as f64 - t.secret as f64).abs())
        .sum();
    let per_unit: f64 = outputs
        .iter()
        .map(|t| t.calibration_exits as f64 / config.calibration_units.max(1) as f64)
        .sum();
    AexCountSummary {
        accuracy: exact / n,
        mean_abs_error: abs_err / n,
        mean_exits_per_unit: per_unit / n,
        destroyed_frac: outputs.iter().filter(|t| t.destroyed).count() as f64 / n,
        trials: outputs.len(),
    }
}

/// The registered AEX-counting scenario.
pub struct AexCountScenario;

impl Scenario for AexCountScenario {
    type Config = AexCountConfig;
    type TrialOutput = AexCountTrial;
    type Summary = AexCountSummary;

    fn name(&self) -> &'static str {
        "aexcount"
    }

    fn describe(&self) -> &'static str {
        "AEX counting: single-step an enclave with injected one-shots and recover a secret work count from kernel-exit totals (AEX-NStep style)"
    }

    fn experiment_seed(&self, config: &Self::Config, requested: Option<u64>) -> u64 {
        requested.unwrap_or(config.seed)
    }

    fn trial_count(&self, config: &Self::Config, requested: Option<usize>) -> usize {
        requested.unwrap_or(config.trials)
    }

    fn build_machine(&self, config: &Self::Config, ctx: &TrialCtx) -> Machine {
        Machine::new(config.machine.clone(), ctx.seed)
    }

    fn run_trial(
        &self,
        config: &Self::Config,
        machine: &mut Machine,
        ctx: &TrialCtx,
    ) -> AexCountTrial {
        count_aex_on(machine, config, ctx.seed)
    }

    fn summarize(&self, config: &Self::Config, outputs: &[Self::TrialOutput]) -> AexCountSummary {
        summarize_aex(config, outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenario::RunOptions;
    use segsim::Defense;

    fn run(config: AexCountConfig, trials: usize) -> (Vec<AexCountTrial>, AexCountSummary) {
        let opts = RunOptions {
            trials: Some(trials),
            ..RunOptions::default()
        };
        let run = scenario::run_scenario(&AexCountScenario, &config, &opts);
        (run.outputs, run.summary)
    }

    #[test]
    fn undefended_enclave_leaks_the_work_count() {
        let (outputs, summary) = run(AexCountConfig::quick(), 12);
        assert_eq!(outputs.len(), 12);
        assert!(
            summary.accuracy >= 0.75,
            "stepping should recover most secrets exactly, got {}",
            summary.accuracy
        );
        assert!(summary.destroyed_frac == 0.0);
        assert!(summary.mean_exits_per_unit > 1.0);
    }

    #[test]
    fn quanshield_collapses_the_attack() {
        let mut config = AexCountConfig::quick();
        config.machine = config.machine.with_defense(Defense::QuanShield);
        let (outputs, summary) = run(config, 8);
        assert_eq!(
            summary.destroyed_frac, 1.0,
            "calibration trips self-destruct"
        );
        assert_eq!(summary.accuracy, 0.0);
        assert!(outputs.iter().all(|t| t.estimate == 0));
    }

    #[test]
    fn padding_inflates_the_exit_stream() {
        let mut config = AexCountConfig::quick();
        config.machine = config.machine.with_defense(Defense::default_padding());
        let (_, padded) = run(config, 8);
        let (_, plain) = run(AexCountConfig::quick(), 8);
        assert!(
            padded.mean_exits_per_unit > plain.mean_exits_per_unit,
            "pads are indistinguishable extra exits: {} vs {}",
            padded.mean_exits_per_unit,
            plain.mean_exits_per_unit
        );
    }

    #[test]
    fn trials_are_deterministic() {
        let (a, _) = run(AexCountConfig::quick(), 6);
        let (b, _) = run(AexCountConfig::quick(), 6);
        assert_eq!(a, b);
    }
}
