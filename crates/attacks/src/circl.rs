//! Case study 2: extracting cryptographic keys from CIRCL via the
//! frequency side channel, timed by SegScope instead of any architectural
//! timer (paper Section IV-B, Fig. 8).
//!
//! The victim (Cloudflare's CIRCL, 300 concurrent goroutines) decrypts
//! attacker-crafted challenge ciphertexts. For target key bit `i`, the
//! Hertzbleed-style property is: if `m_i ≠ m_{i-1}`, the crafted challenge
//! drives an *anomalous-zero* limb through the arithmetic, which draws
//! less power, which lets the package sustain a **higher** frequency —
//! observable as a **higher** SegCnt between timer interrupts. If
//! `m_i = m_{i-1}`, no challenge produces the anomaly. Distinguishing the
//! two groups the bits; guessing the first bit then yields the whole key
//! (search space 2).

use irq::time::Ps;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scenario::{Scenario, TrialCtx};
use segscope::{ProbeSample, SegProbe};
use segsim::{FaultPlan, Machine, MachineConfig, StepFn};
use serde::{Deserialize, Serialize};

/// The simulated CIRCL victim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CirclVictim {
    key: Vec<bool>,
    /// Baseline power excess of the 300-goroutine decryption workload.
    base_power: f64,
    /// Power *reduction* when the challenge triggers an anomalous zero.
    anomaly_relief: f64,
}

impl CirclVictim {
    /// A victim with a random `bits`-bit key (the paper uses 378-bit
    /// keys).
    #[must_use]
    pub fn random_key<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        CirclVictim {
            key: (0..bits).map(|_| rng.gen()).collect(),
            base_power: 0.9,
            anomaly_relief: 0.5,
        }
    }

    /// A victim with a fixed key (tests).
    #[must_use]
    pub fn with_key(key: Vec<bool>) -> Self {
        CirclVictim {
            key,
            base_power: 0.9,
            anomaly_relief: 0.5,
        }
    }

    /// Key length in bits.
    #[must_use]
    pub fn key_bits(&self) -> usize {
        self.key.len()
    }

    /// Ground-truth key (test support).
    #[must_use]
    pub fn key(&self) -> &[bool] {
        &self.key
    }

    /// Ground truth of the distinguishing event for bit `i`: whether
    /// `m_i ≠ m_{i-1}` (for `i = 0`, compares against an implicit leading
    /// zero bit, matching the reference attack's convention).
    #[must_use]
    pub fn bit_differs(&self, i: usize) -> bool {
        let prev = if i == 0 { false } else { self.key[i - 1] };
        self.key[i] != prev
    }

    /// Runs the decryption of the challenge ciphertext targeting bit `i`
    /// for `window`, installing the resulting power schedule on
    /// `machine`. Returns whether the anomalous zero fired (ground
    /// truth).
    pub fn run_challenge(&self, machine: &mut Machine, i: usize, window: Ps) -> bool {
        let anomalous = self.bit_differs(i);
        let power = if anomalous {
            self.base_power - self.anomaly_relief
        } else {
            self.base_power
        };
        let t0 = machine.now();
        let mut schedule = StepFn::zero();
        schedule.push(t0, power);
        schedule.push(t0 + window, 0.0);
        machine.set_power_excess(schedule);
        // The goroutine army also loads the package.
        let mut load = StepFn::zero();
        load.push(t0, 0.8);
        load.push(t0 + window, 0.0);
        machine.set_victim_load(load);
        anomalous
    }
}

/// One labeled observation for Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CirclObservation {
    /// Mean SegCnt across the challenge window.
    pub mean_segcnt: f64,
    /// Ground truth: did the challenge trigger the anomalous zero?
    pub anomalous: bool,
}

/// Configuration of the key-extraction attack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CirclConfig {
    /// Key size in bits (paper: 378).
    pub key_bits: usize,
    /// Decryption window the power signal persists for.
    pub window: Ps,
    /// SegCnt samples (interrupt intervals) averaged per challenge.
    pub samples_per_challenge: usize,
    /// Calibration challenges per class used to fit the threshold.
    pub calibration: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional interrupt-path fault plan installed on the simulated
    /// machine (`None` = nominal fault-free run).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for CirclConfig {
    /// The test-scale [`CirclConfig::quick`] extraction.
    fn default() -> Self {
        CirclConfig::quick()
    }
}

impl CirclConfig {
    /// Test-scale: 64-bit key.
    #[must_use]
    pub fn quick() -> Self {
        CirclConfig {
            key_bits: 64,
            window: Ps::from_ms(60),
            samples_per_challenge: 10,
            calibration: 12,
            seed: 0xC19C1,
            fault_plan: None,
        }
    }

    /// Bench-scale: the paper's 378-bit keys.
    #[must_use]
    pub fn paper() -> Self {
        CirclConfig {
            key_bits: 378,
            samples_per_challenge: 10,
            window: Ps::from_ms(60),
            calibration: 20,
            seed: 0xC19C1,
            fault_plan: None,
        }
    }

    /// Installs a fault plan on the machine the extraction runs on.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// The outcome of one full key extraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CirclResult {
    /// Whether the recovered key equals the ground truth (after the 1-bit
    /// first-bit disambiguation).
    pub recovered: bool,
    /// Per-bit distinguishing accuracy (fraction of `m_i ≠ m_{i-1}`
    /// decisions that were correct).
    pub bit_accuracy: f64,
    /// The Fig. 8 observations collected along the way.
    pub observations: Vec<CirclObservation>,
}

/// Measures the mean SegCnt across one challenge window.
///
/// `probe`, `samples`, and `cnts` are owned by the extraction loop and
/// reused across its hundreds of challenges (calibration + one per key
/// bit), so a challenge allocates nothing in the steady state.
fn measure_challenge(
    machine: &mut Machine,
    victim: &CirclVictim,
    bit: usize,
    config: &CirclConfig,
    probe: &mut SegProbe,
    samples: &mut Vec<ProbeSample>,
    cnts: &mut Vec<f64>,
) -> CirclObservation {
    let anomalous = victim.run_challenge(machine, bit, config.window);
    // Skip one interval so the governor reacts to the new power level.
    probe
        .probe_n_into(machine, 3, samples)
        .expect("probe works");
    probe
        .probe_n_into(machine, config.samples_per_challenge, samples)
        .expect("probe works");
    cnts.clear();
    cnts.extend(samples.iter().map(|s| s.segcnt as f64));
    // Let the window expire before the next challenge.
    let rest = machine.now() + config.window;
    while machine.now() < rest {
        machine.spin(1_000_000);
    }
    // Median: a rescheduling/PMI interrupt occasionally truncates one
    // interval, which would drag a plain mean across the class boundary.
    cnts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    CirclObservation {
        mean_segcnt: cnts[cnts.len() / 2],
        anomalous,
    }
}

/// Runs the end-to-end key extraction on a fresh machine seeded from
/// `config.seed`'s auxiliary stream.
#[must_use]
pub fn run_extraction(config: &CirclConfig) -> CirclResult {
    let mut machine = Machine::new(
        MachineConfig::lenovo_yangtian(),
        exec::derive_seed(config.seed, exec::AUX_STREAM),
    );
    machine.set_fault_plan(config.fault_plan);
    extract_on(&mut machine, config, config.seed)
}

/// Runs the key extraction on a caller-provided `machine` (fault plan
/// and any trace sink already installed); `victim_seed` draws the
/// victim's random key.
#[must_use]
pub fn extract_on(machine: &mut Machine, config: &CirclConfig, victim_seed: u64) -> CirclResult {
    let mut rng = SmallRng::seed_from_u64(victim_seed);
    let victim = CirclVictim::random_key(config.key_bits, &mut rng);
    machine.spin(100_000_000); // warm-up
                               // Calibration: the attacker knows which crafted ciphertexts trigger
                               // the anomaly on their *own* key material; here we calibrate with
                               // planted ground truth, as the reference attack does.
                               // Pattern 1,1,0,0,1,1,… makes `bit_differs` alternate, so calibration
                               // sees both the anomalous and the non-anomalous class.
    let calib_victim = CirclVictim::with_key(
        (0..config.calibration * 2)
            .map(|i| (i / 2) % 2 == 0)
            .collect(),
    );
    // One probe and one pair of sample buffers serve every challenge in
    // the trial (calibration + attack): zero allocations per challenge.
    let mut probe = SegProbe::new();
    let mut samples = Vec::new();
    let mut cnts = Vec::new();
    let mut hi = Vec::new();
    let mut lo = Vec::new();
    for i in 0..config.calibration * 2 {
        let obs = measure_challenge(
            machine,
            &calib_victim,
            i,
            config,
            &mut probe,
            &mut samples,
            &mut cnts,
        );
        if obs.anomalous {
            hi.push(obs.mean_segcnt);
        } else {
            lo.push(obs.mean_segcnt);
        }
    }
    let threshold = (segscope::mean(&hi) + segscope::mean(&lo)) / 2.0;
    // Attack phase.
    let mut observations = Vec::with_capacity(config.key_bits);
    let mut correct = 0usize;
    let mut differs = Vec::with_capacity(config.key_bits);
    for bit in 0..config.key_bits {
        let obs = measure_challenge(
            machine,
            &victim,
            bit,
            config,
            &mut probe,
            &mut samples,
            &mut cnts,
        );
        let decided_anomalous = obs.mean_segcnt > threshold;
        if decided_anomalous == obs.anomalous {
            correct += 1;
        }
        differs.push(decided_anomalous);
        observations.push(obs);
    }
    // Reconstruct: bit_i = bit_{i-1} XOR differs_i, trying both first-bit
    // hypotheses (the search space of 2 the paper describes).
    let reconstruct = |first: bool| -> Vec<bool> {
        let mut key = Vec::with_capacity(config.key_bits);
        let mut prev = false;
        for (i, &d) in differs.iter().enumerate() {
            let bit = if i == 0 {
                // differs[0] compares against the implicit leading 0.
                let b = d;
                let _ = first;
                b
            } else {
                prev ^ d
            };
            key.push(bit);
            prev = bit;
        }
        key
    };
    let candidate = reconstruct(false);
    let recovered = candidate == victim.key;
    CirclResult {
        recovered,
        bit_accuracy: correct as f64 / config.key_bits as f64,
        observations,
    }
}

/// The registered CIRCL scenario: each trial extracts one fresh random
/// key on a fresh machine (the victim key draws from the trial seed, the
/// machine from its auxiliary stream).
pub struct CirclScenario;

/// Summary of a [`CirclScenario`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CirclSummary {
    /// Fraction of trials that recovered the whole key.
    pub recovered_rate: f64,
    /// Mean per-bit distinguishing accuracy across trials.
    pub mean_bit_accuracy: f64,
}

impl Scenario for CirclScenario {
    type Config = CirclConfig;
    type TrialOutput = CirclResult;
    type Summary = CirclSummary;

    fn name(&self) -> &'static str {
        "circl"
    }

    fn describe(&self) -> &'static str {
        "CIRCL key extraction via the DVFS frequency channel, timed by SegScope (paper Section IV-B)"
    }

    fn experiment_seed(&self, config: &Self::Config, requested: Option<u64>) -> u64 {
        requested.unwrap_or(config.seed)
    }

    fn trial_count(&self, _config: &Self::Config, requested: Option<usize>) -> usize {
        requested.unwrap_or(1)
    }

    fn build_machine(&self, config: &Self::Config, ctx: &TrialCtx) -> Machine {
        let mut machine = Machine::new(
            MachineConfig::lenovo_yangtian(),
            exec::derive_seed(ctx.seed, exec::AUX_STREAM),
        );
        machine.set_fault_plan(config.fault_plan);
        machine
    }

    fn run_trial(
        &self,
        config: &Self::Config,
        machine: &mut Machine,
        ctx: &TrialCtx,
    ) -> CirclResult {
        extract_on(machine, config, ctx.seed)
    }

    fn summarize(&self, _config: &Self::Config, outputs: &[CirclResult]) -> CirclSummary {
        let n = outputs.len().max(1) as f64;
        CirclSummary {
            recovered_rate: outputs.iter().filter(|r| r.recovered).count() as f64 / n,
            mean_bit_accuracy: outputs.iter().map(|r| r.bit_accuracy).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_differs_semantics() {
        let v = CirclVictim::with_key(vec![true, true, false, true]);
        assert!(v.bit_differs(0)); // 0 -> 1
        assert!(!v.bit_differs(1)); // 1 -> 1
        assert!(v.bit_differs(2)); // 1 -> 0
        assert!(v.bit_differs(3)); // 0 -> 1
    }

    #[test]
    fn anomalous_challenges_run_faster() {
        // The core physical claim of Fig. 8: anomalous-zero challenges
        // yield higher SegCnt.
        let config = CirclConfig::quick();
        let mut machine = Machine::new(MachineConfig::lenovo_yangtian(), 7);
        machine.spin(100_000_000);
        let victim =
            CirclVictim::with_key(vec![true, true, false, false, true, true, false, false]);
        let mut probe = SegProbe::new();
        let mut samples = Vec::new();
        let mut cnts = Vec::new();
        let mut hi = Vec::new();
        let mut lo = Vec::new();
        for i in 0..8 {
            let obs = measure_challenge(
                &mut machine,
                &victim,
                i,
                &config,
                &mut probe,
                &mut samples,
                &mut cnts,
            );
            if obs.anomalous {
                hi.push(obs.mean_segcnt);
            } else {
                lo.push(obs.mean_segcnt);
            }
        }
        assert!(!hi.is_empty() && !lo.is_empty());
        assert!(
            segscope::mean(&hi) > segscope::mean(&lo) * 1.02,
            "anomalous {} !> normal {}",
            segscope::mean(&hi),
            segscope::mean(&lo)
        );
    }

    #[test]
    fn quick_extraction_recovers_the_key() {
        let result = run_extraction(&CirclConfig::quick());
        assert!(
            result.bit_accuracy > 0.95,
            "bit accuracy {}",
            result.bit_accuracy
        );
        assert!(result.recovered, "key not recovered");
        assert_eq!(result.observations.len(), 64);
    }

    #[test]
    fn random_key_is_seed_deterministic() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        assert_eq!(
            CirclVictim::random_key(32, &mut a).key(),
            CirclVictim::random_key(32, &mut b).key()
        );
    }
}
