//! Extension case study: a cross-core covert channel (paper Section V,
//! "Other security implications": "SegScope can also be used to
//! demonstrate other frequency-based attacks such as building covert
//! channels").
//!
//! The *sender* — an unprivileged process on another core of the same
//! frequency domain — modulates its power draw in fixed time slots
//! (bit 1 = power-hungry computation, bit 0 = light computation). The
//! *receiver* spins a SegScope probe and decodes each slot from the
//! median SegCnt: lower SegCnt ⇔ lower frequency ⇔ heavy slot ⇔ bit 1.
//! No timer, no shared memory, no syscalls beyond scheduling.

use irq::time::Ps;
use scenario::{RunOptions, Scenario, TrialCtx};
use segscope::SegProbe;
use segsim::{FaultPlan, Machine, MachineConfig, StepFn};
use serde::{Deserialize, Serialize};

/// Channel configuration shared by sender and receiver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CovertConfig {
    /// Slot duration (one bit per slot).
    pub slot: Ps,
    /// Power excess drawn during a `1` slot.
    pub high_power: f64,
    /// Power excess drawn during a `0` slot.
    pub low_power: f64,
    /// Number of alternating calibration slots preceding the payload
    /// (`1010…`, also the synchronization preamble).
    pub preamble_bits: usize,
    /// Optional interrupt-path fault plan installed on the receiver's
    /// machine (`None` = nominal fault-free run).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for CovertConfig {
    /// The conservative [`CovertConfig::slow`] channel.
    fn default() -> Self {
        CovertConfig::slow()
    }
}

impl CovertConfig {
    /// A conservative 50 bit/s channel (20 ms slots).
    #[must_use]
    pub fn slow() -> Self {
        CovertConfig {
            slot: Ps::from_ms(20),
            high_power: 0.8,
            low_power: 0.1,
            preamble_bits: 8,
            fault_plan: None,
        }
    }

    /// A faster channel (12 ms slots, ~83 bit/s raw) — the quickest slot
    /// that stays clearly above the governor-lag cliff (shorter slots
    /// leave the frequency no time to settle and the error rate explodes,
    /// as the `ext_covert` sweep shows).
    #[must_use]
    pub fn fast() -> Self {
        CovertConfig {
            slot: Ps::from_ms(12),
            high_power: 0.8,
            low_power: 0.1,
            preamble_bits: 8,
            fault_plan: None,
        }
    }

    /// Installs a fault plan on the receiver's machine.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Raw channel rate, bits per second.
    #[must_use]
    pub fn raw_bps(&self) -> f64 {
        1.0 / self.slot.as_secs_f64()
    }
}

/// Encodes `message` as the sender's power schedule starting at `t0`.
/// Returns the schedule and the instant the transmission ends.
#[must_use]
pub fn sender_schedule(config: &CovertConfig, message: &[bool], t0: Ps) -> (StepFn, Ps) {
    let mut schedule = StepFn::zero();
    let mut t = t0;
    for i in 0..config.preamble_bits {
        schedule.push(
            t,
            if i % 2 == 0 {
                config.high_power
            } else {
                config.low_power
            },
        );
        t += config.slot;
    }
    for &bit in message {
        schedule.push(
            t,
            if bit {
                config.high_power
            } else {
                config.low_power
            },
        );
        t += config.slot;
    }
    schedule.push(t, 0.0);
    (schedule, t)
}

/// The outcome of one transmission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CovertResult {
    /// Decoded payload bits.
    pub decoded: Vec<bool>,
    /// Ground-truth payload.
    pub sent: Vec<bool>,
    /// Bit errors.
    pub errors: usize,
    /// Bit error rate.
    pub error_rate: f64,
    /// Effective goodput, bits per simulated second (payload only).
    pub goodput_bps: f64,
    /// Decode diagnostics: the per-slot medians (preamble + payload).
    pub slot_medians: Vec<f64>,
    /// Decode diagnostics: the preamble-derived decision threshold.
    pub threshold: f64,
}

/// Runs one full transmission over a fresh machine and decodes it.
///
/// # Panics
///
/// Panics if `message` is empty.
#[must_use]
pub fn transmit(config: &CovertConfig, message: &[bool], seed: u64) -> CovertResult {
    let mut machine = Machine::new(MachineConfig::lenovo_yangtian(), seed);
    machine.set_fault_plan(config.fault_plan);
    transmit_on(&mut machine, config, message)
}

/// Runs one full transmission on a caller-provided `machine` (fault plan
/// and any trace sink already installed) and decodes it.
///
/// # Panics
///
/// Panics if `message` is empty.
#[must_use]
pub fn transmit_on(machine: &mut Machine, config: &CovertConfig, message: &[bool]) -> CovertResult {
    assert!(!message.is_empty(), "need a payload");
    machine.spin(200_000_000); // governor steady state
    let t0 = machine.now() + Ps::from_ms(2);
    let (schedule, _end) = sender_schedule(config, message, t0);
    machine.set_power_excess(schedule);
    let start = machine.now();

    // Receiver: sample median SegCnt per slot. Slot boundaries come from
    // counting probe ticks against the calibrated slot length — here we
    // use the shared simulation timeline (sender and receiver agree on
    // slot boundaries after preamble sync; the preamble's alternation
    // also yields the decision threshold).
    let mut probe = SegProbe::new();
    let mut slot_medians = Vec::new();
    let total_slots = config.preamble_bits + message.len();
    for slot_idx in 0..total_slots {
        let slot_end = t0 + config.slot * (slot_idx as u64 + 1);
        let mut cnts = Vec::new();
        while machine.now() < slot_end {
            // Bound the probe by the slot end so a quiet slot cannot
            // swallow the next one.
            let remaining = slot_end.saturating_sub(machine.now());
            match probe.probe_once_bounded(machine, remaining) {
                Ok(s) => cnts.push(s.segcnt as f64),
                Err(_) => break, // deadline inside the slot: move on
            }
        }
        // The slot's early intervals straddle the governor's response to
        // the power step, so prefer the settled tail — but short slots
        // only hold a couple of intervals, where averaging beats a biased
        // order statistic.
        let median = match cnts.len() {
            0 => f64::NAN,
            // Short slots: the chronologically-last interval is the most
            // settled one (everything earlier straddles the power step).
            n if n <= 4 => cnts[n - 1],
            n => {
                let tail = &mut cnts[n / 2..];
                tail.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                tail[tail.len() / 2]
            }
        };
        slot_medians.push(median);
    }

    // Threshold from the preamble (known 1010… pattern).
    let mut highs = Vec::new();
    let mut lows = Vec::new();
    for (i, &m) in slot_medians.iter().take(config.preamble_bits).enumerate() {
        if m.is_nan() {
            continue;
        }
        if i % 2 == 0 {
            lows.push(m); // high power => LOW SegCnt
        } else {
            highs.push(m);
        }
    }
    // Medians, not means: a rescheduling/PMI interrupt occasionally
    // splits an interval inside a preamble slot, and a single corrupted
    // class mean would poison the threshold for the whole transmission.
    let robust = |xs: &mut Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if xs.is_empty() {
            f64::NAN
        } else {
            xs[xs.len() / 2]
        }
    };
    let threshold = (robust(&mut highs.clone()) + robust(&mut lows.clone())) / 2.0;
    let decoded: Vec<bool> = slot_medians
        .iter()
        .skip(config.preamble_bits)
        .map(|&m| m < threshold) // low SegCnt => heavy slot => bit 1
        .collect();
    let errors = decoded.iter().zip(message).filter(|(d, s)| d != s).count();
    let elapsed = (machine.now() - start).as_secs_f64();
    CovertResult {
        errors,
        error_rate: errors as f64 / message.len() as f64,
        goodput_bps: message.len() as f64 / elapsed.max(1e-9),
        decoded,
        sent: message.to_vec(),
        slot_medians,
        threshold,
    }
}

/// Runs `trials` independent transmissions of `message` in parallel —
/// fresh machine per trial, per-trial seeds derived from
/// `experiment_seed` — and returns the outcomes in trial order
/// (bit-identical at any worker count).
///
/// Thin wrapper over the generic [`scenario`] driver and
/// [`CovertScenario`].
///
/// # Panics
///
/// Panics if `message` is empty.
#[must_use]
pub fn transmit_trials(
    config: &CovertConfig,
    message: &[bool],
    experiment_seed: u64,
    trials: usize,
    threads: Option<usize>,
) -> Vec<CovertResult> {
    let cfg = CovertScenarioConfig {
        channel: *config,
        payload: bits_to_bitstring(message),
    };
    let opts = RunOptions {
        seed: Some(experiment_seed),
        trials: Some(trials),
        threads,
        ..RunOptions::default()
    };
    scenario::run_scenario(&CovertScenario, &cfg, &opts).outputs
}

/// Transmits with an `r`-fold repetition code and majority-vote decode:
/// the standard fix for the channel's ~1 % residual bit errors, trading
/// rate for reliability.
///
/// # Panics
///
/// Panics if `message` is empty or `repetition` is even/zero.
#[must_use]
pub fn transmit_reliable(
    config: &CovertConfig,
    message: &[bool],
    repetition: usize,
    seed: u64,
) -> CovertResult {
    assert!(
        repetition % 2 == 1 && repetition > 0,
        "repetition must be odd"
    );
    let coded: Vec<bool> = message
        .iter()
        .flat_map(|&b| std::iter::repeat_n(b, repetition))
        .collect();
    let raw = transmit(config, &coded, seed);
    let slot_medians = raw.slot_medians.clone();
    let threshold = raw.threshold;
    let decoded: Vec<bool> = raw
        .decoded
        .chunks(repetition)
        .map(|chunk| chunk.iter().filter(|&&b| b).count() * 2 > repetition)
        .collect();
    let errors = decoded.iter().zip(message).filter(|(d, s)| d != s).count();
    CovertResult {
        errors,
        error_rate: errors as f64 / message.len() as f64,
        goodput_bps: raw.goodput_bps / repetition as f64,
        decoded,
        sent: message.to_vec(),
        slot_medians,
        threshold,
    }
}

/// Renders bits as an ASCII `'0'`/`'1'` string (the JSON-friendly
/// payload encoding of [`CovertScenarioConfig`]).
#[must_use]
pub fn bits_to_bitstring(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// Parses an ASCII bitstring back into bits, ignoring any characters
/// other than `'0'` and `'1'` (so `"1011 0010"` reads naturally).
#[must_use]
pub fn bitstring_to_bits(s: &str) -> Vec<bool> {
    s.chars()
        .filter(|c| matches!(c, '0' | '1'))
        .map(|c| c == '1')
        .collect()
}

/// The registered covert-channel scenario: each trial is one full
/// transmission of the configured payload over a fresh machine.
pub struct CovertScenario;

/// Parameters of [`CovertScenario`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CovertScenarioConfig {
    /// Channel timing and power parameters.
    pub channel: CovertConfig,
    /// Payload as an ASCII bitstring (`'0'`/`'1'`; other characters are
    /// separators), so arbitrary bit patterns survive a JSON round trip.
    pub payload: String,
}

impl Default for CovertScenarioConfig {
    /// The slow channel carrying the bits of `b"SEG"`.
    fn default() -> Self {
        CovertScenarioConfig {
            channel: CovertConfig::slow(),
            payload: bits_to_bitstring(&bytes_to_bits(b"SEG")),
        }
    }
}

/// Summary of a [`CovertScenario`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CovertSummary {
    /// Payload length in bits.
    pub payload_bits: usize,
    /// Per-trial bit-error rates, in trial order.
    pub error_rates: Vec<f64>,
    /// Mean bit-error rate across trials.
    pub mean_error_rate: f64,
    /// Mean goodput across trials, bits per simulated second.
    pub mean_goodput_bps: f64,
    /// Total bit errors across trials.
    pub total_errors: usize,
}

impl Scenario for CovertScenario {
    type Config = CovertScenarioConfig;
    type TrialOutput = CovertResult;
    type Summary = CovertSummary;

    fn name(&self) -> &'static str {
        "covert"
    }

    fn describe(&self) -> &'static str {
        "cross-core covert channel over the DVFS frequency side effect (paper Section V)"
    }

    fn experiment_seed(&self, _config: &Self::Config, requested: Option<u64>) -> u64 {
        requested.unwrap_or(0xC07E)
    }

    fn trial_count(&self, _config: &Self::Config, requested: Option<usize>) -> usize {
        requested.unwrap_or(3)
    }

    fn build_machine(&self, config: &Self::Config, ctx: &TrialCtx) -> Machine {
        let mut machine = Machine::new(MachineConfig::lenovo_yangtian(), ctx.seed);
        machine.set_fault_plan(config.channel.fault_plan);
        machine
    }

    fn run_trial(
        &self,
        config: &Self::Config,
        machine: &mut Machine,
        _ctx: &TrialCtx,
    ) -> CovertResult {
        transmit_on(
            machine,
            &config.channel,
            &bitstring_to_bits(&config.payload),
        )
    }

    /// Batched path: each trial of the chunk runs one full transmission
    /// on this worker's recycled machine lane. The wiring replays
    /// [`build_machine`](Scenario::build_machine)'s (the channel's fault
    /// plan, then the run-level override), so outputs are identical to
    /// the per-trial path at any chunk geometry — `tests/batch_parity.rs`
    /// pins this.
    fn run_batch(
        &self,
        config: &Self::Config,
        ctxs: &[TrialCtx],
        fault_override: Option<FaultPlan>,
    ) -> Vec<(CovertResult, scenario::TrialStats)> {
        ctxs.iter()
            .map(|ctx| {
                scenario::with_recycled_machine(
                    MachineConfig::lenovo_yangtian(),
                    ctx.seed,
                    |machine| {
                        machine.set_fault_plan(config.channel.fault_plan);
                        if let Some(plan) = fault_override {
                            machine.set_fault_plan(Some(plan));
                        }
                        let output = self.run_trial(config, machine, ctx);
                        (output, scenario::TrialStats::of(machine))
                    },
                )
            })
            .collect()
    }

    fn summarize(&self, config: &Self::Config, outputs: &[CovertResult]) -> CovertSummary {
        let n = outputs.len().max(1) as f64;
        CovertSummary {
            payload_bits: bitstring_to_bits(&config.payload).len(),
            error_rates: outputs.iter().map(|r| r.error_rate).collect(),
            mean_error_rate: outputs.iter().map(|r| r.error_rate).sum::<f64>() / n,
            mean_goodput_bps: outputs.iter().map(|r| r.goodput_bps).sum::<f64>() / n,
            total_errors: outputs.iter().map(|r| r.errors).sum(),
        }
    }
}

/// Encodes a byte string little-bit-first.
#[must_use]
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    bytes
        .iter()
        .flat_map(|&b| (0..8).map(move |i| (b >> i) & 1 == 1))
        .collect()
}

/// Decodes bits back into bytes (inverse of [`bytes_to_bits`]).
#[must_use]
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    bits.chunks(8)
        .map(|chunk| {
            chunk
                .iter()
                .enumerate()
                .fold(0u8, |acc, (i, &b)| acc | (u8::from(b) << i))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_byte_round_trip() {
        let data = b"SegScope!";
        assert_eq!(bits_to_bytes(&bytes_to_bits(data)), data);
        assert!(bytes_to_bits(&[0b1010_0001])[0]);
        assert!(!bytes_to_bits(&[0b1010_0001])[1]);
    }

    #[test]
    fn slow_channel_has_low_raw_error() {
        let message = bytes_to_bits(b"COVERT CHANNEL TEST MESSAGE");
        let result = transmit(&CovertConfig::slow(), &message, 0xC07E);
        assert!(
            result.error_rate <= 0.05,
            "raw error rate {} too high",
            result.error_rate
        );
        // Goodput close to the raw slot rate.
        assert!(
            result.goodput_bps > 0.5 * CovertConfig::slow().raw_bps(),
            "goodput {}",
            result.goodput_bps
        );
    }

    #[test]
    fn repetition_code_delivers_error_free() {
        let message = bytes_to_bits(b"COVERT");
        let result = transmit_reliable(&CovertConfig::slow(), &message, 3, 0xC07F);
        assert_eq!(
            result.errors,
            0,
            "decoded {:?}",
            bits_to_bytes(&result.decoded)
        );
        assert_eq!(bits_to_bytes(&result.decoded), b"COVERT");
    }

    #[test]
    #[should_panic(expected = "repetition must be odd")]
    fn even_repetition_rejected() {
        let _ = transmit_reliable(&CovertConfig::slow(), &[true], 2, 0);
    }

    #[test]
    fn faster_slots_trade_errors_for_rate() {
        let message: Vec<bool> = (0..96).map(|i| (i * 7) % 3 == 0).collect();
        let slow = transmit(&CovertConfig::slow(), &message, 0x51);
        let fast = transmit(&CovertConfig::fast(), &message, 0x51);
        assert!(fast.goodput_bps > slow.goodput_bps * 1.5);
        assert!(
            fast.error_rate <= 0.25,
            "fast channel unusable: {}",
            fast.error_rate
        );
        assert!(slow.error_rate <= fast.error_rate + 0.05);
    }

    #[test]
    fn traced_transmission_matches_untraced() {
        let cfg = CovertScenarioConfig {
            channel: CovertConfig::slow(),
            payload: bits_to_bitstring(&bytes_to_bits(b"OBS")),
        };
        let opts = RunOptions {
            seed: Some(0xC080),
            trials: Some(1),
            ..RunOptions::default()
        };
        let plain = scenario::run_scenario(&CovertScenario, &cfg, &opts);
        let traced = scenario::run_scenario(
            &CovertScenario,
            &cfg,
            &RunOptions {
                capacity: 1 << 16,
                ..opts
            },
        );
        assert_eq!(
            traced.outputs, plain.outputs,
            "tracing must not perturb the channel"
        );
        let sink = traced.sink.expect("traced run");
        assert!(
            sink.count_class(obs::EventClass::FreqTransition) > 0,
            "sender modulation must surface as frequency transitions"
        );
        assert!(sink.count_class(obs::EventClass::ProbeSample) > 0);
    }

    #[test]
    fn bitstring_round_trip() {
        let bits = bytes_to_bits(b"SegScope");
        assert_eq!(bitstring_to_bits(&bits_to_bitstring(&bits)), bits);
        assert_eq!(bitstring_to_bits("10 1x1"), vec![true, false, true, true]);
    }

    #[test]
    fn trial_helper_matches_direct_transmissions() {
        let message = bytes_to_bits(b"AB");
        let config = CovertConfig::slow();
        let trials = transmit_trials(&config, &message, 0xC081, 2, Some(2));
        for (i, trial) in trials.iter().enumerate() {
            let direct = transmit(&config, &message, exec::derive_seed(0xC081, i as u64));
            assert_eq!(trial, &direct);
        }
    }

    #[test]
    fn schedule_shape() {
        let cfg = CovertConfig::slow();
        let (schedule, end) = sender_schedule(&cfg, &[true, false, true], Ps::from_ms(10));
        // Preamble 8 + payload 3 slots of 20 ms starting at 10 ms.
        assert_eq!(end, Ps::from_ms(10 + 11 * 20));
        assert_eq!(schedule.value_at(Ps::from_ms(10)), cfg.high_power); // preamble 1
        assert_eq!(schedule.value_at(Ps::from_ms(30)), cfg.low_power); // preamble 0
        assert_eq!(schedule.value_at(end), 0.0);
    }
}
