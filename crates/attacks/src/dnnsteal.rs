//! Case study 3: stealing DNN model architectures (paper Section IV-C,
//! Table V).
//!
//! The victim runs model inference; each layer type has a characteristic
//! compute intensity and duration, which shows up in the shared frequency
//! domain and hence in the attacker's SegCnt trace (sampled once per
//! timer interrupt, i.e. at HZ). An offline-trained BiLSTM tags each
//! SegCnt sample with a layer type; collapsing runs of equal tags yields
//! the layer sequence, scored with Segment Accuracy (SA) and Levenshtein
//! Distance Accuracy (LDA).

use irq::time::Ps;
use nnet::{AdamConfig, SeqTagger, TaggedExample};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scenario::{RunOptions, Scenario, TrialCtx};
use segscope::SegProbe;
use segsim::{FaultPlan, Machine, MachineConfig, StepFn};
use serde::{Deserialize, Serialize};

/// The layer types distinguished in paper Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LayerType {
    /// Convolution.
    Conv,
    /// Batch normalization.
    BatchNorm,
    /// ReLU activation.
    ReLu,
    /// Max pooling.
    MaxPool,
    /// Average pooling.
    AvgPool,
    /// Fully-connected layer.
    Linear,
}

impl LayerType {
    /// All six classes in Table V column order.
    pub const ALL: [LayerType; 6] = [
        LayerType::Conv,
        LayerType::BatchNorm,
        LayerType::ReLu,
        LayerType::MaxPool,
        LayerType::AvgPool,
        LayerType::Linear,
    ];

    /// Class index for the tagger.
    #[must_use]
    pub fn class(self) -> usize {
        match self {
            LayerType::Conv => 0,
            LayerType::BatchNorm => 1,
            LayerType::ReLu => 2,
            LayerType::MaxPool => 3,
            LayerType::AvgPool => 4,
            LayerType::Linear => 5,
        }
    }

    /// The Table V column label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LayerType::Conv => "Conv",
            LayerType::BatchNorm => "BN",
            LayerType::ReLu => "ReLu",
            LayerType::MaxPool => "MP",
            LayerType::AvgPool => "AP",
            LayerType::Linear => "Linear",
        }
    }

    /// Characteristic power excess of executing this layer (the
    /// Hertzbleed-style coupling into the frequency domain).
    fn power(self) -> f64 {
        match self {
            LayerType::Conv => 0.85,
            LayerType::BatchNorm => 0.38,
            LayerType::ReLu => 0.12,
            LayerType::MaxPool => 0.30,
            LayerType::AvgPool => 0.22,
            LayerType::Linear => 0.55,
        }
    }

    /// Typical duration range of one layer's execution, ms (batch-size
    /// and channel-count dependent in reality).
    fn duration_ms(self) -> (u64, u64) {
        match self {
            LayerType::Conv => (30, 90),
            LayerType::BatchNorm => (8, 20),
            LayerType::ReLu => (4, 10),
            LayerType::MaxPool => (8, 18),
            LayerType::AvgPool => (5, 12),
            LayerType::Linear => (12, 36),
        }
    }
}

/// A victim model architecture: an ordered sequence of layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    /// The layer sequence.
    pub layers: Vec<LayerType>,
}

impl Architecture {
    /// An AlexNet-style architecture: conv blocks with pools, linear
    /// head.
    #[must_use]
    pub fn alexnet_like<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut layers = Vec::new();
        let blocks = rng.gen_range(3..6);
        for _ in 0..blocks {
            layers.push(LayerType::Conv);
            layers.push(LayerType::ReLu);
            if rng.gen_bool(0.6) {
                layers.push(LayerType::MaxPool);
            }
        }
        layers.push(LayerType::AvgPool);
        for _ in 0..rng.gen_range(1..4) {
            layers.push(LayerType::Linear);
            layers.push(LayerType::ReLu);
        }
        Architecture { layers }
    }

    /// A VGG-style architecture: conv+BN blocks, deeper, pools between.
    #[must_use]
    pub fn vgg_like<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut layers = Vec::new();
        let stages = rng.gen_range(3..6);
        for _ in 0..stages {
            for _ in 0..rng.gen_range(1..3) {
                layers.push(LayerType::Conv);
                layers.push(LayerType::BatchNorm);
                layers.push(LayerType::ReLu);
            }
            layers.push(LayerType::MaxPool);
        }
        layers.push(LayerType::AvgPool);
        layers.push(LayerType::Linear);
        Architecture { layers }
    }

    /// A random architecture (the paper's third family).
    #[must_use]
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let n = rng.gen_range(6..18);
        let layers = (0..n)
            .map(|_| LayerType::ALL[rng.gen_range(0..LayerType::ALL.len())])
            .collect();
        Architecture { layers }
    }

    /// Draws from one of the three families uniformly.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        match rng.gen_range(0..3) {
            0 => Architecture::alexnet_like(rng),
            1 => Architecture::vgg_like(rng),
            _ => Architecture::random(rng),
        }
    }

    /// Generates the inference schedule starting at `t0`: per-layer
    /// `(start, end, layer)` windows and the power curve.
    pub fn inference_schedule<R: Rng + ?Sized>(
        &self,
        t0: Ps,
        rng: &mut R,
    ) -> (Vec<(Ps, Ps, LayerType)>, StepFn) {
        let mut windows = Vec::with_capacity(self.layers.len());
        let mut power = StepFn::zero();
        let mut t = t0;
        for &layer in &self.layers {
            let (lo, hi) = layer.duration_ms();
            let dur = Ps::from_us(rng.gen_range(lo * 1000..hi * 1000));
            power.push(t, layer.power() + rng.gen_range(-0.04..0.04));
            windows.push((t, t + dur, layer));
            t += dur;
        }
        power.push(t, 0.0);
        (windows, power)
    }
}

/// Configuration of the architecture-stealing experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DnnStealConfig {
    /// Training architectures (paper: 2000).
    pub train_models: usize,
    /// Test architectures (paper: 500).
    pub test_models: usize,
    /// BiLSTM hidden units.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional interrupt-path fault plan installed on every victim
    /// machine traces are collected from (`None` = nominal run).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for DnnStealConfig {
    fn default() -> Self {
        DnnStealConfig::quick()
    }
}

impl DnnStealConfig {
    /// Test-scale configuration.
    #[must_use]
    pub fn quick() -> Self {
        DnnStealConfig {
            train_models: 24,
            test_models: 8,
            hidden: 12,
            epochs: 10,
            seed: 0xD2212,
            fault_plan: None,
        }
    }

    /// Bench-scale configuration.
    #[must_use]
    pub fn bench() -> Self {
        DnnStealConfig {
            train_models: 60,
            test_models: 20,
            hidden: 16,
            epochs: 16,
            seed: 0xD2212,
            fault_plan: None,
        }
    }

    /// Installs a fault plan on every trace-collection machine.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// Table V row: per-class SA, overall SA, and mean LDA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnnStealResult {
    /// Per-class segment accuracy in [`LayerType::ALL`] order (`None` for
    /// classes absent from the test set).
    pub per_class_sa: Vec<Option<f64>>,
    /// Overall segment accuracy.
    pub overall_sa: f64,
    /// Mean Levenshtein distance accuracy of collapsed layer sequences.
    pub lda: f64,
}

/// Collects one layer-annotated SegCnt trace of an inference run.
///
/// Returns `None` when the run produced no usable samples (never happens
/// at HZ = 250 with realistic layer durations).
#[must_use]
pub fn collect_annotated_trace(arch: &Architecture, seed: u64) -> Option<TaggedExample> {
    collect_annotated_trace_with(arch, seed, None)
}

/// [`collect_annotated_trace`] with an optional fault plan installed on
/// the victim machine.
#[must_use]
pub fn collect_annotated_trace_with(
    arch: &Architecture,
    seed: u64,
    fault_plan: Option<FaultPlan>,
) -> Option<TaggedExample> {
    let mut machine = Machine::new(MachineConfig::lenovo_yangtian(), seed);
    machine.set_fault_plan(fault_plan);
    collect_annotated_on(&mut machine, arch, seed)
}

/// [`collect_annotated_trace`] against an already-built victim machine.
/// `trace_seed` only derives the inference-schedule RNG; the machine's
/// own stream was fixed at construction.
#[must_use]
pub fn collect_annotated_on(
    machine: &mut Machine,
    arch: &Architecture,
    trace_seed: u64,
) -> Option<TaggedExample> {
    machine.spin(100_000_000); // warm-up
    let t0 = machine.now();
    let mut sched_rng = SmallRng::seed_from_u64(exec::derive_seed(trace_seed, exec::AUX_STREAM));
    let (windows, power) = arch.inference_schedule(t0, &mut sched_rng);
    machine.set_power_excess(power);
    let end = windows.last().map(|&(_, e, _)| e)?;
    let mut probe = SegProbe::new();
    let mut raw: Vec<(f64, usize)> = Vec::new();
    while machine.now() < end {
        let sample = probe.probe_once(machine).ok()?;
        // torch.autograd.profiler analogue: the simulator knows which
        // layer was executing when the interval ended.
        let at = sample.ended_at;
        if let Some(&(_, _, layer)) = windows.iter().find(|&&(s, e, _)| at >= s && at < e) {
            raw.push((sample.segcnt as f64, layer.class()));
        }
    }
    if raw.len() < 8 {
        return None;
    }
    let series: Vec<f64> = raw.iter().map(|&(x, _)| x).collect();
    let std = nnet::standardize(&series);
    Some(TaggedExample {
        xs: nnet::to_features(&std),
        tags: raw.iter().map(|&(_, t)| t).collect(),
    })
}

/// Runs the full offline-train / online-classify pipeline.
///
/// Trace collection fans out one task per model: each task derives its
/// own seed (used for both the architecture draw and the inference
/// trace) from `config.seed`, so the dataset is bit-identical at any
/// worker count.
#[must_use]
pub fn run_experiment(config: &DnnStealConfig) -> DnnStealResult {
    scenario::run_scenario(&DnnStealScenario, config, &RunOptions::default()).summary
}

/// [`Scenario`] face of the architecture-stealing experiment. One task
/// per victim model: training models occupy task indices
/// `0..train_models`, test models continue from there. Each task's seed
/// drives both the architecture draw and the inference trace, so the
/// dataset is bit-identical at any worker count. [`Scenario::summarize`]
/// trains the BiLSTM tagger on the training traces and evaluates SA/LDA
/// on the test traces.
#[derive(Debug, Clone, Copy, Default)]
pub struct DnnStealScenario;

impl Scenario for DnnStealScenario {
    type Config = DnnStealConfig;
    type TrialOutput = Option<TaggedExample>;
    type Summary = DnnStealResult;

    fn name(&self) -> &'static str {
        "dnnsteal"
    }

    fn describe(&self) -> &'static str {
        "DNN architecture stealing: tag SegCnt inference traces with a \
         BiLSTM layer classifier (paper Section IV-C, Table V)"
    }

    fn experiment_seed(&self, config: &DnnStealConfig, requested: Option<u64>) -> u64 {
        requested.unwrap_or(config.seed)
    }

    fn trial_count(&self, config: &DnnStealConfig, _requested: Option<usize>) -> usize {
        // The train/test split is structural: the trial count follows the
        // config, not the CLI `--trials` knob.
        config.train_models + config.test_models
    }

    fn build_machine(&self, config: &DnnStealConfig, ctx: &TrialCtx) -> Machine {
        let mut machine = Machine::new(
            MachineConfig::lenovo_yangtian(),
            exec::derive_seed(ctx.seed, exec::AUX_STREAM),
        );
        machine.set_fault_plan(config.fault_plan);
        machine
    }

    fn run_trial(
        &self,
        _config: &DnnStealConfig,
        machine: &mut Machine,
        ctx: &TrialCtx,
    ) -> Option<TaggedExample> {
        let mut arch_rng = SmallRng::seed_from_u64(ctx.seed);
        let arch = Architecture::sample(&mut arch_rng);
        collect_annotated_on(
            machine,
            &arch,
            exec::derive_seed(ctx.seed, exec::AUX_STREAM),
        )
    }

    fn summarize(
        &self,
        config: &DnnStealConfig,
        outputs: &[Option<TaggedExample>],
    ) -> DnnStealResult {
        let split = config.train_models.min(outputs.len());
        let (train_raw, test_raw) = outputs.split_at(split);
        let train: Vec<TaggedExample> = train_raw.iter().flatten().cloned().collect();
        let test: Vec<TaggedExample> = test_raw.iter().flatten().cloned().collect();
        let mut rng = SmallRng::seed_from_u64(exec::derive_seed(config.seed, exec::AUX_STREAM));
        let mut model = SeqTagger::new(
            1,
            config.hidden,
            LayerType::ALL.len(),
            &mut rng,
            AdamConfig {
                lr: 0.02,
                ..AdamConfig::default()
            },
        );
        for _ in 0..config.epochs {
            model.train_epoch(&train, 8);
        }
        // Evaluate.
        let mut all_pred = Vec::new();
        let mut all_truth = Vec::new();
        let mut ldas = Vec::new();
        for ex in &test {
            let pred = model.predict(&ex.xs);
            ldas.push(nnet::levenshtein_accuracy(
                &nnet::collapse_runs(&pred),
                &nnet::collapse_runs(&ex.tags),
            ));
            all_pred.extend_from_slice(&pred);
            all_truth.extend_from_slice(&ex.tags);
        }
        DnnStealResult {
            per_class_sa: nnet::per_class_segment_accuracy(
                &all_pred,
                &all_truth,
                LayerType::ALL.len(),
            ),
            overall_sa: nnet::segment_accuracy(&all_pred, &all_truth),
            lda: segscope::mean(&ldas),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_have_expected_shapes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let alex = Architecture::alexnet_like(&mut rng);
        assert!(alex.layers.contains(&LayerType::Conv));
        assert!(alex.layers.contains(&LayerType::Linear));
        let vgg = Architecture::vgg_like(&mut rng);
        assert!(vgg.layers.contains(&LayerType::BatchNorm));
        let rand_arch = Architecture::random(&mut rng);
        assert!(rand_arch.layers.len() >= 6);
    }

    #[test]
    fn schedule_is_contiguous_and_ordered() {
        let mut rng = SmallRng::seed_from_u64(2);
        let arch = Architecture::vgg_like(&mut rng);
        let (windows, _) = arch.inference_schedule(Ps::from_ms(1), &mut rng);
        assert_eq!(windows.len(), arch.layers.len());
        for pair in windows.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "layers execute back-to-back");
        }
        for &(s, e, _) in &windows {
            assert!(e > s);
        }
    }

    #[test]
    fn conv_layers_depress_segcnt() {
        // Heavy layers draw more power -> lower frequency -> lower SegCnt.
        // Use long same-type stretches so the governor (first-order lag,
        // ~1 ms updates) settles within each phase — isolated ReLU layers
        // are too short for a clean per-layer comparison, which is exactly
        // why their SA is low in paper Table V.
        let arch = Architecture {
            layers: vec![
                LayerType::Conv,
                LayerType::Conv,
                LayerType::Conv,
                LayerType::ReLu,
                LayerType::ReLu,
                LayerType::ReLu,
                LayerType::ReLu,
                LayerType::ReLu,
                LayerType::ReLu,
                LayerType::ReLu,
                LayerType::ReLu,
                LayerType::Conv,
                LayerType::Conv,
                LayerType::Conv,
            ],
        };
        let ex = collect_annotated_trace(&arch, 33).expect("trace collected");
        let mut conv = Vec::new();
        let mut relu = Vec::new();
        for (x, &t) in ex.xs.iter().zip(&ex.tags) {
            if t == LayerType::Conv.class() {
                conv.push(f64::from(x[0]));
            } else if t == LayerType::ReLu.class() {
                relu.push(f64::from(x[0]));
            }
        }
        assert!(
            conv.len() > 3 && relu.len() > 3,
            "conv {} relu {}",
            conv.len(),
            relu.len()
        );
        assert!(
            segscope::mean(&conv) < segscope::mean(&relu),
            "conv SegCnt {} !< relu {}",
            segscope::mean(&conv),
            segscope::mean(&relu)
        );
    }

    #[test]
    fn quick_experiment_beats_chance() {
        let result = run_experiment(&DnnStealConfig::quick());
        // 6 classes: chance SA ~ largest class share; demand well above.
        assert!(result.overall_sa > 0.5, "overall SA {}", result.overall_sa);
        assert!(result.lda > 0.4, "LDA {}", result.lda);
        // Conv dominates sample counts and is learned best.
        let conv_sa = result.per_class_sa[LayerType::Conv.class()].unwrap_or(0.0);
        assert!(conv_sa > 0.6, "conv SA {conv_sa}");
    }

    #[test]
    fn labels_cover_all_classes() {
        let mut labels: Vec<_> = LayerType::ALL.iter().map(|l| l.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
        for (i, l) in LayerType::ALL.iter().enumerate() {
            assert_eq!(l.class(), i);
        }
    }
}
