//! Enclave attack: malicious interrupt injection into a confidential VM
//! (Heckler style).
//!
//! A malicious hypervisor *injects* interrupts into a CVM victim to
//! perturb it at chosen moments — the fault-injection machinery turned
//! offensive. The victim performs periodic sensitive windows inside an
//! enclave on a nominal schedule; the attacker predicts each window's
//! center from the schedule and fires a one-shot there (via
//! [`Machine::inject_exits`]). A shot that lands while the enclave is
//! active forces an AEX exactly inside the sensitive region — a *hit*.
//!
//! Defenses interact through timing, not filtering: QuanShield destroys
//! the enclave at the first AEX (one hit, then nothing left to hit),
//! and deterministic padding's pad exits steal victim time, drifting
//! the real windows off the nominal schedule until the attacker's
//! predicted centers miss.

use irq::time::Ps;
use irq::InterruptKind;
use scenario::{Scenario, TrialCtx};
use segsim::{ExitClass, Machine, MachineConfig};
use serde::{Deserialize, Serialize};

/// Parameters of the injection experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HecklerConfig {
    /// The victim machine (defenses and fault plans travel inside).
    pub machine: MachineConfig,
    /// Independent trials.
    pub trials: usize,
    /// Sensitive windows per trial.
    pub windows: usize,
    /// Cycles of enclave work per sensitive window.
    pub window_cycles: u64,
    /// Cycles of unprotected work between windows.
    pub idle_cycles: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HecklerConfig {
    /// The test-scale [`HecklerConfig::quick`] experiment.
    fn default() -> Self {
        HecklerConfig::quick()
    }
}

impl HecklerConfig {
    /// Test-scale configuration: ~100 µs windows spaced ~10 ms apart on
    /// the Table I Xiaomi machine.
    #[must_use]
    pub fn quick() -> Self {
        HecklerConfig {
            machine: MachineConfig::xiaomi_air13(),
            trials: 12,
            windows: 16,
            window_cycles: 340_000,
            idle_cycles: 34_000_000,
            seed: 0x4EC7,
        }
    }
}

/// One injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HecklerTrial {
    /// Windows whose enclave run suffered at least one AEX.
    pub hits: usize,
    /// Windows attempted.
    pub windows: usize,
    /// Windows the enclave refused to enter (destroyed by a defense).
    pub refused: usize,
    /// Whether a countermeasure destroyed the enclave mid-run.
    pub destroyed: bool,
}

/// Summary of an injection run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HecklerSummary {
    /// Mean per-window hit rate across trials.
    pub accuracy: f64,
    /// Fraction of trials whose enclave was destroyed by a defense.
    pub destroyed_frac: f64,
    /// Mean windows refused (enclave already destroyed) per trial.
    pub mean_refused: f64,
    /// Trial count.
    pub trials: usize,
}

/// Runs one injection trial on a prepared machine.
///
/// Per window, the attacker predicts the window center from the
/// *nominal* schedule (idle span plus half the window span at the
/// current P-state — a hypervisor sees wall-clock time and the core's
/// frequency, but not the defense's time theft) and arms one one-shot
/// there. Hits are scored from the machine's AEX counter, which only
/// advances for exits taken while the enclave is active.
pub fn inject_on(machine: &mut Machine, config: &HecklerConfig) -> HecklerTrial {
    machine.spin(20_000_000); // warm-up: settle governor and caches

    let mut hits = 0;
    let mut refused = 0;
    for _ in 0..config.windows {
        // Predict and arm before the victim runs: nominal idle plus half
        // the window at the current frequency, measured from the current
        // instant.
        let khz = machine.current_freq_khz();
        let idle_span = Ps::from_cycles_at(config.idle_cycles, khz);
        let window_span = Ps::from_cycles_at(config.window_cycles, khz);
        let predicted_center = machine.now() + idle_span + window_span / 2;
        machine.inject_exits([(predicted_center, InterruptKind::Other, ExitClass::Irq)]);

        machine.spin(config.idle_cycles);
        let aex_before = machine.aex_exits();
        if machine.enter_enclave() {
            machine.spin(config.window_cycles);
            machine.exit_enclave();
            if machine.aex_exits() > aex_before {
                hits += 1;
            }
        } else {
            refused += 1;
            machine.spin(config.window_cycles);
        }
    }

    HecklerTrial {
        hits,
        windows: config.windows,
        refused,
        destroyed: machine.enclave_destroyed(),
    }
}

/// Reduces trial outputs to the run summary.
#[must_use]
pub fn summarize_heckler(outputs: &[HecklerTrial]) -> HecklerSummary {
    let n = outputs.len().max(1) as f64;
    let rate: f64 = outputs
        .iter()
        .map(|t| t.hits as f64 / t.windows.max(1) as f64)
        .sum();
    HecklerSummary {
        accuracy: rate / n,
        destroyed_frac: outputs.iter().filter(|t| t.destroyed).count() as f64 / n,
        mean_refused: outputs.iter().map(|t| t.refused as f64).sum::<f64>() / n,
        trials: outputs.len(),
    }
}

/// The registered interrupt-injection scenario.
pub struct HecklerScenario;

impl Scenario for HecklerScenario {
    type Config = HecklerConfig;
    type TrialOutput = HecklerTrial;
    type Summary = HecklerSummary;

    fn name(&self) -> &'static str {
        "heckler"
    }

    fn describe(&self) -> &'static str {
        "Heckler-style injection: a malicious hypervisor fires one-shot interrupts into a CVM's predicted sensitive windows"
    }

    fn experiment_seed(&self, config: &Self::Config, requested: Option<u64>) -> u64 {
        requested.unwrap_or(config.seed)
    }

    fn trial_count(&self, config: &Self::Config, requested: Option<usize>) -> usize {
        requested.unwrap_or(config.trials)
    }

    fn build_machine(&self, config: &Self::Config, ctx: &TrialCtx) -> Machine {
        Machine::new(config.machine.clone(), ctx.seed)
    }

    fn run_trial(
        &self,
        config: &Self::Config,
        machine: &mut Machine,
        _ctx: &TrialCtx,
    ) -> HecklerTrial {
        inject_on(machine, config)
    }

    fn summarize(&self, _config: &Self::Config, outputs: &[Self::TrialOutput]) -> HecklerSummary {
        summarize_heckler(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenario::RunOptions;
    use segsim::Defense;

    fn run(config: HecklerConfig, trials: usize) -> (Vec<HecklerTrial>, HecklerSummary) {
        let opts = RunOptions {
            trials: Some(trials),
            ..RunOptions::default()
        };
        let run = scenario::run_scenario(&HecklerScenario, &config, &opts);
        (run.outputs, run.summary)
    }

    #[test]
    fn predicted_shots_land_in_undefended_windows() {
        let (_, summary) = run(HecklerConfig::quick(), 6);
        assert!(
            summary.accuracy >= 0.8,
            "nominal schedule should be hittable, got {}",
            summary.accuracy
        );
        assert_eq!(summary.destroyed_frac, 0.0);
    }

    #[test]
    fn quanshield_leaves_at_most_one_hit() {
        let mut config = HecklerConfig::quick();
        config.machine = config.machine.with_defense(Defense::QuanShield);
        let (outputs, summary) = run(config, 6);
        assert_eq!(summary.destroyed_frac, 1.0);
        assert!(outputs.iter().all(|t| t.hits <= 1));
        assert!(
            summary.mean_refused > 0.0,
            "destroyed enclave refuses re-entry"
        );
    }

    #[test]
    fn padding_drifts_the_windows_off_schedule() {
        let mut config = HecklerConfig::quick();
        config.machine = config.machine.with_defense(Defense::default_padding());
        let (_, padded) = run(config, 6);
        let (_, plain) = run(HecklerConfig::quick(), 6);
        assert!(
            padded.accuracy < plain.accuracy,
            "pad-induced drift should spoil predicted centers: {} vs {}",
            padded.accuracy,
            plain.accuracy
        );
    }

    #[test]
    fn trials_are_deterministic() {
        let (a, _) = run(HecklerConfig::quick(), 4);
        let (b, _) = run(HecklerConfig::quick(), 4);
        assert_eq!(a, b);
    }
}
