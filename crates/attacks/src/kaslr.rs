//! Case study 5: breaking KASLR with the SegScope-based timer (paper
//! Section IV-E, Figs. 10–11, Tables VII–VIII).
//!
//! The attacker times repeated accesses (or prefetches) to each of the
//! 512 candidate kernel-text base addresses. Mapped addresses are faster;
//! amplifying with `K` repetitions and `C` timing rounds per slot makes
//! the gap visible even to the noisy SegScope timer.

use irq::time::Ps;
use memsim::{KaslrLayout, KASLR_SLOTS};
use scenario::{RunOptions, Scenario, TrialCtx};
use segscope::{CountingThreadTimer, Denoise, ProbeError, SegTimer};
use segsim::{Machine, MachineConfig, SimError};
use serde::{Deserialize, Serialize};

/// How candidate kernel addresses are probed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProbeMethod {
    /// Direct memory access (faults; absorbed by a user SIGSEGV handler).
    Access,
    /// Software prefetch (never faults).
    Prefetch,
}

/// The timer used to measure probe latencies (the rows of paper
/// Table VII).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TimerKind {
    /// The SegScope timer with a denoising mode.
    SegScope(Denoise),
    /// The SMT counting-thread timer.
    CountingThread,
    /// The architectural high-resolution timer (`rdtsc`/`rdpru`).
    HighRes,
    /// A coarse architectural clock with the given resolution.
    Coarse(Ps),
}

impl TimerKind {
    /// The row label used in Table VII.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            TimerKind::SegScope(Denoise::None) => "Our timer without any denoising".to_owned(),
            TimerKind::SegScope(Denoise::ZScore) => "Our timer with Z-score (default)".to_owned(),
            TimerKind::SegScope(Denoise::Freq) => "Our timer with frequency".to_owned(),
            TimerKind::SegScope(Denoise::ZScoreAndFreq) => {
                "Our timer with Z-score and frequency".to_owned()
            }
            TimerKind::CountingThread => "Counting thread".to_owned(),
            TimerKind::HighRes => "Architectural high-resolution timer".to_owned(),
            TimerKind::Coarse(res) => format!("Architectural timer ({res})"),
        }
    }
}

/// Configuration of one KASLR-break run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KaslrConfig {
    /// Probing method.
    pub method: ProbeMethod,
    /// Probes per timing (K).
    pub k: usize,
    /// Timings per candidate slot (C).
    pub c: usize,
    /// Timer under test.
    pub timer: TimerKind,
    /// Number of candidate slots scanned (512 in the paper; tests may
    /// scan fewer, always including the secret).
    pub slots: usize,
    /// SegScope timer calibration samples.
    pub calibration: usize,
}

impl Default for KaslrConfig {
    /// The reduced [`KaslrConfig::quick`] scan.
    fn default() -> Self {
        KaslrConfig::quick()
    }
}

impl KaslrConfig {
    /// The paper's default: prefetch probing, SegScope timer with
    /// Z-score, K=64, C=5, all 512 slots (Fig. 11 shows the timing gap
    /// needs a "proper K" to clear the timer's noise floor).
    #[must_use]
    pub fn paper_default() -> Self {
        KaslrConfig {
            method: ProbeMethod::Prefetch,
            k: 64,
            c: 5,
            timer: TimerKind::SegScope(Denoise::ZScore),
            slots: KASLR_SLOTS,
            calibration: 120,
        }
    }

    /// A reduced scan for unit tests (64 slots).
    #[must_use]
    pub fn quick() -> Self {
        KaslrConfig {
            slots: 64,
            c: 3,
            ..KaslrConfig::paper_default()
        }
    }
}

/// The outcome of one KASLR-break run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KaslrResult {
    /// Candidate slots ordered best (fastest) first.
    pub ranking: Vec<usize>,
    /// The true base slot.
    pub secret_slot: usize,
    /// Simulated wall-clock the attack took, seconds.
    pub elapsed_s: f64,
}

impl KaslrResult {
    /// Whether the top-ranked candidate is the true base.
    #[must_use]
    pub fn top1_hit(&self) -> bool {
        self.ranking.first() == Some(&self.secret_slot)
    }

    /// Whether the true base ranks within the top `n` candidates.
    #[must_use]
    pub fn top_n_hit(&self, n: usize) -> bool {
        self.ranking.iter().take(n).any(|&s| s == self.secret_slot)
    }
}

/// Errors of the KASLR attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KaslrError {
    /// The configured timer is architecturally unavailable (e.g. `rdtsc`
    /// under `CR4.TSD`).
    TimerUnavailable,
    /// The SegScope probe failed (mitigated machine).
    Probe(ProbeError),
}

impl From<ProbeError> for KaslrError {
    fn from(e: ProbeError) -> Self {
        KaslrError::Probe(e)
    }
}

impl From<SimError> for KaslrError {
    fn from(_: SimError) -> Self {
        KaslrError::TimerUnavailable
    }
}

impl std::fmt::Display for KaslrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KaslrError::TimerUnavailable => write!(f, "configured timer is unavailable"),
            KaslrError::Probe(e) => write!(f, "segscope probe failed: {e}"),
        }
    }
}

impl std::error::Error for KaslrError {}

fn probe_k(machine: &mut Machine, method: ProbeMethod, addr: u64, k: usize) {
    for _ in 0..k {
        match method {
            ProbeMethod::Access => machine.kernel_probe_access(addr),
            ProbeMethod::Prefetch => machine.kernel_probe_prefetch(addr),
        }
    }
}

/// Runs one KASLR break on `machine` (which must have a KASLR layout
/// installed).
///
/// # Errors
///
/// [`KaslrError::TimerUnavailable`] when the configured timer cannot be
/// read; [`KaslrError::Probe`] when the SegScope probe is mitigated.
///
/// # Panics
///
/// Panics if no KASLR layout is installed.
pub fn break_kaslr(machine: &mut Machine, config: &KaslrConfig) -> Result<KaslrResult, KaslrError> {
    let secret_slot = machine
        .kaslr()
        .expect("KASLR layout installed")
        .secret_slot();
    // Scan a contiguous window of candidate slots that always contains
    // the secret (the full 512 in paper scale).
    let first = if config.slots >= KASLR_SLOTS {
        0
    } else {
        secret_slot
            .saturating_sub(config.slots / 2)
            .min(KASLR_SLOTS - config.slots)
    };
    let candidates: Vec<usize> = (first..first + config.slots.min(KASLR_SLOTS)).collect();
    let start = machine.now();
    let mut seg_timer = match config.timer {
        TimerKind::SegScope(denoise) => {
            Some(SegTimer::calibrate(machine, config.calibration, denoise)?)
        }
        _ => None,
    };
    let mut scores: Vec<(usize, f64)> = Vec::with_capacity(candidates.len());
    for &slot in &candidates {
        let addr = machine.kaslr().expect("layout").slot_base(slot);
        let mut estimates = Vec::with_capacity(config.c);
        for _ in 0..config.c {
            let ticks = match (&mut seg_timer, config.timer) {
                (Some(timer), TimerKind::SegScope(_)) => {
                    timer
                        .time(machine, |m| probe_k(m, config.method, addr, config.k))?
                        .ticks
                }
                (_, TimerKind::CountingThread) => {
                    let (_, delta) = CountingThreadTimer::time(machine, |m| {
                        probe_k(m, config.method, addr, config.k)
                    });
                    delta as f64
                }
                (_, TimerKind::HighRes) => {
                    let t0 = machine.rdtsc()?;
                    probe_k(machine, config.method, addr, config.k);
                    let t1 = machine.rdtsc()?;
                    (t1 - t0) as f64
                }
                (_, TimerKind::Coarse(res)) => {
                    let t0 = machine.clock_read(res)?;
                    probe_k(machine, config.method, addr, config.k);
                    let t1 = machine.clock_read(res)?;
                    (t1 - t0) as f64
                }
                _ => unreachable!("seg timer initialized iff TimerKind::SegScope"),
            };
            estimates.push(ticks);
        }
        // Per-slot aggregation. With denoising, use the median (robust to
        // the occasional non-timer-edge outlier); the "without any
        // denoising" Table VII row takes the raw mean.
        let denoised = !matches!(config.timer, TimerKind::SegScope(Denoise::None));
        let score = if denoised && estimates.len() >= 2 {
            estimates.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            estimates[estimates.len() / 2]
        } else {
            segscope::mean(&estimates)
        };
        scores.push((slot, score));
    }
    // The kernel image spans KERNEL_TEXT_SLOTS consecutive mapped slots,
    // all of which probe fast — the *base* is where the slow→fast
    // transition happens. Rank candidates by the (most negative)
    // transition `score[b] - score[b-1]`.
    let mut transitions: Vec<(usize, f64)> = Vec::with_capacity(scores.len());
    for w in scores.windows(2) {
        let (_, prev_score) = w[0];
        let (slot, score) = w[1];
        transitions.push((slot, score - prev_score));
    }
    // The window's first slot has no left neighbour: neutral transition.
    if let Some(&(first_slot, _)) = scores.first() {
        transitions.push((first_slot, 0.0));
    }
    transitions.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are finite"));
    Ok(KaslrResult {
        ranking: transitions.into_iter().map(|(s, _)| s).collect(),
        secret_slot,
        elapsed_s: (machine.now() - start).as_secs_f64(),
    })
}

/// Convenience: builds a fresh machine with a randomized layout and runs
/// one break.
///
/// # Errors
///
/// See [`break_kaslr`].
pub fn break_kaslr_fresh(
    machine_cfg: MachineConfig,
    config: &KaslrConfig,
    seed: u64,
) -> Result<KaslrResult, KaslrError> {
    let mut machine = Machine::new(machine_cfg, seed);
    let layout = {
        let rng = machine.rng_mut();
        KaslrLayout::randomize(rng)
    };
    machine.set_kaslr(layout);
    machine.spin(50_000_000); // warm-up
    break_kaslr(&mut machine, config)
}

/// The registered KASLR scenario: each trial is one fresh-machine break
/// with a freshly randomized layout.
pub struct KaslrScenario;

/// Parameters of [`KaslrScenario`]: the full machine configuration (so
/// bench sweeps can vary `CR4.TSD`, frequency pinning, or fault plans)
/// plus the attack parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KaslrScenarioConfig {
    /// The victim machine (fault plans travel inside, via
    /// [`MachineConfig::with_fault_plan`]).
    pub machine: MachineConfig,
    /// The attack parameters.
    pub attack: KaslrConfig,
}

impl Default for KaslrScenarioConfig {
    /// The Table I Xiaomi machine under the quick scan.
    fn default() -> Self {
        KaslrScenarioConfig {
            machine: MachineConfig::xiaomi_air13(),
            attack: KaslrConfig::quick(),
        }
    }
}

/// Summary of a [`KaslrScenario`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KaslrSummary {
    /// Fraction of trials whose top-ranked candidate was the true base.
    pub top1_rate: f64,
    /// Fraction of trials ranking the true base within the top 5.
    pub top5_rate: f64,
    /// Trials that failed (timer unavailable / probe mitigated).
    pub failed: usize,
    /// Mean simulated attack duration over successful trials, seconds.
    pub mean_elapsed_s: f64,
}

impl Scenario for KaslrScenario {
    type Config = KaslrScenarioConfig;
    type TrialOutput = Result<KaslrResult, KaslrError>;
    type Summary = KaslrSummary;

    fn name(&self) -> &'static str {
        "kaslr"
    }

    fn describe(&self) -> &'static str {
        "KASLR de-randomization by timing candidate kernel bases with the SegScope timer (paper Section IV-E)"
    }

    fn experiment_seed(&self, _config: &Self::Config, requested: Option<u64>) -> u64 {
        requested.unwrap_or(0x6A51)
    }

    fn trial_count(&self, _config: &Self::Config, requested: Option<usize>) -> usize {
        requested.unwrap_or(8)
    }

    fn build_machine(&self, config: &Self::Config, ctx: &TrialCtx) -> Machine {
        let mut machine = Machine::new(config.machine.clone(), ctx.seed);
        let layout = {
            let rng = machine.rng_mut();
            KaslrLayout::randomize(rng)
        };
        machine.set_kaslr(layout);
        machine
    }

    fn run_trial(
        &self,
        config: &Self::Config,
        machine: &mut Machine,
        _ctx: &TrialCtx,
    ) -> Result<KaslrResult, KaslrError> {
        machine.spin(50_000_000); // warm-up
        break_kaslr(machine, &config.attack)
    }

    /// Batched path: the chunk's trials share this worker's recycled
    /// machine lane instead of paying `Machine::new` per trial. The
    /// lane reset replays a fresh machine bit for bit, and the wiring
    /// below replays [`build_machine`](Scenario::build_machine)'s
    /// (layout randomization from the machine RNG, then `set_kaslr`), so
    /// outputs are identical to the per-trial path at any chunk
    /// geometry — `tests/batch_parity.rs` pins this.
    fn run_batch(
        &self,
        config: &Self::Config,
        ctxs: &[TrialCtx],
        fault_override: Option<segsim::FaultPlan>,
    ) -> Vec<(Self::TrialOutput, scenario::TrialStats)> {
        ctxs.iter()
            .map(|ctx| {
                scenario::with_recycled_machine(config.machine.clone(), ctx.seed, |machine| {
                    let layout = KaslrLayout::randomize(machine.rng_mut());
                    machine.set_kaslr(layout);
                    if let Some(plan) = fault_override {
                        machine.set_fault_plan(Some(plan));
                    }
                    let output = self.run_trial(config, machine, ctx);
                    (output, scenario::TrialStats::of(machine))
                })
            })
            .collect()
    }

    fn summarize(&self, _config: &Self::Config, outputs: &[Self::TrialOutput]) -> KaslrSummary {
        let (top1_rate, top5_rate) = hit_rates(outputs, 5);
        let elapsed: Vec<f64> = outputs
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|k| k.elapsed_s))
            .collect();
        KaslrSummary {
            top1_rate,
            top5_rate,
            failed: outputs.iter().filter(|r| r.is_err()).count(),
            mean_elapsed_s: segscope::mean(&elapsed),
        }
    }
}

/// Runs `trials` independent fresh-machine KASLR breaks in parallel and
/// returns the per-trial outcomes in trial order.
///
/// Thin wrapper over the generic [`scenario`] driver and
/// [`KaslrScenario`]: each trial derives its own seed from
/// `(experiment_seed, trial index)`, so the result vector is
/// bit-identical at any worker count (`threads`: explicit override, else
/// the `SEGSCOPE_THREADS` environment variable, else all cores).
#[must_use]
pub fn run_trials(
    machine_cfg: &MachineConfig,
    config: &KaslrConfig,
    experiment_seed: u64,
    trials: usize,
    threads: Option<usize>,
) -> Vec<Result<KaslrResult, KaslrError>> {
    let cfg = KaslrScenarioConfig {
        machine: machine_cfg.clone(),
        attack: *config,
    };
    let opts = RunOptions {
        seed: Some(experiment_seed),
        trials: Some(trials),
        threads,
        ..RunOptions::default()
    };
    scenario::run_scenario(&KaslrScenario, &cfg, &opts).outputs
}

/// Top-1 and top-`n` hit rates over a batch of [`run_trials`] outcomes
/// (failed trials count as misses).
#[must_use]
pub fn hit_rates(results: &[Result<KaslrResult, KaslrError>], n: usize) -> (f64, f64) {
    let total = results.len().max(1) as f64;
    let top1 = results
        .iter()
        .filter(|r| r.as_ref().is_ok_and(KaslrResult::top1_hit))
        .count() as f64;
    let topn = results
        .iter()
        .filter(|r| r.as_ref().is_ok_and(|k| k.top_n_hit(n)))
        .count() as f64;
    (top1 / total, topn / total)
}

/// Collects SegCnt-tick distributions for mapped vs unmapped probing at a
/// given `K` (the data of paper Figs. 10 and 11).
///
/// # Errors
///
/// Propagates probe errors.
pub fn k_sweep_distributions(
    method: ProbeMethod,
    k: usize,
    rounds: usize,
    seed: u64,
) -> Result<(Vec<f64>, Vec<f64>), KaslrError> {
    let mut machine = Machine::new(MachineConfig::xiaomi_air13(), seed);
    machine.set_kaslr(KaslrLayout::with_slot(100));
    machine.spin(50_000_000);
    let mut timer = SegTimer::calibrate(&mut machine, 100, Denoise::ZScore)?;
    let mapped_addr = machine.kaslr().expect("layout").slot_base(100);
    let unmapped_addr = machine.kaslr().expect("layout").slot_base(400);
    let mut mapped = Vec::with_capacity(rounds);
    let mut unmapped = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        mapped.push(
            timer
                .time(&mut machine, |m| probe_k(m, method, mapped_addr, k))?
                .ticks,
        );
        unmapped.push(
            timer
                .time(&mut machine, |m| probe_k(m, method, unmapped_addr, k))?
                .ticks,
        );
    }
    Ok((mapped, unmapped))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_break_ranks_secret_highly() {
        let config = KaslrConfig::quick();
        let result = break_kaslr_fresh(MachineConfig::xiaomi_air13(), &config, 0x6A51).unwrap();
        assert!(
            result.top_n_hit(5),
            "secret slot {} not in top-5 of {:?}",
            result.secret_slot,
            &result.ranking[..5]
        );
    }

    #[test]
    fn rdtsc_timer_breaks_kaslr_easily() {
        let config = KaslrConfig {
            timer: TimerKind::HighRes,
            c: 3,
            slots: 64,
            ..KaslrConfig::paper_default()
        };
        let result = break_kaslr_fresh(MachineConfig::xiaomi_air13(), &config, 0x6A52).unwrap();
        assert!(
            result.top1_hit(),
            "rdtsc should nail it: {:?}",
            &result.ranking[..3]
        );
    }

    #[test]
    fn millisecond_timer_fails() {
        // A 1 ms clock cannot see sub-microsecond probe differences: the
        // secret should rank no better than chance-ish.
        let config = KaslrConfig {
            timer: TimerKind::Coarse(Ps::from_ms(1)),
            c: 2,
            k: 4,
            slots: 64,
            ..KaslrConfig::paper_default()
        };
        let result = break_kaslr_fresh(MachineConfig::xiaomi_air13(), &config, 0x6A53).unwrap();
        assert!(
            !result.top1_hit(),
            "a 1 ms timer should not reliably find the slot"
        );
    }

    #[test]
    fn cr4_tsd_blocks_rdtsc_but_not_segscope() {
        let machine_cfg = MachineConfig::xiaomi_air13().with_cr4_tsd(true);
        let rdtsc_cfg = KaslrConfig {
            timer: TimerKind::HighRes,
            slots: 16,
            ..KaslrConfig::quick()
        };
        assert_eq!(
            break_kaslr_fresh(machine_cfg.clone(), &rdtsc_cfg, 1).unwrap_err(),
            KaslrError::TimerUnavailable
        );
        let seg_cfg = KaslrConfig {
            slots: 16,
            ..KaslrConfig::quick()
        };
        let result = break_kaslr_fresh(machine_cfg, &seg_cfg, 1).unwrap();
        assert!(result.top_n_hit(5), "SegScope must work under CR4.TSD");
    }

    #[test]
    fn larger_k_separates_distributions_better() {
        let (m1, u1) = k_sweep_distributions(ProbeMethod::Prefetch, 1, 12, 3).unwrap();
        let (m64, u64_) = k_sweep_distributions(ProbeMethod::Prefetch, 64, 12, 3).unwrap();
        let median = |xs: &[f64]| {
            let mut s = xs.to_vec();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        let gap = |m: &[f64], u: &[f64]| median(u) - median(m);
        assert!(
            gap(&m64, &u64_) > gap(&m1, &u1),
            "K=64 gap {} !> K=1 gap {}",
            gap(&m64, &u64_),
            gap(&m1, &u1)
        );
    }

    #[test]
    fn traced_break_matches_untraced_and_records_probes() {
        let cfg = KaslrScenarioConfig {
            attack: KaslrConfig {
                slots: 16,
                ..KaslrConfig::quick()
            },
            ..KaslrScenarioConfig::default()
        };
        let opts = RunOptions {
            seed: Some(0x6A54),
            trials: Some(1),
            ..RunOptions::default()
        };
        let plain = scenario::run_scenario(&KaslrScenario, &cfg, &opts);
        // The driver's per-trial seed matches what the direct API derives.
        let direct = break_kaslr_fresh(
            MachineConfig::xiaomi_air13(),
            &cfg.attack,
            exec::derive_seed(0x6A54, 0),
        )
        .unwrap();
        assert_eq!(plain.outputs[0].as_ref().unwrap(), &direct);
        let traced = scenario::run_scenario(
            &KaslrScenario,
            &cfg,
            &RunOptions {
                capacity: 1 << 16,
                ..opts
            },
        );
        assert_eq!(
            traced.outputs, plain.outputs,
            "tracing must not perturb the attack"
        );
        let sink = traced.sink.expect("traced run");
        assert!(sink.count_class(obs::EventClass::ProbeSample) > 0);
        assert!(sink.count_class(obs::EventClass::IrqDelivered) > 0);
        assert_eq!(sink.metrics.counter("timer.calibrations"), 1);
    }

    #[test]
    fn timer_labels_are_distinct() {
        let labels = [
            TimerKind::SegScope(Denoise::None).label(),
            TimerKind::SegScope(Denoise::ZScore).label(),
            TimerKind::SegScope(Denoise::Freq).label(),
            TimerKind::SegScope(Denoise::ZScoreAndFreq).label(),
            TimerKind::CountingThread.label(),
            TimerKind::HighRes.label(),
            TimerKind::Coarse(Ps::from_us(1)).label(),
            TimerKind::Coarse(Ps::from_ms(1)).label(),
        ];
        let mut sorted = labels.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
    }
}
