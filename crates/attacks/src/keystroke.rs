//! Extension case study: keystroke monitoring (paper Section V, "Other
//! security implications": SegScope can mount the interrupt side
//! channels of Trostle / Lipp et al. / Schwarz et al., i.e. recover
//! keystroke timings).
//!
//! The victim types on the keyboard; every key press raises a keyboard
//! interrupt on the attacker's core. The attacker probes with SegScope
//! and classifies each probed edge as *timer* (periodic, concentrated
//! SegCnt) or *other*; the non-timer edges' timestamps recover the
//! inter-keystroke timing — the signal classical keystroke-dynamics
//! attacks use to infer what (or who) is typing.
//!
//! Timestamps are reconstructed **without any clock** by summing SegCnt:
//! the cumulative tick count at each edge is a monotone time axis (ticks
//! ≈ cycles / k), which is all inter-keystroke *ratios* need.

use irq::time::Ps;
use irq::InterruptKind;
use nnet::{AdamConfig, SeqClassifier};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scenario::{RunOptions, Scenario, TrialCtx};
use segscope::{SegProbe, TimerEdgeClassifier};
use segsim::{FaultPlan, Machine, MachineConfig};
use serde::{Deserialize, Serialize};

/// A typing-rhythm profile: per-user inter-keystroke timing parameters.
///
/// Keystroke-dynamics literature models inter-key delays as log-normal;
/// the (mu, sigma) pair is a stable biometric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TypistProfile {
    /// Log-normal mu of the inter-keystroke delay (ln seconds).
    pub mu: f64,
    /// Log-normal sigma.
    pub sigma: f64,
}

impl TypistProfile {
    /// A deterministic profile for user `id` (used to build a cohort).
    #[must_use]
    pub fn for_user(id: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(0x7E57_u64 ^ (id as u64).wrapping_mul(0x9E37_79B9));
        TypistProfile {
            // Mean inter-key delay between ~90 ms and ~260 ms.
            mu: rng.gen_range(-2.4..-1.35),
            sigma: rng.gen_range(0.18..0.42),
        }
    }

    /// Draws one typing session of `keys` keystrokes starting at `t0`,
    /// returning the key-press instants.
    pub fn type_session<R: Rng + ?Sized>(&self, t0: Ps, keys: usize, rng: &mut R) -> Vec<Ps> {
        let mut t = t0;
        let mut out = Vec::with_capacity(keys);
        for _ in 0..keys {
            let delay_s = irq::dist::log_normal(rng, self.mu, self.sigma);
            t += Ps::from_secs_f64(delay_s.clamp(0.02, 2.0));
            out.push(t);
        }
        out
    }
}

/// One recovered keystroke trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeystrokeTrace {
    /// Recovered keystroke instants on the attacker's tick axis
    /// (cumulative SegCnt at each detected keystroke edge).
    pub tick_times: Vec<f64>,
    /// Ground truth: how many keystrokes the victim actually typed.
    pub actual_keys: usize,
    /// Ground truth: true keystroke instants.
    pub actual_times: Vec<Ps>,
}

impl KeystrokeTrace {
    /// Number of keystrokes detected.
    #[must_use]
    pub fn detected_keys(&self) -> usize {
        self.tick_times.len()
    }

    /// Inter-keystroke intervals on the tick axis.
    #[must_use]
    pub fn tick_intervals(&self) -> Vec<f64> {
        self.tick_times.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Normalized timing signature: each interval divided by the mean
    /// interval (scale-free, so no tick↔second conversion is needed).
    #[must_use]
    pub fn signature(&self) -> Vec<f64> {
        let intervals = self.tick_intervals();
        let mean = segscope::mean(&intervals).max(1e-9);
        intervals.into_iter().map(|x| x / mean).collect()
    }

    /// Log-statistics of the intervals `(mean of ln, std of ln)` — the
    /// biometric feature pair.
    #[must_use]
    pub fn log_stats(&self) -> (f64, f64) {
        let logs: Vec<f64> = self
            .tick_intervals()
            .into_iter()
            .filter(|&x| x > 0.0)
            .map(f64::ln)
            .collect();
        (segscope::mean(&logs), segscope::std_dev(&logs))
    }
}

/// The keystroke monitor: SegScope probing plus Z-score edge
/// classification.
#[derive(Debug, Clone, Copy, Default)]
pub struct KeystrokeMonitor {
    /// Calibration probes used to learn the timer-edge band.
    pub calibration: usize,
}

impl KeystrokeMonitor {
    /// A monitor with the default calibration budget.
    #[must_use]
    pub fn new() -> Self {
        KeystrokeMonitor { calibration: 300 }
    }

    /// Monitors a typing session: the victim types `session` while the
    /// attacker probes; returns the recovered trace.
    ///
    /// # Panics
    ///
    /// Panics if the probe is mitigated (stock machines never are).
    pub fn monitor(&self, machine: &mut Machine, session: &[Ps]) -> KeystrokeTrace {
        let mut probe = SegProbe::new();
        // Calibrate the timer-edge classifier on pre-session quiet. The
        // calibration buffer doubles as the f64 scratch's source, and the
        // session loop below probes one sample at a time (no allocation).
        let mut calib = Vec::new();
        probe
            .probe_n_into(machine, self.calibration, &mut calib)
            .expect("probe works");
        let segcnts: Vec<f64> = calib.iter().map(|s| s.segcnt as f64).collect();
        let classifier = TimerEdgeClassifier::fit(&segcnts);
        // Inject the keyboard interrupts and monitor until the session
        // ends (plus one period of slack).
        machine.inject_interrupts(session.iter().map(|&t| (t, InterruptKind::Keyboard)));
        let session_end = *session.last().expect("non-empty session") + Ps::from_ms(20);
        let mut ticks = 0.0f64;
        let mut tick_times = Vec::new();
        // A keystroke splits one timer period into two short intervals:
        // the piece *ending at* the keystroke and the complement ending
        // at the next timer tick. Only the first piece is a keystroke
        // edge; a short interval that completes the period (the running
        // sum returns to the timer band) is the complement and must not
        // be double-counted.
        let mut since_timer_edge: Option<f64> = None;
        while machine.now() < session_end {
            let Ok(sample) = probe.probe_once(machine) else {
                break;
            };
            let cnt = sample.segcnt as f64;
            ticks += cnt;
            if classifier.is_timer_edge(cnt) {
                since_timer_edge = None;
                continue;
            }
            match since_timer_edge {
                Some(sum) if classifier.is_timer_edge(sum + cnt) => {
                    // Complement piece: the period is complete.
                    since_timer_edge = None;
                }
                Some(sum) => {
                    tick_times.push(ticks);
                    since_timer_edge = Some(sum + cnt);
                }
                None => {
                    tick_times.push(ticks);
                    since_timer_edge = Some(cnt);
                }
            }
        }
        KeystrokeTrace {
            tick_times,
            actual_keys: session.len(),
            actual_times: session.to_vec(),
        }
    }
}

/// Result of the user-identification experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdentifyResult {
    /// Fraction of sessions attributed to the right user.
    pub accuracy: f64,
    /// Number of users in the cohort.
    pub users: usize,
    /// Sessions evaluated.
    pub sessions: usize,
}

/// Configuration of the identification experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeystrokeConfig {
    /// The monitored machine. Countermeasures ([`segsim::Defense`]) and
    /// enclave state travel inside, so a campaign defense axis reaches
    /// the monitor without new plumbing.
    pub machine: MachineConfig,
    /// Cohort size.
    pub users: usize,
    /// Enrollment sessions per user.
    pub enroll_sessions: usize,
    /// Test sessions per user.
    pub test_sessions: usize,
    /// Keystrokes per session.
    pub keys_per_session: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional interrupt-path fault plan installed on every monitoring
    /// machine (`None` = nominal fault-free run).
    pub fault_plan: Option<FaultPlan>,
    /// Streaming-eval mode: each monitored session's normalized timing
    /// signature is streamed through a config-seeded [`serve`]
    /// classifier and the verdict is recorded as a
    /// [`obs::EventKind::ServeVerdict`] in the trial's trace sink. The
    /// classifier draws only from its own auxiliary stream and serving
    /// is RNG-free, so recovered traces — and golden dumps — are
    /// byte-identical with the flag off or on.
    #[serde(default)]
    pub streaming: bool,
}

impl Default for KeystrokeConfig {
    /// The test-scale [`KeystrokeConfig::quick`] experiment.
    fn default() -> Self {
        KeystrokeConfig::quick()
    }
}

impl KeystrokeConfig {
    /// Test-scale configuration.
    #[must_use]
    pub fn quick() -> Self {
        KeystrokeConfig {
            machine: MachineConfig::xiaomi_air13(),
            users: 5,
            enroll_sessions: 3,
            test_sessions: 2,
            keys_per_session: 40,
            seed: 0x5E55,
            fault_plan: None,
            streaming: false,
        }
    }

    /// Installs a fault plan on every monitoring machine.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

#[cfg(test)]
fn collect_trace(
    profile: &TypistProfile,
    seed: u64,
    keys: usize,
    fault_plan: Option<FaultPlan>,
) -> KeystrokeTrace {
    let mut machine = Machine::new(MachineConfig::xiaomi_air13(), seed);
    machine.set_fault_plan(fault_plan);
    machine.spin(100_000_000);
    let mut rng = SmallRng::seed_from_u64(exec::derive_seed(seed, exec::AUX_STREAM));
    let start = machine.now() + Ps::from_ms(1_600); // calibration quiet time
    let session = profile.type_session(start, keys, &mut rng);
    KeystrokeMonitor::new().monitor(&mut machine, &session)
}

/// The outcome of a traced monitoring run: the recovered traces, the
/// merged observability trace, and the ground-truth delivery total the
/// trace must reconcile with.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedSessions {
    /// Recovered keystroke traces, one per session, in session order.
    pub traces: Vec<KeystrokeTrace>,
    /// The merged trace: each session's events on its own track.
    pub sink: obs::TraceSink,
    /// Total ground-truth interrupt deliveries across all sessions.
    pub ground_truth_deliveries: u64,
}

/// Auxiliary stream of the streaming-eval serving classifier (never
/// mixed into machine or typing streams).
const SERVE_STREAM: u64 = exec::AUX_STREAM + 0x5E57;

/// Streams a recovered session's normalized timing signature through a
/// config-seeded serving classifier and emits the verdict into the
/// machine's trace sink, when one is installed. RNG-neutral with
/// respect to the monitoring path, so traces stay byte-identical.
fn emit_serve_verdict(
    config: &KeystrokeConfig,
    machine: &mut Machine,
    index: usize,
    trace: &KeystrokeTrace,
) {
    if machine.trace_sink().is_none() {
        return;
    }
    let xs: Vec<Vec<f32>> = trace.signature().iter().map(|&x| vec![x as f32]).collect();
    if xs.is_empty() {
        return;
    }
    let mut rng = SmallRng::seed_from_u64(exec::derive_seed(config.seed, SERVE_STREAM));
    let model = SeqClassifier::new(1, 8, config.users.max(2), &mut rng, AdamConfig::default());
    let mut session = serve::StreamSession::new(&model, xs.len());
    let mut verdict = None;
    for x in &xs {
        verdict = session.push(&model, x);
    }
    let verdict = verdict.expect("signature is non-empty");
    let at_ps = machine.now().as_ps();
    if let Some(sink) = machine.trace_sink_mut() {
        sink.emit(
            at_ps,
            obs::EventKind::ServeVerdict {
                session: index as u32,
                class: verdict.class as u32,
                steps: verdict.steps as u32,
            },
        );
    }
}

/// The trial body shared by both keystroke scenarios: spin to governor
/// steady state, draw the victim's typing session, and monitor it.
fn monitor_session_on(
    machine: &mut Machine,
    profile: &TypistProfile,
    keys: usize,
    trial_seed: u64,
) -> KeystrokeTrace {
    machine.spin(100_000_000);
    let mut rng = SmallRng::seed_from_u64(exec::derive_seed(trial_seed, exec::AUX_STREAM));
    let start = machine.now() + Ps::from_ms(1_600); // calibration quiet time
    let session = profile.type_session(start, keys, &mut rng);
    KeystrokeMonitor::new().monitor(machine, &session)
}

/// The internal sessions scenario behind [`monitor_sessions_traced`]:
/// trial `i` monitors one session of user `i % users`. Not registered —
/// the registered [`KeystrokeScenario`] runs the full identification
/// experiment instead.
struct MonitorSessions;

impl Scenario for MonitorSessions {
    type Config = KeystrokeConfig;
    type TrialOutput = KeystrokeTrace;
    type Summary = ();

    fn name(&self) -> &'static str {
        "keystroke_sessions"
    }

    fn describe(&self) -> &'static str {
        "one monitored typing session per trial, cycling through the cohort"
    }

    fn experiment_seed(&self, config: &Self::Config, requested: Option<u64>) -> u64 {
        requested.unwrap_or(config.seed)
    }

    fn trial_count(&self, config: &Self::Config, requested: Option<usize>) -> usize {
        requested.unwrap_or(config.users)
    }

    fn build_machine(&self, config: &Self::Config, ctx: &TrialCtx) -> Machine {
        let mut machine = Machine::new(config.machine.clone(), ctx.seed);
        if config.fault_plan.is_some() {
            machine.set_fault_plan(config.fault_plan);
        }
        machine
    }

    fn run_trial(
        &self,
        config: &Self::Config,
        machine: &mut Machine,
        ctx: &TrialCtx,
    ) -> KeystrokeTrace {
        let profile = TypistProfile::for_user(ctx.index % config.users.max(1));
        let trace = monitor_session_on(machine, &profile, config.keys_per_session, ctx.seed);
        if config.streaming {
            emit_serve_verdict(config, machine, ctx.index, &trace);
        }
        trace
    }

    fn summarize(&self, _config: &Self::Config, _outputs: &[KeystrokeTrace]) {}
}

/// Monitors `sessions` typing sessions (cycling through the cohort's
/// users) with a [`obs::TraceSink`] installed on every machine, and
/// merges the per-session traces **in session order**.
///
/// Thin wrapper over the generic [`scenario`] driver: each session's
/// machine gets a private sink, so the merged trace — like the recovered
/// traces — is byte-identical at any worker count. `threads` follows the
/// usual resolution (explicit override, else `SEGSCOPE_THREADS`, else
/// all cores); `capacity` bounds each session's ring and must be
/// non-zero.
///
/// # Panics
///
/// Panics if the probe is mitigated (stock machines never are) or if
/// `capacity` is zero (which would disable tracing).
#[must_use]
pub fn monitor_sessions_traced(
    config: &KeystrokeConfig,
    sessions: usize,
    threads: Option<usize>,
    capacity: usize,
) -> TracedSessions {
    assert!(capacity > 0, "a traced run needs a non-zero ring capacity");
    let opts = RunOptions {
        trials: Some(sessions),
        threads,
        capacity,
        ..RunOptions::default()
    };
    let run = scenario::run_scenario(&MonitorSessions, config, &opts);
    TracedSessions {
        ground_truth_deliveries: run.total_gt_deliveries(),
        traces: run.outputs,
        sink: run.sink.expect("tracing enabled"),
    }
}

/// The registered keystroke scenario: the full user-identification
/// experiment. Trials `0..users * enroll_sessions` are enrollment
/// sessions (user `i / enroll_sessions`); the remaining
/// `users * test_sessions` trials are test sessions — one uniform seed
/// stream, so the two sets never share a seed.
pub struct KeystrokeScenario;

impl Scenario for KeystrokeScenario {
    type Config = KeystrokeConfig;
    type TrialOutput = (f64, f64);
    type Summary = IdentifyResult;

    fn name(&self) -> &'static str {
        "keystroke"
    }

    fn describe(&self) -> &'static str {
        "keystroke-timing recovery and typist identification from interrupt edges (paper Section V)"
    }

    fn experiment_seed(&self, config: &Self::Config, requested: Option<u64>) -> u64 {
        requested.unwrap_or(config.seed)
    }

    fn trial_count(&self, config: &Self::Config, _requested: Option<usize>) -> usize {
        // Structured: one trial per (user, session) pair, enrollment
        // first. `--trials` cannot change the experiment's shape.
        config.users * (config.enroll_sessions + config.test_sessions)
    }

    fn build_machine(&self, config: &Self::Config, ctx: &TrialCtx) -> Machine {
        let mut machine = Machine::new(config.machine.clone(), ctx.seed);
        if config.fault_plan.is_some() {
            machine.set_fault_plan(config.fault_plan);
        }
        machine
    }

    fn run_trial(
        &self,
        config: &Self::Config,
        machine: &mut Machine,
        ctx: &TrialCtx,
    ) -> (f64, f64) {
        let enroll_tasks = config.users * config.enroll_sessions;
        let user = if ctx.index < enroll_tasks {
            ctx.index / config.enroll_sessions.max(1)
        } else {
            (ctx.index - enroll_tasks) / config.test_sessions.max(1)
        };
        let profile = TypistProfile::for_user(user);
        let trace = monitor_session_on(machine, &profile, config.keys_per_session, ctx.seed);
        if config.streaming {
            emit_serve_verdict(config, machine, ctx.index, &trace);
        }
        trace.log_stats()
    }

    fn summarize(&self, config: &Self::Config, outputs: &[(f64, f64)]) -> IdentifyResult {
        let enroll_tasks = config.users * config.enroll_sessions;
        let (enroll_stats, test_stats) = outputs.split_at(enroll_tasks.min(outputs.len()));
        let centroids: Vec<(f64, f64)> = enroll_stats
            .chunks(config.enroll_sessions.max(1))
            .map(|stats| {
                let mus: Vec<f64> = stats.iter().map(|s| s.0).collect();
                let sigmas: Vec<f64> = stats.iter().map(|s| s.1).collect();
                (segscope::mean(&mus), segscope::mean(&sigmas))
            })
            .collect();
        let test_tasks = config.users * config.test_sessions;
        let mut hits = 0usize;
        for (i, &(m, sd)) in test_stats.iter().enumerate() {
            let u = i / config.test_sessions.max(1);
            let guess = centroids
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    let da = (a.1 .0 - m).powi(2) + 4.0 * (a.1 .1 - sd).powi(2);
                    let db = (b.1 .0 - m).powi(2) + 4.0 * (b.1 .1 - sd).powi(2);
                    da.partial_cmp(&db).expect("finite")
                })
                .map(|(i, _)| i)
                .expect("non-empty cohort");
            hits += usize::from(guess == u);
        }
        IdentifyResult {
            accuracy: hits as f64 / test_tasks.max(1) as f64,
            users: config.users,
            sessions: test_tasks,
        }
    }
}

/// Runs the identification experiment: enroll per-user log-stat
/// centroids, then attribute test sessions by nearest centroid.
///
/// Thin wrapper over the generic [`scenario`] driver and
/// [`KeystrokeScenario`]; bit-identical at any worker count.
#[must_use]
pub fn identify_users(config: &KeystrokeConfig) -> IdentifyResult {
    scenario::run_scenario(&KeystrokeScenario, config, &RunOptions::default()).summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_sessions_reconcile_and_are_thread_invariant() {
        let config = KeystrokeConfig {
            users: 2,
            keys_per_session: 8,
            ..KeystrokeConfig::quick()
        };
        let run = |threads| monitor_sessions_traced(&config, 3, Some(threads), 1 << 15);
        let reference = run(1);
        assert_eq!(reference.traces.len(), 3);
        assert_eq!(reference.sink.dropped(), 0, "ring must not overflow");
        // Every ground-truth delivery shows up in the merged trace.
        assert_eq!(
            reference.sink.count_class(obs::EventClass::IrqDelivered) as u64,
            reference.ground_truth_deliveries
        );
        assert!(reference.sink.count_class(obs::EventClass::ProbeSample) > 0);
        for threads in [2, 4] {
            assert_eq!(
                run(threads),
                reference,
                "trace differs at {threads} threads"
            );
        }
    }

    #[test]
    fn monitor_recovers_keystroke_count() {
        let profile = TypistProfile::for_user(0);
        let trace = collect_trace(&profile, 0xAB, 30, None);
        // Detected count within a small tolerance of the truth (PMIs add
        // the occasional extra edge; overlapping keys may merge).
        let detected = trace.detected_keys() as i64;
        let actual = trace.actual_keys as i64;
        assert!(
            (detected - actual).abs() <= 3,
            "detected {detected} vs actual {actual}"
        );
    }

    #[test]
    fn recovered_intervals_correlate_with_truth() {
        let profile = TypistProfile {
            mu: -1.6,
            sigma: 0.4,
        };
        let trace = collect_trace(&profile, 0xC21, 35, None);
        // Compare normalized signatures where counts line up.
        let recovered = trace.signature();
        let truth: Vec<f64> = trace
            .actual_times
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect();
        let tmean = segscope::mean(&truth);
        let truth_norm: Vec<f64> = truth.iter().map(|x| x / tmean).collect();
        if recovered.len() == truth_norm.len() {
            // Pearson correlation of normalized interval sequences.
            let n = recovered.len() as f64;
            let mx = segscope::mean(&recovered);
            let my = segscope::mean(&truth_norm);
            let mut sxy = 0.0;
            let mut sxx = 0.0;
            let mut syy = 0.0;
            for (x, y) in recovered.iter().zip(&truth_norm) {
                sxy += (x - mx) * (y - my);
                sxx += (x - mx) * (x - mx);
                syy += (y - my) * (y - my);
            }
            let r = sxy / (sxx * syy).sqrt().max(1e-12);
            assert!(r > 0.9, "interval correlation {r} (n = {n})");
        } else {
            // Counts differ by a merged/extra edge: still demand close
            // length agreement.
            assert!((recovered.len() as i64 - truth_norm.len() as i64).abs() <= 3);
        }
    }

    #[test]
    fn users_are_identifiable_from_rhythm() {
        let result = identify_users(&KeystrokeConfig::quick());
        let chance = 1.0 / result.users as f64;
        assert!(
            result.accuracy > 2.0 * chance,
            "accuracy {} vs chance {chance}",
            result.accuracy
        );
    }

    #[test]
    fn profiles_are_deterministic_and_distinct() {
        assert_eq!(TypistProfile::for_user(2), TypistProfile::for_user(2));
        assert_ne!(TypistProfile::for_user(2), TypistProfile::for_user(3));
    }

    /// Streaming eval rides along as pure observability: one
    /// `ServeVerdict` per monitored session, with every other event —
    /// and the recovered traces themselves — byte-identical to a
    /// non-streaming run.
    #[test]
    fn streaming_sessions_emit_verdicts_without_perturbing_traces() {
        let mut config = KeystrokeConfig {
            users: 2,
            keys_per_session: 8,
            ..KeystrokeConfig::quick()
        };
        let baseline = monitor_sessions_traced(&config, 3, Some(1), 1 << 15);
        config.streaming = true;
        let streamed = monitor_sessions_traced(&config, 3, Some(1), 1 << 15);
        assert_eq!(streamed.traces, baseline.traces);
        let events = streamed.sink.events();
        let verdicts: Vec<_> = events
            .iter()
            .filter(|e| e.class() == obs::EventClass::ServeVerdict)
            .collect();
        assert_eq!(verdicts.len(), 3, "one verdict per session");
        for (session, verdict) in verdicts.iter().enumerate() {
            let obs::EventKind::ServeVerdict {
                session: s, class, ..
            } = verdict.kind
            else {
                unreachable!()
            };
            assert_eq!(s as usize, session);
            assert!((class as usize) < config.users);
        }
        let without_verdicts: Vec<_> = events
            .iter()
            .filter(|e| e.class() != obs::EventClass::ServeVerdict)
            .copied()
            .collect();
        assert_eq!(without_verdicts, baseline.sink.events());
    }

    #[test]
    fn session_generation_is_ordered() {
        let profile = TypistProfile::for_user(1);
        let mut rng = SmallRng::seed_from_u64(5);
        let session = profile.type_session(Ps::from_ms(10), 20, &mut rng);
        assert_eq!(session.len(), 20);
        assert!(session.windows(2).all(|w| w[0] < w[1]));
        assert!(session[0] > Ps::from_ms(10));
    }
}
