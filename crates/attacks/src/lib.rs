//! `segscope-attacks` — the six end-to-end case studies of the SegScope
//! paper, built on the [`segscope`] library and the [`segsim`] machine
//! simulator:
//!
//! | module | paper section | artifact |
//! |--------|---------------|----------|
//! | [`website`] | IV-A | Table IV: website fingerprinting (Chrome/Tor, four settings) |
//! | [`circl`] | IV-B | Fig. 8: CIRCL key extraction via the frequency channel |
//! | [`dnnsteal`] | IV-C | Table V: DNN layer-sequence recovery (SA/LDA) |
//! | [`spectral`] | IV-D | Table VI + Fig. 9: SegScope-enhanced Spectral |
//! | [`kaslr`] | IV-E | Figs. 10–11, Tables VII–VIII: KASLR de-randomization |
//! | [`spectre`] | IV-F | Fig. 12: Spectre-V1 + Flush+Reload via the SegScope timer |
//!
//! Every experiment exposes a `quick()` configuration small enough for
//! `cargo test` and a larger configuration for the bench harness; both
//! are deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circl;
pub mod covert;
pub mod dnnsteal;
pub mod kaslr;
pub mod keystroke;
pub mod procfp;
pub mod spectral;
pub mod spectre;
pub mod website;
