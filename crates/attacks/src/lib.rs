//! `segscope-attacks` — the six end-to-end case studies of the SegScope
//! paper, built on the [`segscope`] library and the [`segsim`] machine
//! simulator:
//!
//! | module | paper section | artifact |
//! |--------|---------------|----------|
//! | [`website`] | IV-A | Table IV: website fingerprinting (Chrome/Tor, four settings) |
//! | [`circl`] | IV-B | Fig. 8: CIRCL key extraction via the frequency channel |
//! | [`dnnsteal`] | IV-C | Table V: DNN layer-sequence recovery (SA/LDA) |
//! | [`spectral`] | IV-D | Table VI + Fig. 9: SegScope-enhanced Spectral |
//! | [`kaslr`] | IV-E | Figs. 10–11, Tables VII–VIII: KASLR de-randomization |
//! | [`spectre`] | IV-F | Fig. 12: Spectre-V1 + Flush+Reload via the SegScope timer |
//!
//! plus three extension studies ([`keystroke`], [`covert`], [`procfp`])
//! exercising the same probing primitive on the side channels the paper
//! cites in Section I, and two enclave studies ([`aexcount`],
//! [`heckler`]) exercising the kernel-exit + countermeasure model
//! (AEX-NStep-style counting and Heckler-style malicious injection)
//! against the [`segsim::Defense`] layer.
//!
//! Every experiment exposes a `quick()` configuration small enough for
//! `cargo test` and a larger configuration for the bench harness; both
//! are deterministic given a seed. All eleven implement the
//! [`scenario::Scenario`] trait and register with [`registry`], which
//! backs the `segscope` CLI driver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aexcount;
pub mod circl;
pub mod covert;
pub mod dnnsteal;
pub mod heckler;
pub mod kaslr;
pub mod keystroke;
pub mod procfp;
pub mod spectral;
pub mod spectre;
pub mod website;

/// The eleven registered scenarios, in paper-section order (six case
/// studies, the three extension studies, then the two enclave
/// studies).
static SCENARIOS: [&'static dyn scenario::DynScenario; 11] = [
    &website::WebsiteScenario,
    &circl::CirclScenario,
    &dnnsteal::DnnStealScenario,
    &spectral::SpectralScenario,
    &kaslr::KaslrScenario,
    &spectre::SpectreScenario,
    &keystroke::KeystrokeScenario,
    &covert::CovertScenario,
    &procfp::ProcFpScenario,
    &aexcount::AexCountScenario,
    &heckler::HecklerScenario,
];

/// The attack registry: every case study and extension study behind one
/// uniform [`scenario::DynScenario`] face.
#[must_use]
pub fn registry() -> scenario::Registry {
    scenario::Registry::new(&SCENARIOS)
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn all_eleven_scenarios_registered_with_unique_names() {
        let reg = registry();
        assert_eq!(reg.len(), 11);
        let mut names: Vec<&str> = reg.entries().iter().map(|s| s.name()).collect();
        for expected in [
            "website",
            "circl",
            "dnnsteal",
            "spectral",
            "kaslr",
            "spectre",
            "keystroke",
            "covert",
            "procfp",
            "aexcount",
            "heckler",
        ] {
            assert!(names.contains(&expected), "missing scenario {expected}");
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11, "duplicate scenario names");
    }

    #[test]
    fn descriptions_and_default_params_are_well_formed() {
        for entry in registry().entries() {
            assert!(
                !entry.describe().is_empty(),
                "{} has no description",
                entry.name()
            );
            let params = entry.default_params();
            let json = serde_json::to_string(&params).expect("params serialize");
            // Whole floats serialize as integers (and the typed
            // deserializers convert back), so Value identity is too
            // strict — demand a stable text fixpoint instead.
            let back: serde::Value = serde_json::from_str(&json).expect("params parse");
            let json2 = serde_json::to_string(&back).expect("params reserialize");
            assert_eq!(
                json,
                json2,
                "{} default params JSON round-trip",
                entry.name()
            );
        }
    }

    #[test]
    fn lookup_by_name_and_unknown_rejection() {
        let reg = registry();
        assert!(reg.by_name("kaslr").is_some());
        assert!(reg.by_name("KASLR").is_none(), "lookup is exact");
        assert!(matches!(
            reg.get("no-such-attack"),
            Err(scenario::ScenarioError::UnknownScenario(_))
        ));
    }
}
