//! Extension case study: process fingerprinting (paper Section I cites
//! interrupt-based process fingerprinting as one of the side channels
//! SegScope replaces the probing primitive of).
//!
//! Different applications drive different interrupt mixes — a download
//! manager hammers the NIC, a video player ticks with vsync, a compiler
//! is compute-bound with occasional disk bursts. The attacker probes with
//! SegScope, extracts a feature vector from the (unlabeled!) SegCnt
//! trace, and matches it against enrolled application profiles.

use irq::time::Ps;
use irq::InterruptKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scenario::{RunOptions, Scenario, TrialCtx};
use segscope::SegProbe;
use segsim::{FaultPlan, Machine, MachineConfig, StepFn};
use serde::{Deserialize, Serialize};

/// The application classes the attacker distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppClass {
    /// Bulk download: dense NIC interrupt train, light CPU.
    Downloader,
    /// Video playback: regular GPU cadence, medium CPU.
    VideoPlayer,
    /// Compilation: heavy CPU, sparse bursty disk/NIC activity.
    Compiler,
    /// Idle desktop: almost nothing beyond the tick.
    Idle,
}

impl AppClass {
    /// All classes, stable order.
    pub const ALL: [AppClass; 4] = [
        AppClass::Downloader,
        AppClass::VideoPlayer,
        AppClass::Compiler,
        AppClass::Idle,
    ];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AppClass::Downloader => "downloader",
            AppClass::VideoPlayer => "video",
            AppClass::Compiler => "compiler",
            AppClass::Idle => "idle",
        }
    }

    /// Generates `window` worth of this application's activity starting
    /// at `t0`: device interrupts plus a CPU-load schedule.
    pub fn activity<R: Rng + ?Sized>(
        self,
        t0: Ps,
        window: Ps,
        rng: &mut R,
    ) -> (Vec<(Ps, InterruptKind)>, StepFn) {
        let mut events = Vec::new();
        let mut load = StepFn::zero();
        let end = t0 + window;
        match self {
            AppClass::Downloader => {
                // ~1200 NIC interrupts/s with slight pacing jitter.
                let mut t = t0;
                while t < end {
                    t += Ps::from_us(rng.gen_range(600..1_100));
                    events.push((t, InterruptKind::Network));
                }
                load.push(t0, 0.25);
            }
            AppClass::VideoPlayer => {
                // 60 Hz vblank cadence plus a small audio/NIC trickle.
                let mut t = t0;
                while t < end {
                    t += Ps::from_us(16_667);
                    events.push((t, InterruptKind::Gpu));
                }
                let mut t = t0;
                while t < end {
                    t += Ps::from_ms(rng.gen_range(40..120));
                    events.push((t, InterruptKind::Network));
                }
                load.push(t0, 0.45);
            }
            AppClass::Compiler => {
                // CPU-bound with bursty I/O completions.
                let mut t = t0;
                while t < end {
                    t += Ps::from_ms(rng.gen_range(30..150));
                    for _ in 0..rng.gen_range(2..8) {
                        t += Ps::from_us(rng.gen_range(100..600));
                        events.push((t, InterruptKind::Network));
                    }
                }
                load.push(t0, 0.95);
            }
            AppClass::Idle => {
                load.push(t0, 0.02);
            }
        }
        load.push(end, 0.0);
        events.retain(|&(at, _)| at < end);
        (events, load)
    }
}

/// The attacker-visible feature vector of one observation window: the
/// 10th/50th/90th percentiles of the probed SegCnt distribution,
/// normalized by the quiet-calibration median.
///
/// This captures both axes of the signal with no labels and no timer:
/// device-interrupt density *shortens* intervals (pulling the quantiles
/// down) while victim CPU load *raises* the frequency (pushing them up),
/// and the spread between q10 and q90 encodes cadence vs burstiness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcFeatures {
    /// 10th percentile of normalized SegCnt.
    pub q10: f64,
    /// Median of normalized SegCnt.
    pub q50: f64,
    /// 90th percentile of normalized SegCnt.
    pub q90: f64,
}

impl ProcFeatures {
    /// Squared distance in (log-)feature space.
    #[must_use]
    pub fn distance2(&self, other: &ProcFeatures) -> f64 {
        let d = |a: f64, b: f64| (a.max(1e-6).ln() - b.max(1e-6).ln()).powi(2);
        d(self.q10, other.q10) + d(self.q50, other.q50) + d(self.q90, other.q90)
    }
}

/// Extracts features from one observation window on a fresh machine.
#[must_use]
pub fn observe(app: AppClass, seed: u64, window: Ps, probes: usize) -> ProcFeatures {
    observe_with(app, seed, window, probes, None)
}

/// [`observe`] with an optional fault plan installed on the machine.
#[must_use]
pub fn observe_with(
    app: AppClass,
    seed: u64,
    window: Ps,
    probes: usize,
    fault_plan: Option<FaultPlan>,
) -> ProcFeatures {
    let mut machine = Machine::new(MachineConfig::xiaomi_air13(), seed);
    machine.set_fault_plan(fault_plan);
    machine.set_local_load(0.3); // the spy keeps a low profile
    observe_on(&mut machine, app, seed, window, probes)
}

/// Extracts features from one observation window on an already-built spy
/// machine. `seed` only drives the victim's activity schedule; the
/// machine's own RNG stream was fixed at construction.
#[must_use]
pub fn observe_on(
    machine: &mut Machine,
    app: AppClass,
    seed: u64,
    window: Ps,
    probes: usize,
) -> ProcFeatures {
    machine.spin(100_000_000);
    // Calibrate the quiet baseline (the spy alone): robust SegCnt level.
    let mut probe = SegProbe::new();
    let mut calib = Vec::new();
    probe
        .probe_n_into(machine, 200, &mut calib)
        .expect("probe works");
    let mut calib_cnts: Vec<f64> = calib.iter().map(|s| s.segcnt as f64).collect();
    calib_cnts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let calib_median = calib_cnts[calib_cnts.len() / 2];
    // Start the victim application and record the raw SegCnt stream.
    let t0 = machine.now();
    let mut rng = SmallRng::seed_from_u64(exec::derive_seed(seed, exec::AUX_STREAM));
    let (events, load) = app.activity(t0, window, &mut rng);
    machine.inject_interrupts(events);
    machine.set_victim_load(load);
    // Observe only while the application is running: the window bounds
    // the probe budget.
    let mut cnts = Vec::with_capacity(probes);
    let obs_end = t0 + window;
    for _ in 0..probes {
        if machine.now() >= obs_end {
            break;
        }
        let Ok(s) = probe.probe_once(machine) else {
            break;
        };
        cnts.push(s.segcnt as f64);
    }
    let mut sorted = cnts;
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let quantile = |q: f64| -> f64 {
        if sorted.is_empty() {
            return 1.0;
        }
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx] / calib_median.max(1.0)
    };
    ProcFeatures {
        q10: quantile(0.1),
        q50: quantile(0.5),
        q90: quantile(0.9),
    }
}

/// Result of the fingerprinting experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcFpResult {
    /// Fraction of windows attributed to the right application.
    pub accuracy: f64,
    /// Per-class accuracy in [`AppClass::ALL`] order.
    pub per_class: Vec<f64>,
    /// Windows evaluated.
    pub windows: usize,
}

/// Configuration of the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcFpConfig {
    /// Enrollment windows per class.
    pub enroll: usize,
    /// Test windows per class.
    pub test: usize,
    /// Observation window length.
    pub window: Ps,
    /// Probe budget per window.
    pub probes: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional interrupt-path fault plan installed on every observation
    /// machine (`None` = nominal fault-free run).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ProcFpConfig {
    fn default() -> Self {
        ProcFpConfig::quick()
    }
}

impl ProcFpConfig {
    /// Test-scale configuration.
    #[must_use]
    pub fn quick() -> Self {
        ProcFpConfig {
            enroll: 3,
            test: 3,
            window: Ps::from_ms(400),
            probes: 300,
            seed: 0x9F0C,
            fault_plan: None,
        }
    }

    /// Installs a fault plan on every observation machine.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// Runs enrollment + nearest-centroid identification.
///
/// Windows are observed in parallel — one task per `(class, window)`
/// pair with a seed derived from `config.seed`, so the result is
/// bit-identical at any worker count. Enrollment windows occupy task
/// indices `0..classes * enroll`; test windows continue from there.
#[must_use]
pub fn run_experiment(config: &ProcFpConfig) -> ProcFpResult {
    scenario::run_scenario(&ProcFpScenario, config, &RunOptions::default()).summary
}

/// [`Scenario`] face of the process-fingerprinting experiment. Each task
/// observes one `(class, window)` pair — enrollment windows occupy task
/// indices `0..classes * enroll`, test windows continue from there — and
/// [`Scenario::summarize`] fits the per-class centroids and runs
/// nearest-centroid identification.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProcFpScenario;

impl ProcFpScenario {
    /// Application class observed by task `index` under `config`.
    fn class_for(config: &ProcFpConfig, index: usize) -> AppClass {
        let enroll_tasks = AppClass::ALL.len() * config.enroll;
        if index < enroll_tasks {
            AppClass::ALL[(index / config.enroll.max(1)) % AppClass::ALL.len()]
        } else {
            AppClass::ALL[((index - enroll_tasks) / config.test.max(1)) % AppClass::ALL.len()]
        }
    }
}

impl Scenario for ProcFpScenario {
    type Config = ProcFpConfig;
    type TrialOutput = ProcFeatures;
    type Summary = ProcFpResult;

    fn name(&self) -> &'static str {
        "procfp"
    }

    fn describe(&self) -> &'static str {
        "Process fingerprinting: match unlabeled SegCnt quantile features \
         against enrolled application profiles (extension study)"
    }

    fn experiment_seed(&self, config: &ProcFpConfig, requested: Option<u64>) -> u64 {
        requested.unwrap_or(config.seed)
    }

    fn trial_count(&self, config: &ProcFpConfig, _requested: Option<usize>) -> usize {
        // The enroll/test split is structural: the trial count follows the
        // config, not the CLI `--trials` knob.
        AppClass::ALL.len() * (config.enroll + config.test)
    }

    fn build_machine(&self, config: &ProcFpConfig, ctx: &TrialCtx) -> Machine {
        let mut machine = Machine::new(MachineConfig::xiaomi_air13(), ctx.seed);
        machine.set_fault_plan(config.fault_plan);
        machine.set_local_load(0.3); // the spy keeps a low profile
        machine
    }

    fn run_trial(
        &self,
        config: &ProcFpConfig,
        machine: &mut Machine,
        ctx: &TrialCtx,
    ) -> ProcFeatures {
        let app = Self::class_for(config, ctx.index);
        observe_on(machine, app, ctx.seed, config.window, config.probes)
    }

    fn summarize(&self, config: &ProcFpConfig, outputs: &[ProcFeatures]) -> ProcFpResult {
        let classes = AppClass::ALL.len();
        let enroll_tasks = classes * config.enroll;
        let (enroll_feats, test_feats) = outputs.split_at(enroll_tasks.min(outputs.len()));
        let centroids: Vec<(AppClass, ProcFeatures)> = AppClass::ALL
            .iter()
            .zip(enroll_feats.chunks(config.enroll.max(1)))
            .map(|(&app, feats)| {
                let centroid = ProcFeatures {
                    q10: segscope::mean(&feats.iter().map(|f| f.q10).collect::<Vec<_>>()),
                    q50: segscope::mean(&feats.iter().map(|f| f.q50).collect::<Vec<_>>()),
                    q90: segscope::mean(&feats.iter().map(|f| f.q90).collect::<Vec<_>>()),
                };
                (app, centroid)
            })
            .collect();
        let test_tasks = classes * config.test;
        let mut hits = 0usize;
        let mut per_class = Vec::with_capacity(classes);
        for (c, &app) in AppClass::ALL.iter().enumerate() {
            let class_hits = test_feats[c * config.test..(c + 1) * config.test]
                .iter()
                .filter(|f| {
                    centroids
                        .iter()
                        .min_by(|a, b| {
                            f.distance2(&a.1)
                                .partial_cmp(&f.distance2(&b.1))
                                .expect("finite")
                        })
                        .map(|(app, _)| *app)
                        .expect("non-empty")
                        == app
                })
                .count();
            hits += class_hits;
            per_class.push(class_hits as f64 / config.test as f64);
        }
        ProcFpResult {
            accuracy: hits as f64 / test_tasks.max(1) as f64,
            per_class,
            windows: test_tasks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_respects_window() {
        let mut rng = SmallRng::seed_from_u64(1);
        for app in AppClass::ALL {
            let (events, _) = app.activity(Ps::from_ms(10), Ps::from_ms(100), &mut rng);
            for &(at, _) in &events {
                assert!(
                    at >= Ps::from_ms(10) && at < Ps::from_ms(110),
                    "{app:?} event at {at}"
                );
            }
        }
    }

    #[test]
    fn downloader_shortens_intervals() {
        // A dense NIC train cuts timer periods into short pieces: the
        // median normalized SegCnt collapses well below idle's.
        let dl = observe(AppClass::Downloader, 7, Ps::from_ms(400), 300);
        let idle = observe(AppClass::Idle, 7, Ps::from_ms(400), 300);
        assert!(
            dl.q50 < idle.q50 * 0.6,
            "downloader q50 {} vs idle {}",
            dl.q50,
            idle.q50
        );
    }

    #[test]
    fn compiler_raises_the_level() {
        // Heavy victim CPU load raises the shared-domain frequency, so
        // intervals hold more iterations than the quiet calibration.
        let compiler = observe(AppClass::Compiler, 8, Ps::from_ms(400), 300);
        let idle = observe(AppClass::Idle, 8, Ps::from_ms(400), 300);
        assert!(
            compiler.q90 > idle.q90 * 1.2,
            "compiler q90 {} vs idle {}",
            compiler.q90,
            idle.q90
        );
    }

    #[test]
    fn quick_experiment_identifies_apps() {
        let result = run_experiment(&ProcFpConfig::quick());
        assert_eq!(result.windows, 12);
        assert!(
            result.accuracy >= 0.75,
            "accuracy {} (chance 0.25)",
            result.accuracy
        );
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = AppClass::ALL.iter().map(|a| a.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }
}
