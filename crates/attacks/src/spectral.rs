//! Case study 4: enhancing the Spectral attack with SegScope (paper
//! Section IV-D, Table VI, Fig. 9).
//!
//! Spectral leaks Spectre secrets *architecturally*: the monitoring
//! process arms `umonitor`/`umwait` on a shared cache line; the victim's
//! transiently-executed gadget writes that line iff the leaked bit is 1.
//! The wake cause encodes the bit — but a plain attacker only sees
//! `EFLAGS.CF`, which cannot distinguish a cache-line write from an
//! interrupt (paper Table VI). SegScope adds the missing bit: a planted
//! non-zero null selector survives writes and timeouts but not
//! interrupts, so interrupted measurements can be discarded instead of
//! miscounted.

use irq::time::Ps;
use rand::Rng;
use scenario::{Scenario, TrialCtx};
use segscope::InterruptGuard;
use segsim::{FaultPlan, Machine, MachineConfig};
use serde::{Deserialize, Serialize};
use specsim::{resolve_wait, ArchState};

/// Configuration of the Spectral bit-leak channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectralConfig {
    /// `umwait` timeout, cycles (the paper sweeps 20k–200k; default
    /// 100k).
    pub timeout_cycles: u64,
    /// Number of gadget invocations per bit (the paper uses 12).
    pub gadget_calls: usize,
    /// Per-call probability the speculation window completes the
    /// transient store.
    pub window_success: f64,
    /// Time from arming the monitor until the victim's transient write
    /// lands.
    pub victim_latency: Ps,
    /// Probability of a spurious write to the monitored line (prefetcher
    /// or coherence traffic) within a timeout window.
    pub spurious_write_prob: f64,
    /// Overhead per measurement beyond the wait itself (re-arming,
    /// mistraining), cycles.
    pub per_bit_overhead_cycles: u64,
    /// Optional interrupt-path fault plan installed on the monitoring
    /// machine (`None` = nominal fault-free run).
    pub fault_plan: Option<FaultPlan>,
}

impl SpectralConfig {
    /// The paper's default: 100k-cycle timeout, 12 calls per bit.
    #[must_use]
    pub fn paper_default() -> Self {
        SpectralConfig {
            timeout_cycles: 100_000,
            gadget_calls: 12,
            window_success: 0.92,
            victim_latency: Ps::from_us(2),
            spurious_write_prob: 1.0e-4,
            per_bit_overhead_cycles: 9_000,
            fault_plan: None,
        }
    }

    /// The same channel with a different timeout (the Fig. 9 sweep).
    #[must_use]
    pub fn with_timeout(mut self, cycles: u64) -> Self {
        self.timeout_cycles = cycles;
        self
    }

    /// Installs a fault plan on the monitoring machine.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

impl Default for SpectralConfig {
    fn default() -> Self {
        SpectralConfig::paper_default()
    }
}

/// The outcome of leaking one secret bit-string.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectralResult {
    /// Bits attempted.
    pub bits: usize,
    /// Bits decided incorrectly.
    pub errors: usize,
    /// Bit error rate.
    pub error_rate: f64,
    /// Leakage rate, bits per simulated second (decided bits only).
    pub leak_rate_bps: f64,
    /// Measurements discarded as interrupted (enhanced mode only).
    pub discarded: usize,
}

/// Whether SegScope filtering is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpectralMode {
    /// The original Spectral: carry flag only (interrupts alias to
    /// writes).
    Original,
    /// SegScope-enhanced: interrupted wake-ups are detected via the
    /// selector footprint and re-measured.
    Enhanced,
}

/// Leaks one bit. Returns `(decision, discarded_measurements)`.
fn leak_bit<R: Rng + ?Sized>(
    machine: &mut Machine,
    bit: bool,
    config: &SpectralConfig,
    mode: SpectralMode,
    ext_rng: &mut R,
) -> (bool, usize) {
    let mut discarded = 0usize;
    loop {
        // Mistrain + arm overhead.
        machine.spin(config.per_bit_overhead_cycles);
        // SegScope marker (the enhanced attacker plants it; the original
        // attacker doesn't need it, but arming costs nothing either way).
        let guard = InterruptGuard::arm(machine).expect("unmitigated machine");
        let armed_at = machine.now();
        let khz = machine.current_freq_khz();
        let timeout = Ps::from_cycles_at(config.timeout_cycles, khz);
        // Victim side: will any of the gadget calls land the transient
        // write? (12 calls at 92% each ≈ certain when bit = 1.)
        let mut write_at = None;
        if bit {
            let success =
                (0..config.gadget_calls).any(|_| ext_rng.gen::<f64>() < config.window_success);
            if success {
                write_at = Some(armed_at + config.victim_latency);
            }
        } else if ext_rng.gen::<f64>() < config.spurious_write_prob {
            // Rare spurious coherence traffic on the monitored line.
            write_at = Some(armed_at + timeout / 2);
        }
        let irq_at = machine.next_interrupt_at();
        let (cause, wake_at) = resolve_wait(armed_at, timeout, write_at, irq_at);
        // Sleep until the wake event; if the cause is an interrupt the
        // machine delivers it (scrubbing the planted selector).
        while machine.now() < wake_at {
            let _ = machine.run_user_until(wake_at);
        }
        let arch = ArchState::of(cause);
        // The attacker-visible check. It almost always agrees with
        // Table VI's `selector_preserved`, but an interrupt can land in
        // the few cycles *between* the umwait return and the selector
        // read; the guard then sees a scrubbed selector on a wake that
        // was architecturally a timeout/write. The enhanced attacker
        // conservatively discards such measurements, which is exactly
        // the right call.
        let selector_survived = guard.finish(machine);
        match mode {
            SpectralMode::Original => return (arch.naive_write_detected(), discarded),
            SpectralMode::Enhanced => {
                if selector_survived {
                    return (arch.naive_write_detected(), discarded);
                }
                // Interrupted: discard and re-measure.
                discarded += 1;
            }
        }
    }
}

/// Leaks `bits` random secret bits and reports the error statistics.
#[must_use]
pub fn run_attack(
    config: &SpectralConfig,
    mode: SpectralMode,
    bits: usize,
    seed: u64,
) -> SpectralResult {
    // The i9-12900H is the only Table I machine with umonitor/umwait.
    let mut machine = Machine::new(MachineConfig::lenovo_savior(), seed);
    machine.set_fault_plan(config.fault_plan);
    run_attack_on(&mut machine, config, mode, bits, seed)
}

/// [`run_attack`] against an already-built monitoring machine. `seed`
/// only derives the secret/victim RNG stream; the machine's own stream
/// was fixed at construction.
#[must_use]
pub fn run_attack_on(
    machine: &mut Machine,
    config: &SpectralConfig,
    mode: SpectralMode,
    bits: usize,
    seed: u64,
) -> SpectralResult {
    machine.spin(50_000_000); // warm-up
    let mut secret_rng = {
        use rand::SeedableRng;
        rand::rngs::SmallRng::seed_from_u64(exec::derive_seed(seed, exec::AUX_STREAM))
    };
    let secret: Vec<bool> = (0..bits).map(|_| secret_rng.gen()).collect();
    let start = machine.now();
    let mut errors = 0usize;
    let mut discarded = 0usize;
    for &bit in &secret {
        let (decided, d) = leak_bit(machine, bit, config, mode, &mut secret_rng);
        discarded += d;
        if decided != bit {
            errors += 1;
        }
    }
    let elapsed = (machine.now() - start).as_secs_f64();
    SpectralResult {
        bits,
        errors,
        error_rate: errors as f64 / bits.max(1) as f64,
        leak_rate_bps: bits as f64 / elapsed.max(1e-9),
        discarded,
    }
}

/// Parameters of the registered [`SpectralScenario`]: the channel itself
/// plus the knobs that the direct API takes positionally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectralScenarioConfig {
    /// Channel configuration.
    pub attack: SpectralConfig,
    /// Whether SegScope filtering is applied.
    pub mode: SpectralMode,
    /// Secret bits leaked per trial.
    pub bits: usize,
}

impl Default for SpectralScenarioConfig {
    fn default() -> Self {
        SpectralScenarioConfig {
            attack: SpectralConfig::paper_default(),
            mode: SpectralMode::Enhanced,
            bits: 2_000,
        }
    }
}

/// Aggregate over the trials of a [`SpectralScenario`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectralSummary {
    /// Mean bit error rate across trials.
    pub mean_error_rate: f64,
    /// Mean leakage rate, bits per simulated second.
    pub mean_leak_rate_bps: f64,
    /// Total measurements discarded as interrupted.
    pub total_discarded: usize,
}

/// [`Scenario`] face of the Spectral enhancement study.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpectralScenario;

impl Scenario for SpectralScenario {
    type Config = SpectralScenarioConfig;
    type TrialOutput = SpectralResult;
    type Summary = SpectralSummary;

    fn name(&self) -> &'static str {
        "spectral"
    }

    fn describe(&self) -> &'static str {
        "Spectral enhancement: filter interrupted umwait wake-ups via the \
         planted-selector footprint (paper Section IV-D, Table VI, Fig. 9)"
    }

    fn experiment_seed(&self, _config: &SpectralScenarioConfig, requested: Option<u64>) -> u64 {
        requested.unwrap_or(0x57A1)
    }

    fn trial_count(&self, _config: &SpectralScenarioConfig, requested: Option<usize>) -> usize {
        requested.unwrap_or(1)
    }

    fn build_machine(&self, config: &SpectralScenarioConfig, ctx: &TrialCtx) -> Machine {
        let mut machine = Machine::new(MachineConfig::lenovo_savior(), ctx.seed);
        machine.set_fault_plan(config.attack.fault_plan);
        machine
    }

    fn run_trial(
        &self,
        config: &SpectralScenarioConfig,
        machine: &mut Machine,
        ctx: &TrialCtx,
    ) -> SpectralResult {
        run_attack_on(machine, &config.attack, config.mode, config.bits, ctx.seed)
    }

    fn summarize(
        &self,
        _config: &SpectralScenarioConfig,
        outputs: &[SpectralResult],
    ) -> SpectralSummary {
        let n = outputs.len().max(1) as f64;
        SpectralSummary {
            mean_error_rate: outputs.iter().map(|r| r.error_rate).sum::<f64>() / n,
            mean_leak_rate_bps: outputs.iter().map(|r| r.leak_rate_bps).sum::<f64>() / n,
            total_discarded: outputs.iter().map(|r| r.discarded).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enhanced_mode_reduces_error_rate() {
        let config = SpectralConfig::paper_default();
        let original = run_attack(&config, SpectralMode::Original, 12_000, 0xA);
        let enhanced = run_attack(&config, SpectralMode::Enhanced, 12_000, 0xA);
        assert!(
            original.error_rate > 0.001,
            "original should show interrupt noise: {}",
            original.error_rate
        );
        assert!(
            enhanced.error_rate < original.error_rate / 4.0,
            "enhanced {} !<< original {}",
            enhanced.error_rate,
            original.error_rate
        );
        assert!(
            enhanced.discarded > 0,
            "some measurements must be discarded"
        );
    }

    #[test]
    fn longer_timeouts_mean_more_interrupt_errors() {
        let short = run_attack(
            &SpectralConfig::paper_default().with_timeout(20_000),
            SpectralMode::Original,
            8_000,
            0xB,
        );
        let long = run_attack(
            &SpectralConfig::paper_default().with_timeout(200_000),
            SpectralMode::Original,
            8_000,
            0xB,
        );
        assert!(
            long.error_rate > short.error_rate,
            "short {} vs long {}",
            short.error_rate,
            long.error_rate
        );
    }

    #[test]
    fn leak_rate_is_tens_of_kbps() {
        let config = SpectralConfig::paper_default();
        let result = run_attack(&config, SpectralMode::Enhanced, 4_000, 0xC);
        // Paper: ~53 kbit/s. Demand the right order of magnitude.
        assert!(
            (5_000.0..500_000.0).contains(&result.leak_rate_bps),
            "leak rate {} b/s",
            result.leak_rate_bps
        );
    }

    #[test]
    fn scenario_run_matches_direct_attack() {
        let cfg = SpectralScenarioConfig {
            bits: 500,
            ..SpectralScenarioConfig::default()
        };
        let opts = scenario::RunOptions {
            seed: Some(0x57A2),
            trials: Some(1),
            ..scenario::RunOptions::default()
        };
        let run = scenario::run_scenario(&SpectralScenario, &cfg, &opts);
        let direct = run_attack(
            &cfg.attack,
            cfg.mode,
            cfg.bits,
            exec::derive_seed(0x57A2, 0),
        );
        assert_eq!(run.outputs, vec![direct]);
    }

    #[test]
    fn enhanced_never_misreads_interrupts_as_writes() {
        // With bit=0 and no spurious writes, every decision must be 0.
        let mut config = SpectralConfig::paper_default();
        config.spurious_write_prob = 0.0;
        let mut machine = Machine::new(MachineConfig::lenovo_savior(), 0xD);
        machine.spin(10_000_000);
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::SmallRng::seed_from_u64(1)
        };
        for _ in 0..300 {
            let (decided, _) = leak_bit(
                &mut machine,
                false,
                &config,
                SpectralMode::Enhanced,
                &mut rng,
            );
            assert!(
                !decided,
                "enhanced mode decided 1 on a 0 bit without any write"
            );
        }
    }
}
