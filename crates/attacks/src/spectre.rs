//! Case study 6: leaking memory with Spectre-V1 + Flush+Reload, timed by
//! the SegScope timer (paper Section IV-F, Fig. 12).
//!
//! The SegScope timer's resolution is thousands of cycles, far coarser
//! than one cache hit/miss gap (~200 cycles). The paper amplifies the
//! difference by replicating the gadget: `G` gadget copies each leak the
//! same secret byte into their own probe array, so reloading candidate
//! `v` across all copies costs `G × hit` when `v` is the secret and
//! `G × miss` otherwise (~4000+ cycles apart at `G = 200`).

use scenario::{Scenario, TrialCtx};
use segscope::{Denoise, ProbeError, SegTimer};
use segsim::{FaultPlan, Machine, MachineConfig};
use serde::{Deserialize, Serialize};
use specsim::{GadgetConfig, SpectreV1Gadget};

/// Configuration of the amplified Spectre attack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectreConfig {
    /// Number of gadget replicas (the paper uses 200).
    pub gadgets: usize,
    /// Mistraining calls before each out-of-bounds call.
    pub mistrain_calls: usize,
    /// Out-of-bounds attempts per byte before reloading.
    pub oob_attempts: usize,
    /// Timing rounds per candidate byte value.
    pub rounds_per_candidate: usize,
    /// SegScope timer calibration samples.
    pub calibration: usize,
    /// Candidate byte values tried (256 in the paper; tests may restrict
    /// to a smaller alphabet containing the secret).
    pub candidates: usize,
    /// Optional interrupt-path fault plan installed on the attacking
    /// machine (`None` = nominal fault-free run).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for SpectreConfig {
    /// The test-scale [`SpectreConfig::quick`] attack.
    fn default() -> Self {
        SpectreConfig::quick()
    }
}

impl SpectreConfig {
    /// Paper-scale: 200 gadget copies, full 256-candidate scan.
    #[must_use]
    pub fn paper_default() -> Self {
        SpectreConfig {
            gadgets: 200,
            mistrain_calls: 5,
            oob_attempts: 12,
            rounds_per_candidate: 1,
            calibration: 120,
            candidates: 256,
            fault_plan: None,
        }
    }

    /// Test-scale: fewer copies, printable-ASCII candidates only.
    #[must_use]
    pub fn quick() -> Self {
        SpectreConfig {
            gadgets: 60,
            mistrain_calls: 5,
            oob_attempts: 12,
            rounds_per_candidate: 1,
            calibration: 80,
            candidates: 128,
            fault_plan: None,
        }
    }

    /// Installs a fault plan on the attacking machine.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// A bank of replicated Spectre gadgets sharing one secret.
#[derive(Debug, Clone)]
pub struct AmplifiedSpectre {
    gadgets: Vec<SpectreV1Gadget>,
}

impl AmplifiedSpectre {
    /// Builds `n` gadget copies protecting `secret`, each with a disjoint
    /// probe array.
    #[must_use]
    pub fn new(n: usize, secret: &[u8]) -> Self {
        let gadgets = (0..n)
            .map(|i| {
                // Stagger the copies by an odd multiple of the line size
                // so same-candidate lines across copies do not all land
                // in the same cache set (a power-of-two stride would make
                // the replicas evict each other).
                let config = GadgetConfig {
                    probe_base: 0x4000_0000 + (i as u64) * (0x4_0000 + 13 * 64),
                    branch_addr: 0x40_1000 + (i as u64) * 0x100,
                    ..GadgetConfig::classic()
                };
                SpectreV1Gadget::new(config, secret)
            })
            .collect();
        AmplifiedSpectre { gadgets }
    }

    /// Number of replicas.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gadgets.len()
    }

    /// Whether the bank is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gadgets.is_empty()
    }

    /// Secret length.
    #[must_use]
    pub fn secret_len(&self) -> usize {
        self.gadgets.first().map_or(0, SpectreV1Gadget::secret_len)
    }

    /// Flushes every candidate probe line in every copy.
    pub fn flush_probes(&self, machine: &mut Machine, candidates: usize) {
        for gadget in &self.gadgets {
            for v in 0..candidates {
                machine.clflush(gadget.probe_addr(v as u8));
            }
        }
    }

    /// Mistrains and fires every copy at out-of-bounds offset `offset`
    /// (the victim-side transient leak; runs on the victim's core, so it
    /// costs the attacker no time).
    pub fn leak_round(&mut self, machine: &mut Machine, offset: usize, config: &SpectreConfig) {
        let array1_len = self.gadgets[0].config().array1_len;
        {
            let (mem, rng) = machine.memory_and_rng();
            for gadget in &mut self.gadgets {
                for _ in 0..config.oob_attempts {
                    for i in 0..config.mistrain_calls {
                        let _ = gadget.call(i % array1_len, mem, rng);
                    }
                    let _ = gadget.call(array1_len + offset, mem, rng);
                }
            }
        }
        // The in-bounds mistraining calls architecturally warmed the probe
        // lines of their (attacker-known) training byte values; flush
        // those again so only the transient secret line stays hot.
        for g in 0..self.gadgets.len() {
            for i in 0..config.mistrain_calls.min(array1_len) {
                let addr = self.gadgets[g].probe_addr((i % 256) as u8);
                machine.clflush(addr);
            }
        }
    }

    /// Reloads candidate `v` across all copies (the attacker-timed
    /// operation).
    pub fn reload_candidate(&self, machine: &mut Machine, v: u8) {
        for gadget in &self.gadgets {
            let _ = machine.mem_access(gadget.probe_addr(v));
        }
    }
}

/// Per-candidate reload measurements for one secret byte (the data of
/// paper Fig. 12).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ByteLeak {
    /// The recovered byte (argmin reload time).
    pub guessed: u8,
    /// Ground truth.
    pub actual: u8,
    /// Per-candidate measured ticks (lower = faster = cached). Indexed by
    /// candidate value; `f64::INFINITY` for untried candidates.
    pub ticks: Vec<f64>,
}

impl ByteLeak {
    /// Whether the byte was recovered correctly.
    #[must_use]
    pub fn correct(&self) -> bool {
        self.guessed == self.actual
    }

    /// The Fig. 12 presentation: per-candidate *tail* SegCnt, i.e. the
    /// calibrated interval minus the measured ticks, so the cached secret
    /// shows the **highest** bar as in the paper's figure.
    #[must_use]
    pub fn fig12_series(&self, interval_ticks: f64) -> Vec<f64> {
        self.ticks
            .iter()
            .map(|&t| {
                if t.is_finite() {
                    interval_ticks - t
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// The outcome of leaking a whole secret string.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectreResult {
    /// Per-byte outcomes.
    pub bytes: Vec<ByteLeak>,
    /// Fraction of bytes recovered correctly.
    pub success_rate: f64,
    /// Leak throughput, bytes per simulated second.
    pub rate_bps: f64,
}

/// Leaks `secret` end to end with the SegScope timer.
///
/// # Errors
///
/// Propagates SegScope probe/calibration errors.
///
/// # Panics
///
/// Panics if `secret` is empty or a secret byte is outside the candidate
/// alphabet.
pub fn leak_secret(
    secret: &[u8],
    config: &SpectreConfig,
    seed: u64,
) -> Result<SpectreResult, ProbeError> {
    let mut machine = Machine::new(MachineConfig::xiaomi_air13(), seed);
    machine.set_fault_plan(config.fault_plan);
    leak_secret_on(&mut machine, secret, config)
}

/// Leaks `secret` on a caller-provided `machine` (fault plan and any
/// trace sink already installed).
///
/// # Errors
///
/// Propagates SegScope probe/calibration errors.
///
/// # Panics
///
/// Panics if `secret` is empty or a secret byte is outside the candidate
/// alphabet.
pub fn leak_secret_on(
    machine: &mut Machine,
    secret: &[u8],
    config: &SpectreConfig,
) -> Result<SpectreResult, ProbeError> {
    assert!(!secret.is_empty(), "need a secret to leak");
    assert!(
        secret.iter().all(|&b| (b as usize) < config.candidates),
        "secret bytes must be within the candidate alphabet"
    );
    machine.spin(50_000_000); // warm-up
    let mut timer = SegTimer::calibrate(machine, config.calibration, Denoise::ZScore)?;
    let mut bank = AmplifiedSpectre::new(config.gadgets, secret);
    let start = machine.now();
    let mut bytes = Vec::with_capacity(secret.len());
    for (offset, &actual) in secret.iter().enumerate() {
        bank.flush_probes(machine, config.candidates);
        bank.leak_round(machine, offset, config);
        let mut ticks = vec![f64::INFINITY; config.candidates];
        for (v, slot) in ticks.iter_mut().enumerate() {
            let mut best = f64::INFINITY;
            for _ in 0..config.rounds_per_candidate {
                let run = timer.time(machine, |m| bank.reload_candidate(m, v as u8))?;
                best = best.min(run.ticks);
            }
            *slot = best;
        }
        let guessed = ticks
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite ticks"))
            .map(|(v, _)| v as u8)
            .expect("candidates nonempty");
        bytes.push(ByteLeak {
            guessed,
            actual,
            ticks,
        });
    }
    let elapsed = (machine.now() - start).as_secs_f64();
    let correct = bytes.iter().filter(|b| b.correct()).count();
    Ok(SpectreResult {
        success_rate: correct as f64 / secret.len() as f64,
        rate_bps: secret.len() as f64 / elapsed.max(1e-9),
        bytes,
    })
}

/// The registered Spectre scenario: each trial leaks the configured
/// secret end to end on a fresh machine.
pub struct SpectreScenario;

/// Parameters of [`SpectreScenario`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectreScenarioConfig {
    /// The amplified-gadget attack parameters.
    pub attack: SpectreConfig,
    /// The secret string to leak (bytes must be within the candidate
    /// alphabet).
    pub secret: String,
}

impl Default for SpectreScenarioConfig {
    /// The quick attack leaking `"SEG"`.
    fn default() -> Self {
        SpectreScenarioConfig {
            attack: SpectreConfig::quick(),
            secret: "SEG".to_owned(),
        }
    }
}

/// Summary of a [`SpectreScenario`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectreSummary {
    /// Mean per-byte success rate over successful trials.
    pub mean_success_rate: f64,
    /// Mean leak throughput over successful trials, bytes per simulated
    /// second.
    pub mean_rate_bps: f64,
    /// Trials that failed (probe mitigated).
    pub failed: usize,
}

impl Scenario for SpectreScenario {
    type Config = SpectreScenarioConfig;
    type TrialOutput = Result<SpectreResult, ProbeError>;
    type Summary = SpectreSummary;

    fn name(&self) -> &'static str {
        "spectre"
    }

    fn describe(&self) -> &'static str {
        "Spectre-V1 + Flush+Reload with replicated gadgets, timed by the SegScope timer (paper Section IV-F)"
    }

    fn experiment_seed(&self, _config: &Self::Config, requested: Option<u64>) -> u64 {
        requested.unwrap_or(0x15EC)
    }

    fn trial_count(&self, _config: &Self::Config, requested: Option<usize>) -> usize {
        requested.unwrap_or(1)
    }

    fn build_machine(&self, config: &Self::Config, ctx: &TrialCtx) -> Machine {
        let mut machine = Machine::new(MachineConfig::xiaomi_air13(), ctx.seed);
        machine.set_fault_plan(config.attack.fault_plan);
        machine
    }

    fn run_trial(
        &self,
        config: &Self::Config,
        machine: &mut Machine,
        _ctx: &TrialCtx,
    ) -> Result<SpectreResult, ProbeError> {
        leak_secret_on(machine, config.secret.as_bytes(), &config.attack)
    }

    fn summarize(&self, _config: &Self::Config, outputs: &[Self::TrialOutput]) -> SpectreSummary {
        let ok: Vec<&SpectreResult> = outputs.iter().filter_map(|r| r.as_ref().ok()).collect();
        let n = ok.len().max(1) as f64;
        SpectreSummary {
            mean_success_rate: ok.iter().map(|r| r.success_rate).sum::<f64>() / n,
            mean_rate_bps: ok.iter().map(|r| r.rate_bps).sum::<f64>() / n,
            failed: outputs.len() - ok.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_leak_recovers_a_short_secret() {
        let result = leak_secret(b"SEG", &SpectreConfig::quick(), 0x15EC).unwrap();
        assert_eq!(result.bytes.len(), 3);
        assert!(
            result.success_rate >= 2.0 / 3.0,
            "success rate {}",
            result.success_rate
        );
        // The paper's headline byte: 'S' must be recovered.
        assert_eq!(result.bytes[0].guessed, b'S');
    }

    #[test]
    fn secret_candidate_is_fastest_by_a_wide_margin() {
        let result = leak_secret(b"S", &SpectreConfig::quick(), 0x5ED).unwrap();
        let leak = &result.bytes[0];
        let secret_ticks = leak.ticks[b'S' as usize];
        let mut others: Vec<f64> = leak
            .ticks
            .iter()
            .enumerate()
            .filter(|&(v, t)| v != b'S' as usize && t.is_finite())
            .map(|(_, &t)| t)
            .collect();
        others.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // The secret must beat the median non-secret candidate clearly.
        let median_other = others[others.len() / 2];
        assert!(
            secret_ticks < median_other,
            "secret {secret_ticks} !< median other {median_other}"
        );
    }

    #[test]
    fn fig12_series_peaks_at_secret() {
        let result = leak_secret(b"Z", &SpectreConfig::quick(), 0x5EE).unwrap();
        let leak = &result.bytes[0];
        let series = leak.fig12_series(1.0e7);
        let max_idx = series
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(max_idx, usize::from(leak.guessed));
    }

    #[test]
    fn bank_geometry() {
        let bank = AmplifiedSpectre::new(10, b"AB");
        assert_eq!(bank.len(), 10);
        assert!(!bank.is_empty());
        assert_eq!(bank.secret_len(), 2);
    }

    #[test]
    #[should_panic(expected = "candidate alphabet")]
    fn secret_outside_alphabet_panics() {
        let mut config = SpectreConfig::quick();
        config.candidates = 64;
        let _ = leak_secret(b"Z", &config, 1);
    }
}
