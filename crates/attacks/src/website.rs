//! Case study 1: website fingerprinting with SegScope interrupt traces
//! (paper Section IV-A, Table IV).
//!
//! Each website is modeled as a stochastic *activity profile* — a train of
//! network bursts (resource fetches) and a rendering cadence (GPU
//! interrupts) plus a CPU-load curve — whose parameters are drawn
//! deterministically from the site identity. Visiting the site injects
//! the profile's device interrupts into the attacker core's fabric and
//! loads the shared frequency domain; the attacker collects a SegCnt
//! trace with [`SegProbe`] and an LSTM classifies which site was visited.

use irq::time::Ps;
use irq::InterruptKind;
use nnet::{AdamConfig, SeqClassifier, SeqExample};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scenario::{MergeReport, RunOptions, Scenario, TrialCtx};
use segscope::SegProbe;
use segsim::{CoResident, FaultPlan, Machine, MachineConfig, StepFn};
use serde::{Deserialize, Serialize};

/// The browser rendering the site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Browser {
    /// Chrome: direct connection, crisp burst timing.
    Chrome,
    /// Tor Browser: onion-routing latency, burst-shape padding, and
    /// timing jitter — the defenses that lower (but do not defeat)
    /// fingerprinting accuracy in paper Table IV.
    Tor,
}

/// The system setting of a Table IV row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Setting {
    /// Attacker and browser pinned to the same logical core (the paper's
    /// default).
    Default,
    /// Attacker and browser on different logical cores.
    DifferentCores,
    /// DVFS disabled (`cpufreq-set` pins 2.5 GHz).
    FrequencyScalingDisabled,
    /// Hyper-threading disabled (no SMT-sibling noise).
    HyperThreadingDisabled,
}

impl Setting {
    /// All four Table IV settings, in row order.
    pub const ALL: [Setting; 4] = [
        Setting::Default,
        Setting::DifferentCores,
        Setting::FrequencyScalingDisabled,
        Setting::HyperThreadingDisabled,
    ];

    /// The row label used in the paper's Table IV.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Setting::Default => "Default",
            Setting::DifferentCores => "Different cores used",
            Setting::FrequencyScalingDisabled => "Frequency scaling disabled",
            Setting::HyperThreadingDisabled => "Hyper-threading disabled",
        }
    }
}

/// One network-burst group in a site profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Burst {
    start: Ps,
    events: u32,
    gap: Ps,
}

/// A website's deterministic activity profile.
///
/// Parameters are derived from the site index alone, so every visit to
/// site `i` shares the same underlying structure while per-visit
/// randomness (jitter, drops) differs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebsiteProfile {
    /// Site index (stands in for the paper's 95-site Alexa-derived list).
    pub site: usize,
    bursts: Vec<Burst>,
    /// Render/GPU interrupt period (vsync-ish cadence while loading).
    gpu_period: Ps,
    /// How long GPU activity lasts.
    gpu_until: Ps,
    /// CPU load while the main document parses/executes.
    load_level: f64,
    /// When the heavy-load phase ends.
    load_until: Ps,
}

impl WebsiteProfile {
    /// Builds the profile of site `site`.
    #[must_use]
    pub fn for_site(site: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(
            0x5e_bc0d_e00f ^ (site as u64).wrapping_mul(0x9E3779B97F4A7C15),
        );
        let n_bursts = rng.gen_range(3..12);
        let mut bursts = Vec::with_capacity(n_bursts);
        for b in 0..n_bursts {
            let start = Ps::from_ms(rng.gen_range(5 + 120 * b as u64..80 + 120 * b as u64));
            bursts.push(Burst {
                start,
                events: rng.gen_range(4..40),
                gap: Ps::from_us(rng.gen_range(150..2_500)),
            });
        }
        WebsiteProfile {
            site,
            bursts,
            gpu_period: Ps::from_us(rng.gen_range(8_000..22_000)),
            gpu_until: Ps::from_ms(rng.gen_range(300..1_400)),
            load_level: rng.gen_range(0.35..0.95),
            load_until: Ps::from_ms(rng.gen_range(250..1_200)),
        }
    }

    /// Generates one visit's device-interrupt schedule and load curve,
    /// starting at `t0`, under the given browser.
    pub fn visit<R: Rng + ?Sized>(
        &self,
        t0: Ps,
        browser: Browser,
        rng: &mut R,
    ) -> (Vec<(Ps, InterruptKind)>, StepFn) {
        let mut events = Vec::new();
        let (latency_ms, jitter_frac, padding) = match browser {
            Browser::Chrome => (0u64, 0.06, 0u32),
            Browser::Tor => (rng.gen_range(120..400), 0.25, 24),
        };
        let latency = Ps::from_ms(latency_ms);
        for burst in &self.bursts {
            let jitter = 1.0 + rng.gen_range(-jitter_frac..jitter_frac);
            let start = t0 + latency + Ps::from_ps((burst.start.as_ps() as f64 * jitter) as u64);
            let mut t = start;
            for _ in 0..burst.events {
                // Tor's cell-level pacing coarsens gaps.
                let gap_scale = if browser == Browser::Tor { 2.0 } else { 1.0 };
                let gap = (burst.gap.as_ps() as f64 * gap_scale * (1.0 + rng.gen_range(-0.3..0.3)))
                    as u64;
                t += Ps::from_ps(gap.max(1));
                events.push((t, InterruptKind::Network));
            }
        }
        // Tor padding: uniform cover traffic across the visit.
        for _ in 0..padding {
            let at = t0 + latency + Ps::from_ms(rng.gen_range(0..1_500));
            events.push((at, InterruptKind::Network));
        }
        // Rendering cadence.
        let mut t = t0 + latency + self.gpu_period;
        while t < t0 + latency + self.gpu_until {
            events.push((t, InterruptKind::Gpu));
            t += self.gpu_period;
        }
        events.sort_by_key(|&(at, _)| at);
        // Load curve: heavy while parsing, light afterwards.
        let mut load = StepFn::zero();
        load.push(t0, 0.05);
        load.push(t0 + latency, self.load_level);
        load.push(t0 + latency + self.load_until, 0.1);
        (events, load)
    }
}

/// Configuration of one Table IV experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebsiteFpConfig {
    /// Number of distinct sites (paper: 95; quick default: 12).
    pub n_sites: usize,
    /// Traces collected per site (paper: 100; quick default: 12).
    pub traces_per_site: usize,
    /// SegCnt samples per trace (paper: 5000; quick default: 600).
    pub trace_len: usize,
    /// Average-pooled sequence length fed to the LSTM.
    pub pooled_len: usize,
    /// LSTM hidden units (paper: 32).
    pub hidden: usize,
    /// Training epochs per fold.
    pub epochs: usize,
    /// Cross-validation folds (paper: 10).
    pub folds: usize,
    /// Browser under test.
    pub browser: Browser,
    /// System setting under test.
    pub setting: Setting,
    /// RNG seed.
    pub seed: u64,
    /// Optional interrupt-path fault plan installed on every visit
    /// machine (`None` = nominal fault-free run).
    pub fault_plan: Option<FaultPlan>,
    /// Streaming-eval mode: fold evaluation runs through the
    /// [`serve`] engine (bit-identical to batch evaluation by the serve
    /// parity contract) and each trial emits a
    /// [`obs::EventKind::ServeVerdict`] into its trace sink. The
    /// serving classifier is seeded from its own auxiliary stream and
    /// serving draws no randomness, so machine RNG streams — and
    /// therefore golden traces — are untouched.
    #[serde(default)]
    pub streaming: bool,
}

impl Default for WebsiteFpConfig {
    /// The [`WebsiteFpConfig::quick`] Chrome run in the paper's default
    /// setting.
    fn default() -> Self {
        WebsiteFpConfig::quick(Browser::Chrome, Setting::Default)
    }
}

impl WebsiteFpConfig {
    /// A configuration small enough for `cargo test`.
    #[must_use]
    pub fn quick(browser: Browser, setting: Setting) -> Self {
        WebsiteFpConfig {
            n_sites: 8,
            traces_per_site: 8,
            trace_len: 400,
            pooled_len: 64,
            hidden: 16,
            epochs: 14,
            folds: 4,
            browser,
            setting,
            seed: 0x7AB1E4,
            fault_plan: None,
            streaming: false,
        }
    }

    /// The bench-scale configuration (larger site set, 10-fold CV).
    #[must_use]
    pub fn bench(browser: Browser, setting: Setting) -> Self {
        WebsiteFpConfig {
            n_sites: 20,
            traces_per_site: 15,
            trace_len: 800,
            pooled_len: 96,
            hidden: 24,
            epochs: 20,
            folds: 5,
            browser,
            setting,
            seed: 0x7AB1E4,
            fault_plan: None,
            streaming: false,
        }
    }

    /// Installs a fault plan on every visit machine.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// The outcome of one Table IV cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FingerprintResult {
    /// Mean top-1 accuracy across folds.
    pub top1: f64,
    /// Std of top-1 across folds.
    pub top1_std: f64,
    /// Mean top-5 accuracy across folds.
    pub top5: f64,
    /// Std of top-5 across folds.
    pub top5_std: f64,
    /// Chance level (`1 / n_sites`).
    pub chance: f64,
}

/// Builds the attacker machine of one visit: the Table IV setting's
/// noise/SMT adjustments, the config's fault plan, and the co-residency
/// or frequency-pinning wiring.
#[must_use]
pub fn build_visit_machine(config: &WebsiteFpConfig, visit_seed: u64) -> Machine {
    let mut machine_cfg = MachineConfig::xiaomi_air13();
    if config.setting == Setting::HyperThreadingDisabled {
        machine_cfg.noise.smt_factor = 1.0;
        machine_cfg.noise.op_jitter_std *= 0.6;
    } else {
        machine_cfg.noise.smt_factor = 1.04;
    }
    machine_cfg.fault_plan = config.fault_plan;
    let mut machine = Machine::new(machine_cfg, visit_seed);
    match config.setting {
        Setting::Default => {
            machine.set_co_resident(Some(CoResident::browser()));
        }
        Setting::DifferentCores => {}
        Setting::FrequencyScalingDisabled => {
            machine.pin_frequency(Some(2_500_000));
        }
        Setting::HyperThreadingDisabled => {
            machine.set_co_resident(Some(CoResident::browser()));
        }
    }
    machine
}

/// Runs one visit to `site` on a prepared machine and collects the
/// SegCnt trace. `visit_seed` seeds the visit's jitter stream (the same
/// value that seeded the machine).
///
/// # Panics
///
/// Panics if the probe fails (the default machines never mitigate it).
#[must_use]
pub fn collect_trace_on(
    machine: &mut Machine,
    config: &WebsiteFpConfig,
    site: usize,
    visit_seed: u64,
) -> Vec<f64> {
    // Warm up, then start the visit.
    machine.spin(50_000_000);
    let t0 = machine.now();
    let profile = WebsiteProfile::for_site(site);
    let mut visit_rng = SmallRng::seed_from_u64(exec::derive_seed(visit_seed, exec::AUX_STREAM));
    let (events, load) = profile.visit(t0, config.browser, &mut visit_rng);
    machine.inject_interrupts(events);
    machine.set_victim_load(load);
    let mut probe = SegProbe::new();
    let mut samples = Vec::new();
    probe
        .probe_n_into(machine, config.trace_len, &mut samples)
        .expect("probe works on unmitigated machines");
    samples.iter().map(|s| s.segcnt as f64).collect()
}

/// Collects one SegCnt trace of a visit to `site` on a fresh machine.
///
/// # Panics
///
/// Panics if the probe fails (the default machines never mitigate it).
#[must_use]
pub fn collect_trace(config: &WebsiteFpConfig, site: usize, visit_seed: u64) -> Vec<f64> {
    let mut machine = build_visit_machine(config, visit_seed);
    collect_trace_on(&mut machine, config, site, visit_seed)
}

/// Converts a raw SegCnt trace into an LSTM example with two channels:
/// the standardized pooled SegCnt level (frequency/load information) and
/// a *burst density* channel — the fraction of samples in each pooling
/// bucket that are short intervals (device interrupts cut timer periods
/// short, so burst density tracks network/GPU activity directly).
#[must_use]
pub fn trace_to_example(trace: &[f64], pooled_len: usize, label: usize) -> SeqExample {
    let pooled = nnet::average_pool(trace, pooled_len);
    let level = nnet::standardize(&pooled);
    // Burst density per bucket: short interval = below half the trace
    // median.
    let mut sorted = trace.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = sorted[sorted.len() / 2];
    let short: Vec<f64> = trace
        .iter()
        .map(|&x| f64::from(u8::from(x < median * 0.5)))
        .collect();
    let density = nnet::average_pool(&short, pooled_len);
    let xs = level
        .iter()
        .zip(&density)
        .map(|(&l, &d)| vec![l as f32, (d * 4.0) as f32])
        .collect();
    SeqExample { xs, label }
}

/// Auxiliary stream of the streaming-eval serving classifier. Distinct
/// from the fold-split stream (`AUX_STREAM`) and every fold's model
/// stream (`AUX_STREAM + 1 + fold`), and never mixed into machine or
/// visit streams.
const SERVE_STREAM: u64 = exec::AUX_STREAM + 0x5E57;

/// Streams a pooled trial example through a config-seeded serving
/// classifier and emits the verdict into the machine's trace sink, when
/// one is installed. The classifier draws only from [`SERVE_STREAM`]
/// and the serving path is RNG-free, so traces stay byte-identical.
fn emit_serve_verdict(
    config: &WebsiteFpConfig,
    machine: &mut Machine,
    index: usize,
    example: &SeqExample,
) {
    if machine.trace_sink().is_none() {
        return;
    }
    let mut rng = SmallRng::seed_from_u64(exec::derive_seed(config.seed, SERVE_STREAM));
    let model = SeqClassifier::new(
        2,
        config.hidden,
        config.n_sites,
        &mut rng,
        AdamConfig::default(),
    );
    let mut session = serve::StreamSession::new(&model, example.xs.len());
    let mut verdict = None;
    for x in &example.xs {
        verdict = session.push(&model, x);
    }
    let verdict = verdict.expect("pooled example is non-empty");
    let at_ps = machine.now().as_ps();
    if let Some(sink) = machine.trace_sink_mut() {
        sink.emit(
            at_ps,
            obs::EventKind::ServeVerdict {
                session: index as u32,
                class: verdict.class as u32,
                steps: verdict.steps as u32,
            },
        );
    }
}

/// Fold evaluation through the streaming engine: serves the test set
/// through the cross-session batcher and tallies per-chunk
/// [`nnet::ConfusionMatrix`] fragments folded with [`MergeReport`].
/// Bit-identical to [`SeqClassifier::accuracy`] by the serve parity
/// contract, so enabling streaming changes no Table IV numbers.
fn streaming_fold_top1(model: &SeqClassifier, test: &[SeqExample]) -> f64 {
    let traces: Vec<Vec<Vec<f32>>> = test.iter().map(|ex| ex.xs.clone()).collect();
    let verdicts = serve::serve_batched(model, &traces, 16);
    let chunks = test.chunks(8).zip(verdicts.chunks(8)).map(|(exs, vs)| {
        let mut part = nnet::ConfusionMatrix::new(model.classes());
        for (ex, v) in exs.iter().zip(vs) {
            part.record(ex.label, v.class);
        }
        part
    });
    nnet::ConfusionMatrix::merged(chunks).accuracy()
}

/// The registered website-fingerprinting scenario: trial `i` is one
/// visit to site `i / traces_per_site`; the summary trains and
/// cross-validates the LSTM over the collected dataset.
pub struct WebsiteScenario;

impl Scenario for WebsiteScenario {
    type Config = WebsiteFpConfig;
    type TrialOutput = SeqExample;
    type Summary = FingerprintResult;

    fn name(&self) -> &'static str {
        "website"
    }

    fn describe(&self) -> &'static str {
        "website fingerprinting from SegCnt interrupt traces with an LSTM (paper Section IV-A)"
    }

    fn experiment_seed(&self, config: &Self::Config, requested: Option<u64>) -> u64 {
        requested.unwrap_or(config.seed)
    }

    fn trial_count(&self, config: &Self::Config, _requested: Option<usize>) -> usize {
        // Structured: one trial per (site, visit) pair.
        config.n_sites * config.traces_per_site
    }

    fn build_machine(&self, config: &Self::Config, ctx: &TrialCtx) -> Machine {
        build_visit_machine(config, ctx.seed)
    }

    fn run_trial(
        &self,
        config: &Self::Config,
        machine: &mut Machine,
        ctx: &TrialCtx,
    ) -> SeqExample {
        let site = ctx.index / config.traces_per_site.max(1);
        let trace = collect_trace_on(machine, config, site, ctx.seed);
        let example = trace_to_example(&trace, config.pooled_len, site);
        if config.streaming {
            emit_serve_verdict(config, machine, ctx.index, &example);
        }
        example
    }

    fn summarize(&self, config: &Self::Config, outputs: &[SeqExample]) -> FingerprintResult {
        // The fold split and each fold's model init draw from their own
        // auxiliary streams so folds are independent of each other.
        let mut fold_rng =
            SmallRng::seed_from_u64(exec::derive_seed(config.seed, exec::AUX_STREAM));
        let folds = nnet::k_fold_indices(outputs.len(), config.folds, &mut fold_rng);
        let fold_scores: Vec<(f64, f64)> = exec::parallel_map_auto(folds.len(), |f| {
            let (train_idx, test_idx) = &folds[f];
            let train: Vec<SeqExample> = train_idx.iter().map(|&i| outputs[i].clone()).collect();
            let test: Vec<SeqExample> = test_idx.iter().map(|&i| outputs[i].clone()).collect();
            let mut model_rng = SmallRng::seed_from_u64(exec::derive_seed(
                config.seed,
                exec::AUX_STREAM + 1 + f as u64,
            ));
            let mut model = SeqClassifier::new(
                2, // channels: SegCnt level + burst density
                config.hidden,
                config.n_sites,
                &mut model_rng,
                AdamConfig {
                    lr: 0.015,
                    ..AdamConfig::default()
                },
            );
            for _ in 0..config.epochs {
                model.train_epoch(&train, 16);
            }
            let top1 = if config.streaming {
                streaming_fold_top1(&model, &test)
            } else {
                model.accuracy(&test)
            };
            (top1, model.top_k_accuracy(&test, 5))
        });
        let top1s: Vec<f64> = fold_scores.iter().map(|s| s.0).collect();
        let top5s: Vec<f64> = fold_scores.iter().map(|s| s.1).collect();
        FingerprintResult {
            top1: segscope::mean(&top1s),
            top1_std: segscope::std_dev(&top1s),
            top5: segscope::mean(&top5s),
            top5_std: segscope::std_dev(&top5s),
            chance: 1.0 / config.n_sites as f64,
        }
    }
}

/// Runs the full fingerprinting experiment: trace collection, k-fold CV,
/// LSTM training, and evaluation.
///
/// Thin wrapper over the generic [`scenario`] driver and
/// [`WebsiteScenario`]: trace collection fans out one task per
/// `(site, visit)` pair and the CV folds train concurrently; every task
/// derives its own seed from `config.seed`, so the result is
/// bit-identical at any worker count (`SEGSCOPE_THREADS` selects it).
#[must_use]
pub fn run_experiment(config: &WebsiteFpConfig) -> FingerprintResult {
    scenario::run_scenario(&WebsiteScenario, config, &RunOptions::default()).summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_deterministic_and_distinct() {
        let a1 = WebsiteProfile::for_site(3);
        let a2 = WebsiteProfile::for_site(3);
        let b = WebsiteProfile::for_site(4);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn tor_adds_latency_and_padding() {
        let profile = WebsiteProfile::for_site(1);
        let mut rng = SmallRng::seed_from_u64(9);
        let (chrome_events, _) = profile.visit(Ps::ZERO, Browser::Chrome, &mut rng);
        let mut rng = SmallRng::seed_from_u64(9);
        let (tor_events, _) = profile.visit(Ps::ZERO, Browser::Tor, &mut rng);
        assert!(
            tor_events.len() > chrome_events.len(),
            "padding adds events"
        );
        let first_chrome = chrome_events.first().unwrap().0;
        let first_tor = tor_events.first().unwrap().0;
        assert!(first_tor > first_chrome, "onion latency delays traffic");
    }

    #[test]
    fn traces_differ_between_sites_more_than_within() {
        let config = WebsiteFpConfig::quick(Browser::Chrome, Setting::DifferentCores);
        let t_a1 = collect_trace(&config, 0, 100);
        let t_a2 = collect_trace(&config, 0, 101);
        let t_b = collect_trace(&config, 5, 102);
        let dist = |x: &[f64], y: &[f64]| -> f64 {
            let xa = nnet::standardize(&nnet::average_pool(x, 64));
            let ya = nnet::standardize(&nnet::average_pool(y, 64));
            xa.iter()
                .zip(&ya)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        };
        let within = dist(&t_a1, &t_a2);
        let between = dist(&t_a1, &t_b);
        assert!(
            between > within,
            "between-site distance {between} should exceed within-site {within}"
        );
    }

    #[test]
    fn quick_experiment_beats_chance_soundly() {
        let config = WebsiteFpConfig::quick(Browser::Chrome, Setting::DifferentCores);
        let result = run_experiment(&config);
        assert!(
            result.top1 > 4.0 * result.chance,
            "top1 {} vs chance {}",
            result.top1,
            result.chance
        );
        assert!(result.top5 >= result.top1);
    }

    #[test]
    fn settings_have_labels() {
        for s in Setting::ALL {
            assert!(!s.label().is_empty());
        }
    }

    /// Streaming eval is observability, not a different experiment:
    /// every Table IV number must come out bit-identical.
    #[test]
    fn streaming_eval_matches_batch_eval_exactly() {
        let mut config = WebsiteFpConfig::quick(Browser::Chrome, Setting::DifferentCores);
        config.n_sites = 4;
        config.traces_per_site = 5;
        config.epochs = 6;
        config.folds = 3;
        let baseline = run_experiment(&config);
        config.streaming = true;
        let streamed = run_experiment(&config);
        assert_eq!(baseline, streamed);
    }

    /// A streaming trial on a sink-instrumented machine records its
    /// serving verdict; without the flag the trace stays clean.
    #[test]
    fn streaming_trials_emit_serve_verdicts() {
        let mut config = WebsiteFpConfig::quick(Browser::Chrome, Setting::DifferentCores);
        config.streaming = true;
        let ctx = TrialCtx {
            index: 3,
            seed: exec::derive_seed(config.seed, 3),
            experiment_seed: config.seed,
        };
        let run = |config: &WebsiteFpConfig| {
            let mut machine = WebsiteScenario.build_machine(config, &ctx);
            machine.install_trace_sink(obs::TraceSink::with_capacity(4096));
            WebsiteScenario.run_trial(config, &mut machine, &ctx);
            machine.take_trace_sink().expect("sink stays installed")
        };
        let events = run(&config).events();
        let verdicts: Vec<_> = events
            .iter()
            .filter(|e| e.class() == obs::EventClass::ServeVerdict)
            .collect();
        assert_eq!(verdicts.len(), 1, "one verdict per streamed trial");
        let obs::EventKind::ServeVerdict {
            session,
            class,
            steps,
        } = verdicts[0].kind
        else {
            unreachable!()
        };
        assert_eq!(session, 3);
        assert!((class as usize) < config.n_sites);
        assert_eq!(steps as usize, config.pooled_len);
        // The instrumentation draws from its own stream: the rest of
        // the trace is byte-identical with streaming off.
        config.streaming = false;
        let baseline = run(&config);
        let without_verdicts: Vec<_> = events
            .iter()
            .filter(|e| e.class() != obs::EventClass::ServeVerdict)
            .copied()
            .collect();
        assert_eq!(without_verdicts, baseline.events());
    }
}
