//! Regenerates `BENCH_batched.json`: adaptive-vs-naive fabric throughput
//! on the simulator's peek-heavy dispatch pattern across source counts,
//! and recycled-lane batched trial throughput vs fresh-machine scalar
//! trials.
//!
//! Writes to the path in `SEGSCOPE_BENCH_JSON` (default
//! `BENCH_batched.json` in the current directory). Set
//! `SEGSCOPE_BENCH_FULL=1` for the larger scales, which also arms the
//! ≥5x batched-speedup gate.

use segscope_bench::batched_report::{
    measure_batched_trials, measure_fabric_peek, write_report, BatchedBenchReport,
};
use segsim::MachineConfig;

fn main() {
    segscope_bench::header("Batched execution: adaptive fabric, recycled machine lanes");
    let full = segscope_bench::full_scale();
    // Short probe trials (a 32-slot burst, the per-candidate unit of the
    // scan-style attacks) are where per-trial machine construction
    // dominates — the regime the recycled-lane driver exists for.
    let (events, trials, slots) = if full {
        (1_500_000, 2_000, 32)
    } else {
        (150_000, 256, 32)
    };

    // Source counts straddling the adaptive cutover: the bare 3-source
    // preset (the pre-adaptive 0.85x regression point), one near the
    // cutover, and two calendar-mode widths.
    let arms = [
        (MachineConfig::lenovo_yangtian(), 0usize),
        (MachineConfig::lenovo_yangtian(), 4),
        (MachineConfig::lenovo_yangtian(), 32),
        (MachineConfig::honor_magicbook(), 128),
    ];
    let mut fabric = Vec::new();
    for (i, (cfg, extra)) in arms.iter().enumerate() {
        // Warmup pass (page-in, branch training) before the timed one.
        let _ = measure_fabric_peek(cfg, *extra, events / 10, 0xBA7C_0010 + i as u64);
        let arm = measure_fabric_peek(cfg, *extra, events, 0xBA7C_0010 + i as u64);
        println!(
            "fabric `{}` ({} sources, {}): naive {:.2}M irq/s, \
             adaptive {:.2}M irq/s ({:.2}x), identical: {}",
            arm.machine,
            arm.sources,
            arm.mode,
            arm.naive_events_per_s / 1e6,
            arm.adaptive_events_per_s / 1e6,
            arm.speedup,
            arm.identical,
        );
        fabric.push(arm);
    }

    let trials_arm = measure_batched_trials(trials, slots, 3, 0xBA7C_0020);
    println!(
        "trials `{}` ({} trials x {} slots): scalar {:.0} trials/s, \
         batched {:.0} trials/s ({:.2}x), identical: {}",
        trials_arm.machine,
        trials_arm.trials,
        trials_arm.slots_per_trial,
        trials_arm.scalar_trials_per_s,
        trials_arm.batched_trials_per_s,
        trials_arm.speedup,
        trials_arm.identical,
    );

    let note = if full {
        "full scale (SEGSCOPE_BENCH_FULL=1); wall-clock numbers are \
         host-dependent, the identity/speedup invariants are not"
            .to_string()
    } else {
        "quick scale; wall-clock numbers are host-dependent, the \
         identity/speedup invariants are not"
            .to_string()
    };
    let report = BatchedBenchReport {
        fabric,
        trials: trials_arm,
        full_scale: full,
        note,
    };
    report.validate().expect("batched-path invariants hold");

    let path =
        std::env::var("SEGSCOPE_BENCH_JSON").unwrap_or_else(|_| "BENCH_batched.json".to_string());
    write_report(&report, &path).expect("write report");
    println!("\nwrote {path}");
}
