//! Regenerates `BENCH_campaign.json`: campaign-sweep throughput
//! (cells/s) at shard counts 1, 4, and 8 over a fast four-scenario
//! grid, with an FNV fold of each merged report proving the sweeps are
//! bit-identical.
//!
//! Writes to the path in `SEGSCOPE_BENCH_JSON` (default
//! `BENCH_campaign.json` in the current directory). Set
//! `SEGSCOPE_BENCH_FULL=1` for the larger grid. The ≥2x
//! sharded-vs-serial gate arms only on multi-core hosts; single-core
//! hosts gate report identity alone (same policy as
//! `BENCH_parallel.json`).

use segscope_bench::campaign_report::{
    bench_spec, measure_campaign, write_report, CampaignBenchReport,
};

fn main() {
    segscope_bench::header("Campaign engine: sharded grid-sweep throughput");
    let full = segscope_bench::full_scale();
    let spec = bench_spec(full);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "grid `{}`: {} cells ({} scenarios x {} presets x {} faults x {} replicates), \
         {} host cores",
        spec.name,
        spec.cell_count(),
        spec.scenarios.len(),
        spec.presets.len(),
        spec.faults.len(),
        spec.replicates,
        cores,
    );

    // Warmup sweep (page-in, lane construction) before the timed arms.
    let _ = measure_campaign(&spec, 2);

    let mut arms = Vec::new();
    for shards in [1usize, 4, 8] {
        let arm = measure_campaign(&spec, shards);
        println!(
            "shards {:2}: {:6.1} cells/s ({:.3}s), report digest {:#018x}",
            arm.shards, arm.cells_per_s, arm.wall_s, arm.report_digest,
        );
        arms.push(arm);
    }
    let identical = arms
        .iter()
        .all(|a| a.report_digest == arms[0].report_digest);
    println!("reports identical across shard counts: {identical}");

    let note = format!(
        "{} scale on a {}-core host; wall-clock numbers are host-dependent, \
         the identity invariant is not{}",
        if full { "full" } else { "quick" },
        cores,
        if cores > 1 {
            ""
        } else {
            "; single-core host, speedup gate disarmed"
        },
    );
    let report = CampaignBenchReport {
        spec: spec.name.clone(),
        cells: spec.cell_count(),
        trials_per_cell: spec.trials.unwrap_or(1),
        arms,
        identical,
        multi_core: cores > 1,
        full_scale: full,
        note,
    };
    report.validate().expect("campaign-sweep invariants hold");

    let path =
        std::env::var("SEGSCOPE_BENCH_JSON").unwrap_or_else(|_| "BENCH_campaign.json".to_string());
    write_report(&report, &path).expect("write report");
    println!("\nwrote {path}");
}
