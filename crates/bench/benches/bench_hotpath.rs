//! Regenerates `BENCH_hotpath.json`: event-calendar fabric throughput vs
//! the naive linear-scan baseline, allocation counts for the
//! buffer-reuse probe API vs the allocating wrapper, and end-to-end
//! scenario throughput.
//!
//! Writes to the path in `SEGSCOPE_BENCH_JSON` (default
//! `BENCH_hotpath.json` in the current directory). Set
//! `SEGSCOPE_BENCH_FULL=1` for the larger scales.

use segscope::SegProbe;
use segscope_bench::hotpath_report::{
    measure_fabric, measure_scenario, write_report, HotpathBenchReport, ProbeBench,
};
use segsim::{Machine, MachineConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Wraps the system allocator with heap-traffic counters so the probe
/// arms can report exact allocation counts rather than estimates.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` and returns `(wall_s, allocations, bytes, result)`.
fn counted<T>(f: impl FnOnce() -> T) -> (f64, u64, u64, T) {
    let allocs0 = ALLOCS.load(Ordering::Relaxed);
    let bytes0 = BYTES.load(Ordering::Relaxed);
    let start = Instant::now();
    let out = f();
    let wall_s = start.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs0;
    let bytes = BYTES.load(Ordering::Relaxed) - bytes0;
    (wall_s, allocs, bytes, out)
}

/// Order-sensitive FNV-1a fold over a probe-sample stream.
fn fold_sample(hash: u64, segcnt: u64) -> u64 {
    let mut h = hash;
    for byte in segcnt.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Measures the probe loop twice from identical machine state: `batches`
/// batches of `samples` through the allocating `probe_n`, then through
/// `probe_n_into` with one reused buffer.
fn measure_probe(samples: usize, batches: usize) -> ProbeBench {
    let cfg = MachineConfig::lenovo_yangtian();
    let seed = 0xB3CC_0004;

    let mut machine = Machine::new(cfg.clone(), seed);
    let mut probe = SegProbe::new();
    let (fresh_s, allocs_fresh, alloc_bytes_fresh, fresh_hash) = counted(|| {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for _ in 0..batches {
            let batch = probe.probe_n(&mut machine, samples).expect("probe works");
            h = batch.iter().fold(h, |h, s| fold_sample(h, s.segcnt));
        }
        h
    });

    let mut machine = Machine::new(cfg, seed);
    let mut probe = SegProbe::new();
    let mut buf = Vec::new();
    let (reused_s, allocs_reused, alloc_bytes_reused, reused_hash) = counted(|| {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for _ in 0..batches {
            probe
                .probe_n_into(&mut machine, samples, &mut buf)
                .expect("probe works");
            h = buf.iter().fold(h, |h, s| fold_sample(h, s.segcnt));
        }
        h
    });

    let total = (samples * batches) as f64;
    ProbeBench {
        samples,
        batches,
        alloc_bytes_fresh,
        alloc_bytes_reused,
        allocs_fresh,
        allocs_reused,
        alloc_reduction: 1.0 - allocs_reused as f64 / allocs_fresh.max(1) as f64,
        fresh_samples_per_s: total / fresh_s.max(1e-9),
        reused_samples_per_s: total / reused_s.max(1e-9),
        identical: fresh_hash == reused_hash,
    }
}

fn main() {
    segscope_bench::header("Hot-path performance: calendar fabric, probe buffers, scenarios");
    let full = segscope_bench::full_scale();
    let (events, samples, batches, trials) = if full {
        (3_000_000, 1_000, 2_000, 32)
    } else {
        (300_000, 1_000, 200, 4)
    };

    let presets = [
        (MachineConfig::lenovo_yangtian(), 0usize),
        (MachineConfig::lenovo_yangtian(), 32),
        (MachineConfig::lenovo_yangtian(), 128),
        (MachineConfig::honor_magicbook(), 128),
        (MachineConfig::lenovo_yangtian(), 256),
    ];
    let mut fabric = Vec::new();
    for (i, (cfg, extra)) in presets.iter().enumerate() {
        // Warmup pass (page-in, branch training) before the timed one.
        let _ = measure_fabric(cfg, *extra, events / 10, 0xB3CC_0003 + i as u64);
        let arm = measure_fabric(cfg, *extra, events, 0xB3CC_0003 + i as u64);
        println!(
            "fabric `{}` ({} sources, {} events): naive {:.2}M irq/s, \
             calendar {:.2}M irq/s ({:.2}x), identical: {}",
            arm.machine,
            arm.sources,
            arm.events,
            arm.naive_events_per_s / 1e6,
            arm.calendar_events_per_s / 1e6,
            arm.speedup,
            arm.identical,
        );
        fabric.push(arm);
    }

    let probe = measure_probe(samples, batches);
    println!(
        "probe ({} x {} samples): probe_n {:.2}M samples/s / {} allocs, \
         probe_n_into {:.2}M samples/s / {} allocs ({:.1}% fewer), identical: {}",
        probe.batches,
        probe.samples,
        probe.fresh_samples_per_s / 1e6,
        probe.allocs_fresh,
        probe.reused_samples_per_s / 1e6,
        probe.allocs_reused,
        probe.alloc_reduction * 100.0,
        probe.identical,
    );

    let scenario = measure_scenario(trials);
    println!(
        "scenario `{}`: {} trials in {:.2} s ({:.2} trials/s)",
        scenario.scenario, scenario.trials, scenario.wall_s, scenario.trials_per_s,
    );

    let note = if full {
        "full scale (SEGSCOPE_BENCH_FULL=1); wall-clock numbers are \
         host-dependent, the identity/speedup invariants are not"
            .to_string()
    } else {
        "quick scale; wall-clock numbers are host-dependent, the \
         identity/speedup invariants are not"
            .to_string()
    };
    let report = HotpathBenchReport {
        fabric,
        probe,
        scenario,
        note,
    };
    report.validate().expect("hot-path invariants hold");

    let path =
        std::env::var("SEGSCOPE_BENCH_JSON").unwrap_or_else(|_| "BENCH_hotpath.json".to_string());
    write_report(&report, &path).expect("write report");
    println!("\nwrote {path}");
}
