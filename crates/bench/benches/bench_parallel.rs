//! Regenerates `BENCH_parallel.json`: engine throughput (serial vs
//! parallel KASLR trials) and LSTM kernel timing (naive vs optimized).
//!
//! Writes to the path in `SEGSCOPE_BENCH_JSON` (default
//! `BENCH_parallel.json` in the current directory).

use segscope_bench::parallel_report::{measure, write_report};

fn main() {
    segscope_bench::header("Parallel engine + LSTM kernel performance");
    let (trials, epochs) = if segscope_bench::full_scale() {
        (32, 400)
    } else {
        (8, 100)
    };
    let report = measure(trials, epochs);
    println!(
        "engine: {} trials, {} threads: serial {:.2} trials/s, parallel {:.2} trials/s ({:.2}x), deterministic: {}",
        report.kaslr_engine.trials,
        report.kaslr_engine.parallel_threads,
        report.kaslr_engine.serial_trials_per_s,
        report.kaslr_engine.parallel_trials_per_s,
        report.kaslr_engine.speedup,
        report.kaslr_engine.deterministic,
    );
    println!(
        "lstm ({}x{} steps, {} hidden): naive {:.3} ms/epoch, optimized {:.3} ms/epoch ({:.2}x)",
        report.lstm_kernels.steps,
        report.lstm_kernels.input,
        report.lstm_kernels.hidden,
        report.lstm_kernels.naive_epoch_ms,
        report.lstm_kernels.optimized_epoch_ms,
        report.lstm_kernels.speedup,
    );
    println!("note: {}", report.note);
    assert!(
        report.kaslr_engine.deterministic,
        "serial and parallel runs must produce identical results"
    );
    assert!(
        report.lstm_kernels.speedup > 1.0,
        "optimized LSTM must beat the naive reference: {:.2}x",
        report.lstm_kernels.speedup
    );
    let path =
        std::env::var("SEGSCOPE_BENCH_JSON").unwrap_or_else(|_| "BENCH_parallel.json".to_string());
    write_report(&report, &path).expect("write report");
    println!("\nwrote {path}");
}
