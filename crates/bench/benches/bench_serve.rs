//! Regenerates `BENCH_serve.json`: streaming-serving session throughput
//! at batch capacities 1, 8, and 64 on the f64 reference classifier and
//! its i16-quantized variant, against a recycled single-session
//! baseline, plus post-training quantization accuracy on a Table
//! IV-style website-fingerprinting eval set.
//!
//! Writes to the path in `SEGSCOPE_BENCH_JSON` (default
//! `BENCH_serve.json` in the current directory). Set
//! `SEGSCOPE_BENCH_FULL=1` for the larger session count. The ≥3x
//! batched-vs-sequential gate arms only on multi-core hosts;
//! single-core hosts gate verdict identity and quantization accuracy
//! alone (same policy as `BENCH_campaign.json`).

use segscope_bench::serve_report::{
    build_workload, measure_batched, measure_quant_accuracy, measure_sequential, write_report,
    SequentialBaseline, ServeArm, ServeBenchReport, ServeWorkload,
};
use serve::{QuantScheme, QuantizedSeqClassifier, StepModel};

/// Runs the full arm set (sequential baseline + capacities 1/8/64) for
/// one precision, printing as it goes.
fn run_precision<M: StepModel + Sync>(
    model: &M,
    precision: &str,
    workload: &ServeWorkload,
    threads: usize,
    repeats: usize,
) -> (SequentialBaseline, Vec<ServeArm>) {
    let baseline = measure_sequential(model, precision, &workload.traces, repeats);
    println!(
        "sequential `{precision}`: {:8.0} sessions/s ({:.4}s), fnv {}",
        baseline.sessions_per_s, baseline.wall_s, baseline.verdict_fnv,
    );
    let mut arms = Vec::new();
    for capacity in [1usize, 8, 64] {
        let arm = measure_batched(
            model,
            precision,
            workload,
            capacity,
            threads,
            repeats,
            baseline.wall_s,
        );
        println!(
            "batched `{precision}` x{capacity:>2}: {:8.0} sessions/s ({:.4}s, {:.2}x), fnv {}",
            arm.sessions_per_s, arm.wall_s, arm.speedup, arm.verdict_fnv,
        );
        arms.push(arm);
    }
    (baseline, arms)
}

fn main() {
    segscope_bench::header("Streaming serving: cross-session batching, quantization");
    let full = segscope_bench::full_scale();
    let (sessions, repeats) = if full { (1024, 5) } else { (256, 3) };
    let threads = std::thread::available_parallelism().map_or(1, usize::from);

    // Train on 6 visits per site, hold out 13 per site so the accuracy
    // delta resolves close to the 1% gate granularity (104 eval
    // sequences on the quick 8-site scale).
    let workload = build_workload(sessions, 6, 13, 0x5EBE_CA4A);
    let i16_model = QuantizedSeqClassifier::quantize(&workload.model, QuantScheme::I16);
    println!(
        "workload: {} sessions x {} steps, {} eval sequences, {} host threads",
        sessions,
        workload.steps_per_session,
        workload.eval.len(),
        threads,
    );

    let (f64_baseline, f64_arms) =
        run_precision(&workload.model, "f64", &workload, threads, repeats);
    let (i16_baseline, i16_arms) = run_precision(&i16_model, "i16", &workload, threads, repeats);
    let sequential = vec![f64_baseline, i16_baseline];
    let arms: Vec<ServeArm> = f64_arms.into_iter().chain(i16_arms).collect();

    let mut quant = Vec::new();
    for scheme in [QuantScheme::I8, QuantScheme::I16] {
        let arm = measure_quant_accuracy(&workload.model, scheme, &workload.eval);
        println!(
            "quant `{}`: f64 {:.1}% vs quantized {:.1}% (delta {:.3}) on {} sequences",
            arm.scheme,
            arm.f64_accuracy * 100.0,
            arm.quant_accuracy * 100.0,
            arm.accuracy_delta,
            arm.eval_examples,
        );
        quant.push(arm);
    }

    let note = format!(
        "{} scale on a {}-thread host; wall-clock numbers are host-dependent, \
         the verdict-identity and accuracy invariants are not{}",
        if full { "full" } else { "quick" },
        threads,
        if threads > 1 {
            ""
        } else {
            "; single-core host, speedup gate disarmed"
        },
    );
    let report = ServeBenchReport {
        sessions,
        steps_per_session: workload.steps_per_session,
        arms,
        sequential,
        quant,
        threads,
        multi_core: threads > 1,
        full_scale: full,
        note,
    };
    report.validate().expect("serving invariants hold");

    let path =
        std::env::var("SEGSCOPE_BENCH_JSON").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    write_report(&report, &path).expect("write report");
    println!("\nwrote {path}");
}
