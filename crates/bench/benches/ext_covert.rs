//! Extension harness — the SegScope covert channel (paper Section V:
//! frequency-based covert channels). Sweeps the slot duration to map the
//! rate/error trade-off.

use segscope_attacks::covert::{bytes_to_bits, transmit, transmit_reliable, CovertConfig};
use segsim::Ps;

fn main() {
    segscope_bench::header("Extension: SegScope cross-core covert channel");
    let payload_bytes: &[u8] = if segscope_bench::full_scale() {
        b"The quick brown fox jumps over the lazy dog 0123456789"
    } else {
        b"COVERT CHANNEL SWEEP"
    };
    let bits = bytes_to_bits(payload_bytes);
    println!("payload: {} bits\n", bits.len());
    let widths = [12, 12, 12, 12];
    segscope_bench::print_row(
        &[
            "slot (ms)".into(),
            "raw bit/s".into(),
            "goodput".into(),
            "BER".into(),
        ],
        &widths,
    );
    // One parallel task per slot duration, each with a derived seed.
    let slots = [40u64, 20, 12, 8, 6];
    let sweep = exec::parallel_trials_auto(0xC0, slots.len(), |i, seed| {
        let config = CovertConfig {
            slot: Ps::from_ms(slots[i]),
            ..CovertConfig::slow()
        };
        let result = transmit(&config, &bits, seed);
        (config, result)
    });
    let mut best_clean_rate = 0.0f64;
    for (slot_ms, (config, result)) in slots.iter().zip(&sweep) {
        segscope_bench::print_row(
            &[
                slot_ms.to_string(),
                format!("{:.0}", config.raw_bps()),
                format!("{:.0}", result.goodput_bps),
                format!("{:.2}%", result.error_rate * 100.0),
            ],
            &widths,
        );
        if result.error_rate < 0.02 {
            best_clean_rate = best_clean_rate.max(result.goodput_bps);
        }
    }
    println!("\nbest near-clean raw rate: {best_clean_rate:.0} bit/s");

    let reliable = transmit_reliable(&CovertConfig::slow(), &bits, 3, 0xC1);
    println!(
        "3x repetition at 20 ms slots: {} errors, goodput {:.0} bit/s",
        reliable.errors, reliable.goodput_bps
    );
    assert_eq!(reliable.errors, 0, "repetition-coded channel must be clean");
    assert!(
        best_clean_rate >= 20.0,
        "channel should sustain tens of bit/s"
    );
    println!("\nshape check PASSED: slower slots are cleaner; coding removes residual errors.");
}
