//! Extension harness — keystroke monitoring (paper Section V, "other
//! security implications"). Not a numbered paper artifact: the paper
//! names keystroke monitoring as a SegScope application without
//! evaluating it; this harness quantifies what the probe delivers.

use rand::SeedableRng;
use segscope_attacks::keystroke::{
    identify_users, KeystrokeConfig, KeystrokeMonitor, TypistProfile,
};
use segsim::{Machine, MachineConfig, Ps};

fn main() {
    segscope_bench::header("Extension: keystroke monitoring via SegScope");
    let sessions = if segscope_bench::full_scale() { 20 } else { 8 };

    // Detection accuracy over several sessions.
    let mut exact = 0usize;
    let mut total_err = 0i64;
    for s in 0..sessions {
        let mut machine = Machine::new(MachineConfig::xiaomi_air13(), 0xE37 + s as u64);
        machine.spin(100_000_000);
        let profile = TypistProfile::for_user(s % 4);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0xE38 + s as u64);
        let start = machine.now() + Ps::from_ms(1_600);
        let session = profile.type_session(start, 30, &mut rng);
        let trace = KeystrokeMonitor::new().monitor(&mut machine, &session);
        let err = trace.detected_keys() as i64 - trace.actual_keys as i64;
        exact += usize::from(err == 0);
        total_err += err.abs();
    }
    println!(
        "keystroke-count recovery over {sessions} sessions of 30 keys: {exact} exact, \
         mean |error| {:.2} keys",
        total_err as f64 / sessions as f64
    );
    assert!(
        total_err as f64 / sessions as f64 <= 2.0,
        "detection error too high"
    );

    // Typist identification from rhythm alone.
    let result = identify_users(&KeystrokeConfig::quick());
    println!(
        "typist identification: {} over {} sessions from {} users (chance {})",
        segscope_bench::pct(result.accuracy),
        result.sessions,
        result.users,
        segscope_bench::pct(1.0 / result.users as f64)
    );
    assert!(result.accuracy > 1.6 / result.users as f64);
    println!("\nshape check PASSED: timings recovered clock-free; rhythm is identifying.");
}
