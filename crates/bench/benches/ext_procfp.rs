//! Extension harness — process fingerprinting (the paper's introduction
//! lists it among the interrupt side channels SegScope re-enables in
//! timer-constrained environments).

use segscope_attacks::procfp::{observe, run_experiment, AppClass, ProcFpConfig};
use segsim::Ps;

fn main() {
    segscope_bench::header("Extension: process fingerprinting via SegScope");
    // Show the raw feature separation first.
    let widths = [14, 10, 10, 10];
    segscope_bench::print_row(
        &["app".into(), "q10".into(), "q50".into(), "q90".into()],
        &widths,
    );
    for app in AppClass::ALL {
        let f = observe(app, 0x9F10, Ps::from_ms(400), 300);
        segscope_bench::print_row(
            &[
                app.label().into(),
                format!("{:.2}", f.q10),
                format!("{:.2}", f.q50),
                format!("{:.2}", f.q90),
            ],
            &widths,
        );
    }

    let config = if segscope_bench::full_scale() {
        ProcFpConfig {
            enroll: 6,
            test: 8,
            ..ProcFpConfig::quick()
        }
    } else {
        ProcFpConfig::quick()
    };
    let result = run_experiment(&config);
    println!(
        "\nidentification accuracy: {} over {} windows (chance 25%)",
        segscope_bench::pct(result.accuracy),
        result.windows
    );
    for (app, acc) in AppClass::ALL.iter().zip(&result.per_class) {
        println!("  {:<12} {}", app.label(), segscope_bench::pct(*acc));
    }
    assert!(result.accuracy >= 0.75, "accuracy {}", result.accuracy);
    println!("\nshape check PASSED: applications are identifiable from SegCnt quantiles alone.");
}
