//! Fig. 10 — the impact of `K` on SegCnt when *directly accessing* a
//! mapped vs unmapped kernel address (segment faults absorbed by a user
//! handler).
//!
//! Paper shape: at K = 1 the distributions overlap; at K = 1000 the
//! repeated accesses amplify the per-probe timing gap far past the
//! SegScope timer's noise floor, so the distributions separate cleanly.

use segscope_attacks::kaslr::{k_sweep_distributions, ProbeMethod};

fn median(xs: &[f64]) -> f64 {
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    s[s.len() / 2]
}

fn main() {
    segscope_bench::header("Fig. 10: SegCnt vs K, direct-access probing");
    let rounds = if segscope_bench::full_scale() { 60 } else { 20 };
    let ks: &[usize] = if segscope_bench::full_scale() {
        &[1, 10, 100, 1000]
    } else {
        &[1, 10, 100, 400]
    };
    println!("rounds per point: {rounds}\n");
    let widths = [8, 16, 16, 14];
    segscope_bench::print_row(
        &[
            "K".into(),
            "mapped (med)".into(),
            "unmapped (med)".into(),
            "gap".into(),
        ],
        &widths,
    );
    let mut gaps = Vec::new();
    for &k in ks {
        let (mapped, unmapped) =
            k_sweep_distributions(ProbeMethod::Access, k, rounds, 0xF16B).expect("probe works");
        let gap = median(&unmapped) - median(&mapped);
        segscope_bench::print_row(
            &[
                k.to_string(),
                format!("{:.0}", median(&mapped)),
                format!("{:.0}", median(&unmapped)),
                format!("{gap:.0}"),
            ],
            &widths,
        );
        gaps.push(gap);
        if k == *ks.last().expect("nonempty") {
            println!("\nK = {k} distributions (ticks):");
            println!("mapped:");
            segscope_bench::ascii_histogram(&mapped, 8, 40);
            println!("unmapped:");
            segscope_bench::ascii_histogram(&unmapped, 8, 40);
        }
    }
    assert!(
        gaps.last().expect("nonempty") > gaps.first().expect("nonempty"),
        "the gap must grow with K: {gaps:?}"
    );
    println!("\nshape check PASSED: gap amplifies with K (paper Fig. 10).");
}
