//! Fig. 12 — reading arbitrary application memory with Spectre-V1 +
//! Flush+Reload, timed by the SegScope timer.
//!
//! Paper shape: with ~200 amplification gadgets the hit/miss gap grows
//! to thousands of cycles; the candidate byte with the highest tail
//! SegCnt (fastest reload) is the secret, recovered with ~100 % success
//! at ~0.15 B/s.

use segscope_attacks::spectre::{leak_secret, SpectreConfig};

fn main() {
    segscope_bench::header("Fig. 12: Spectre-V1 + Flush+Reload via the SegScope timer");
    let (secret, config): (&[u8], SpectreConfig) = if segscope_bench::full_scale() {
        (b"SEGSCOPE", SpectreConfig::paper_default())
    } else {
        (b"SEG", SpectreConfig::quick())
    };
    println!(
        "secret: {:?}; {} gadget replicas; {} candidates\n",
        String::from_utf8_lossy(secret),
        config.gadgets,
        config.candidates
    );
    let result = leak_secret(secret, &config, 0xF16F).expect("probe works");

    let recovered: String = result
        .bytes
        .iter()
        .map(|b| {
            let c = b.guessed as char;
            if c.is_ascii_graphic() || c == ' ' {
                c
            } else {
                '?'
            }
        })
        .collect();
    println!(
        "recovered: {recovered:?}  success {}  rate {:.2} B/s (paper: 100%, 0.15 B/s)",
        segscope_bench::pct(result.success_rate),
        result.rate_bps
    );

    // Per-candidate view for the first byte (the figure itself).
    let leak = &result.bytes[0];
    let series = leak.fig12_series(0.0); // tail = -ticks, peak = fastest
    let mut ranked: Vec<(usize, f64)> = series.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("\ntop-8 candidates for byte 0 (higher = faster reload = cached):");
    let peak = ranked.first().map(|r| r.1).unwrap_or(1.0);
    for &(v, tail) in ranked.iter().take(8) {
        let c = v as u8 as char;
        let rel = (tail - ranked[7].1) / (peak - ranked[7].1).max(1e-9);
        let bar = "#".repeat((rel.clamp(0.0, 1.0) * 40.0) as usize);
        println!(
            "  {v:>3} ({}) {bar}",
            if c.is_ascii_graphic() { c } else { '.' }
        );
    }
    assert_eq!(leak.guessed, leak.actual, "byte 0 must be recovered");
    assert!(
        result.success_rate >= 2.0 / 3.0,
        "success rate {}",
        result.success_rate
    );
    println!("\nshape check PASSED: the secret byte has the clearest cached signature.");
}
