//! Fig. 3 — SegCnt is linearly proportional to CPU frequency.
//!
//! We probe interrupts while the frequency wanders (victim load steps
//! drive the governor up and down), record (frequency, SegCnt) pairs,
//! and report the Pearson correlation and the fitted line — the paper's
//! figure shows a clean linear relation with a few outliers.

use irq::time::Ps;
use segscope::SegProbe;
use segsim::{Machine, MachineConfig, StepFn};

fn main() {
    segscope_bench::header("Fig. 3: SegCnt vs CPU frequency");
    let probes = if segscope_bench::full_scale() {
        2_000
    } else {
        800
    };
    let mut machine = Machine::new(MachineConfig::lenovo_yangtian(), 0xF163);

    // Make the frequency wander across its range: a victim load staircase.
    let mut load = StepFn::zero();
    for step in 0..400u64 {
        let level = 0.5 + 0.5 * ((step as f64) * 0.37).sin();
        load.push(Ps::from_ms(step * 40), level);
    }
    machine.set_victim_load(load);
    machine.set_local_load(0.2); // the probe alone must not pin max turbo

    let mut probe = SegProbe::new();
    let mut points = Vec::with_capacity(probes);
    for _ in 0..probes {
        let sample = probe.probe_once(&mut machine).expect("probe works");
        let freq_ghz = machine.current_freq_khz() as f64 / 1e6;
        points.push((freq_ghz, sample.segcnt as f64));
    }

    // Pearson correlation and least-squares line.
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let (mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0);
    for &(x, y) in &points {
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
        sxy += (x - mx) * (y - my);
    }
    let r = sxy / (sxx.sqrt() * syy.sqrt()).max(1e-12);
    let slope = sxy / sxx.max(1e-12);
    let intercept = my - slope * mx;
    let fmin = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let fmax = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{} probes; observed frequency range {:.2}..{:.2} GHz",
        points.len(),
        fmin,
        fmax
    );
    println!("least-squares fit: SegCnt = {slope:.3e} x GHz + {intercept:.3e}");
    println!("Pearson r = {r:.4}");

    // Binned scatter, as a text rendering of the figure.
    println!("\nmean SegCnt by frequency bin:");
    let mut bins: Vec<Vec<f64>> = vec![Vec::new(); 10];
    for &(x, y) in &points {
        let b = (((x - fmin) / (fmax - fmin).max(1e-9)) * 10.0) as usize;
        bins[b.min(9)].push(y);
    }
    let peak = bins
        .iter()
        .map(|b| segscope::mean(b))
        .fold(f64::NEG_INFINITY, f64::max)
        .max(1.0);
    for (i, bin) in bins.iter().enumerate() {
        if bin.is_empty() {
            continue;
        }
        let f = fmin + (fmax - fmin) * (i as f64 + 0.5) / 10.0;
        let mean = segscope::mean(bin);
        let bar = "#".repeat((mean / peak * 50.0) as usize);
        println!("{f:>6.2} GHz | {mean:>12.0} {bar}");
    }
    assert!(
        r > 0.95,
        "Fig. 3 claim: SegCnt linearly tracks frequency (r = {r})"
    );
    println!(
        "\nshape check PASSED: r > 0.95 (paper: 'linearly proportional with a few outliers')."
    );
}
