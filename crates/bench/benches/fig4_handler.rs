//! Fig. 4 — the distribution of interrupt-handler time costs (`w`).
//!
//! The paper's eBPF measurement (1 M samples on the Lenovo Yangtian):
//! all costs below 6 µs, 90.7 % within 1.0–1.5 µs. We sample the same
//! model via the in-simulator ground truth while probing.

use irq::time::Ps;
use segscope::SegProbe;
use segsim::{Machine, MachineConfig};

fn main() {
    segscope_bench::header("Fig. 4: interrupt-handler cost distribution (w)");
    let target = if segscope_bench::full_scale() {
        1_000_000
    } else {
        100_000
    };

    // Sample the handler model through real deliveries (probe until the
    // ground-truth trace holds enough records), then top up with direct
    // model draws so the quick run still gets a smooth histogram.
    let mut machine = Machine::new(MachineConfig::lenovo_yangtian(), 0xF164);
    let mut probe = SegProbe::new();
    probe
        .probe_for(&mut machine, Ps::from_secs(4))
        .expect("probe works");
    let mut costs_us: Vec<f64> = machine
        .ground_truth()
        .records()
        .iter()
        .map(|r| r.handler_cost.as_us())
        .collect();
    let delivered = costs_us.len();
    let model = machine.config().handler_model.clone();
    while costs_us.len() < target {
        let w = model.sample(irq::InterruptKind::Timer, machine.rng_mut());
        costs_us.push(w.as_us());
    }
    println!(
        "{} samples ({} from delivered interrupts, rest direct model draws)\n",
        costs_us.len(),
        delivered
    );
    segscope_bench::ascii_histogram(&costs_us, 24, 60);

    let max = costs_us.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let in_band = costs_us
        .iter()
        .filter(|&&w| (1.0..=1.5).contains(&w))
        .count();
    let frac = in_band as f64 / costs_us.len() as f64;
    println!("\nmax cost: {max:.2} us (paper: < 6 us)");
    println!(
        "fraction in [1.0, 1.5] us: {:.1}% (paper: 90.7%)",
        frac * 100.0
    );
    assert!(max < 6.0 + 1e-9, "no handler may exceed 6 us");
    assert!((0.85..0.95).contains(&frac), "in-band fraction {frac}");
    println!("\nshape check PASSED.");
}
