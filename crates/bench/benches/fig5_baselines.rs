//! Fig. 5 — interrupted vs uninterrupted measurement distributions for
//! the two timer-based probing baselines.
//!
//! Paper shape: for both techniques the two distributions overlap enough
//! that no single threshold separates them reliably — the timestamp-jump
//! prober's clean tail crosses any useful threshold at scale (false
//! positives), and the loop-count prober's window counters smear into
//! each other.

use segscope::{LoopCountProber, TsJumpProber};
use segsim::{Machine, MachineConfig};

fn main() {
    segscope_bench::header("Fig. 5a: timestamp-jump deltas (Schwarz et al.)");
    let scale = if segscope_bench::full_scale() { 4 } else { 1 };
    let mut machine = Machine::new(MachineConfig::lenovo_yangtian(), 0xF165);
    let prober = TsJumpProber::paper_default();
    // The paper plots 1000 + 1000; clean threshold-crossers are rare
    // (~2*tail_prob per draw), so sample the clean class at volume to
    // expose the tail that causes Table II's false positives.
    let samples = prober
        .sample_measurements(&mut machine, 2_000_000 * scale, 1_000 * scale)
        .expect("rdtsc available");
    let clean: Vec<f64> = samples
        .iter()
        .filter(|s| !s.interrupted)
        .map(|s| s.delta as f64)
        .collect();
    let dirty: Vec<f64> = samples
        .iter()
        .filter(|s| s.interrupted)
        .map(|s| s.delta as f64)
        .collect();
    segscope_bench::summary("uninterrupted deltas", &clean);
    segscope_bench::summary("interrupted   deltas", &dirty);
    let threshold = prober.threshold as f64;
    let clean_over = clean.iter().filter(|&&d| d > threshold).count();
    let dirty_under = dirty.iter().filter(|&&d| d <= threshold).count();
    println!(
        "threshold {threshold}: {clean_over} of {} clean measurements cross it (false positives); \
         {dirty_under} interrupted ones stay under it",
        clean.len()
    );
    assert!(
        clean_over > 0,
        "the clean tail must cross the threshold at scale"
    );
    assert_eq!(dirty_under, 0, "interrupted deltas dwarf the threshold");
    println!("\ninterrupted-delta histogram (TSC cycles):");
    segscope_bench::ascii_histogram(&dirty, 12, 50);

    segscope_bench::header("Fig. 5b: loop-counter window values (Lipp et al.)");
    let mut machine = Machine::new(MachineConfig::lenovo_yangtian(), 0xF166);
    machine.spin(400_000_000); // warm up
    let prober = LoopCountProber::paper_default();
    let windows = prober
        .sample_measurements(&mut machine, 1_500 * scale)
        .expect("clock available");
    let clean: Vec<f64> = windows
        .iter()
        .filter(|s| !s.interrupted)
        .map(|s| s.counter as f64)
        .collect();
    let dirty: Vec<f64> = windows
        .iter()
        .filter(|s| s.interrupted)
        .map(|s| s.counter as f64)
        .collect();
    segscope_bench::summary("uninterrupted windows", &clean);
    segscope_bench::summary("interrupted   windows", &dirty);
    if !clean.is_empty() && !dirty.is_empty() {
        let overlap_hi = dirty.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let overlap_lo = clean.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "overlap check: max(interrupted) = {overlap_hi:.0} vs min(clean) = {overlap_lo:.0} -> {}",
            if overlap_hi > overlap_lo {
                "distributions OVERLAP (no perfect threshold exists)"
            } else {
                "separable at this scale"
            }
        );
    }
    println!("\ninterrupted-window histogram (counter values):");
    segscope_bench::ascii_histogram(&dirty, 12, 50);
    println!(
        "\npaper shape: threshold detection is unreliable for both baselines, while SegScope\n\
         needs no threshold at all (the footprint is exact)."
    );
}
