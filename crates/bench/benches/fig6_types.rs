//! Fig. 6 — the impact of interrupt type on SegCnt.
//!
//! Paper shape: timer interrupts dominate the probed population and
//! their SegCnt concentrates tightly (fixed period); rescheduling and
//! performance-monitoring interrupts land mid-interval, so their SegCnt
//! scatters low — a clear statistical separation that the Z-score filter
//! (and the SegScope timer built on it) exploits.

use irq::InterruptKind;
use segscope::{KindHistogram, SegProbe, TimerEdgeClassifier};
use segsim::{Machine, MachineConfig};

fn main() {
    segscope_bench::header("Fig. 6: SegCnt distribution per interrupt kind");
    let probes = if segscope_bench::full_scale() {
        20_000
    } else {
        4_000
    };
    let mut config = MachineConfig::lenovo_yangtian();
    // Enough non-timer activity to populate the other classes (the
    // paper's trace had ~1e6 timer vs ~1e3 resched/PMI; we boost the
    // rates so the quick run still shows the side classes).
    config.pmi_rate_hz = 4.0;
    config.resched_rate_hz = 4.0;
    let mut machine = Machine::new(config, 0xF167);
    machine.spin(400_000_000);

    let mut probe = SegProbe::new();
    let samples = probe.probe_n(&mut machine, probes).expect("probe works");
    let hist = KindHistogram::from_samples(&samples);
    println!("{} probed intervals\n", samples.len());
    let widths = [10, 8, 14, 14, 10];
    segscope_bench::print_row(
        &[
            "kind".into(),
            "n".into(),
            "mean SegCnt".into(),
            "std".into(),
            "rel-std".into(),
        ],
        &widths,
    );
    for (kind, (n, mean, std)) in &hist.by_kind {
        segscope_bench::print_row(
            &[
                kind.to_string(),
                n.to_string(),
                format!("{mean:.0}"),
                format!("{std:.0}"),
                format!("{:.1}%", std / mean * 100.0),
            ],
            &widths,
        );
    }
    assert_eq!(hist.dominant_kind(), Some(InterruptKind::Timer));

    // Timer-edge classifier quality (the basis of the SegScope timer).
    let segcnts: Vec<f64> = samples.iter().map(|s| s.segcnt as f64).collect();
    let classifier = TimerEdgeClassifier::fit(&segcnts);
    let (tpr, fpr) = classifier.evaluate(&samples);
    println!(
        "\nZ-score timer-edge classifier: retains {:.1}% of timer samples, {:.1}% of others",
        tpr * 100.0,
        fpr * 100.0
    );
    assert!(
        tpr > 0.9 && tpr > fpr + 0.5,
        "separation check (tpr {tpr}, fpr {fpr})"
    );

    println!("\ntimer SegCnt histogram:");
    let timer: Vec<f64> = samples
        .iter()
        .filter(|s| s.kind == InterruptKind::Timer)
        .map(|s| s.segcnt as f64)
        .collect();
    segscope_bench::ascii_histogram(&timer, 10, 50);
    println!("\nnon-timer SegCnt histogram:");
    let other: Vec<f64> = samples
        .iter()
        .filter(|s| s.kind != InterruptKind::Timer)
        .map(|s| s.segcnt as f64)
        .collect();
    segscope_bench::ascii_histogram(&other, 10, 50);
    println!("\nshape check PASSED: timer concentrated, others dispersed low.");
}
