//! Fig. 8 — the distribution of SegCnt when the CIRCL challenge
//! ciphertext triggers an anomalous zero (`m_i != m_{i-1}`) or not.
//!
//! Paper shape: the anomalous-zero class runs at a higher frequency
//! (less power drawn), so its SegCnt distribution sits clearly above the
//! other class — the separation that drives the key extraction.

use segscope_attacks::circl::{run_extraction, CirclConfig};

fn main() {
    segscope_bench::header("Fig. 8: CIRCL SegCnt distributions + key extraction");
    let config = if segscope_bench::full_scale() {
        CirclConfig::paper()
    } else {
        CirclConfig::quick()
    };
    println!(
        "key: {} bits; {} SegCnt samples per challenge\n",
        config.key_bits, config.samples_per_challenge
    );
    let result = run_extraction(&config);

    let hi: Vec<f64> = result
        .observations
        .iter()
        .filter(|o| o.anomalous)
        .map(|o| o.mean_segcnt)
        .collect();
    let lo: Vec<f64> = result
        .observations
        .iter()
        .filter(|o| !o.anomalous)
        .map(|o| o.mean_segcnt)
        .collect();
    segscope_bench::summary("anomalous zero   (m_i != m_{i-1})", &hi);
    segscope_bench::summary("no anomalous zero (m_i = m_{i-1})", &lo);

    println!("\nanomalous-zero class histogram:");
    segscope_bench::ascii_histogram(&hi, 10, 50);
    println!("\nno-anomalous-zero class histogram:");
    segscope_bench::ascii_histogram(&lo, 10, 50);

    println!(
        "\nper-bit distinguishing accuracy: {}   key recovered: {}",
        segscope_bench::pct(result.bit_accuracy),
        result.recovered
    );
    assert!(
        segscope::mean(&hi) > segscope::mean(&lo),
        "anomalous-zero challenges must run at higher SegCnt"
    );
    assert!(
        result.bit_accuracy > 0.9,
        "bit accuracy {}",
        result.bit_accuracy
    );
    assert!(result.recovered, "the key should be recovered end to end");
    println!("\nshape check PASSED: classes separated; key extracted (search space 2).");
}
