//! Fig. 9 (and Table VI) — error rate of the Spectral attack vs `umwait`
//! timeout, with and without SegScope filtering.
//!
//! Paper shape: the original Spectral's error rate grows with the
//! timeout (more interrupts alias to cache-line writes), approaching 1 %
//! even on an idle system; SegScope filtering removes the interrupt
//! errors almost entirely (56× reduction at the default timeout).

use segscope_attacks::spectral::{run_attack, SpectralConfig, SpectralMode};
use specsim::{ArchState, WakeCause};

fn main() {
    segscope_bench::header("Table VI: architectural states per wake cause");
    let widths = [18, 12, 22];
    segscope_bench::print_row(
        &[
            "wake cause".into(),
            "EFLAGS.CF".into(),
            "selector preserved".into(),
        ],
        &widths,
    );
    for (cause, label) in [
        (WakeCause::Timeout, "timeout"),
        (WakeCause::CachelineWrite, "cacheline write"),
        (WakeCause::Interrupt, "interrupt"),
    ] {
        let s = ArchState::of(cause);
        segscope_bench::print_row(
            &[
                label.into(),
                u8::from(s.carry_flag).to_string(),
                u8::from(s.selector_preserved).to_string(),
            ],
            &widths,
        );
    }

    segscope_bench::header("Fig. 9: Spectral error rate vs umwait timeout");
    let bits = if segscope_bench::full_scale() {
        60_000
    } else {
        15_000
    };
    println!("bits per point: {bits}\n");
    let widths = [10, 14, 14, 12];
    segscope_bench::print_row(
        &[
            "timeout".into(),
            "original".into(),
            "enhanced".into(),
            "discarded".into(),
        ],
        &widths,
    );
    let mut default_pair = (0.0, 0.0);
    for timeout in [20_000u64, 60_000, 100_000, 140_000, 200_000] {
        let cfg = SpectralConfig::paper_default().with_timeout(timeout);
        let orig = run_attack(&cfg, SpectralMode::Original, bits, 0xF169);
        let enh = run_attack(&cfg, SpectralMode::Enhanced, bits, 0xF169);
        segscope_bench::print_row(
            &[
                timeout.to_string(),
                format!("{:.4}%", orig.error_rate * 100.0),
                format!("{:.4}%", enh.error_rate * 100.0),
                enh.discarded.to_string(),
            ],
            &widths,
        );
        if timeout == 100_000 {
            default_pair = (orig.error_rate, enh.error_rate);
        }
    }
    let orig100 = run_attack(
        &SpectralConfig::paper_default(),
        SpectralMode::Original,
        bits,
        0xF16A,
    );
    println!(
        "\nleakage rate at default timeout: {:.0} bit/s (paper: ~53,000 bit/s)",
        orig100.leak_rate_bps
    );
    println!(
        "error-rate reduction at 100k cycles: {}x (paper: 56x, 0.56% -> 0.01%)",
        if default_pair.1 > 0.0 {
            format!("{:.0}", default_pair.0 / default_pair.1)
        } else {
            format!(">{:.0}", default_pair.0 * bits as f64)
        }
    );
    assert!(
        default_pair.1 < default_pair.0 / 4.0,
        "enhanced must reduce errors by well over 4x: {default_pair:?}"
    );
    println!("\nshape check PASSED: original error grows with timeout; enhanced stays near zero.");
}
