//! Criterion performance benches for the simulator's hot paths: probing
//! throughput, baseline probing, guarded measurements, the cache
//! hierarchy, the parallel experiment engine, and the optimized LSTM
//! kernels. These guard against performance regressions in the substrate
//! (they are about *host* performance, not paper results).

use criterion::{criterion_group, criterion_main, Criterion};
use irq::time::Ps;
use nnet::reference::NaiveLstm;
use nnet::{AdamConfig, Lstm};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use segscope::{InterruptGuard, SegProbe};
use segscope_attacks::kaslr::{run_trials, KaslrConfig};
use segsim::{Machine, MachineConfig};
use std::hint::black_box;

fn bench_probe(c: &mut Criterion) {
    c.bench_function("segscope_probe_100_interrupts", |b| {
        let mut machine = Machine::new(MachineConfig::xiaomi_air13(), 1);
        let mut probe = SegProbe::new();
        b.iter(|| {
            let samples = probe.probe_n(&mut machine, 100).expect("probe works");
            black_box(samples.len())
        });
    });
}

fn bench_user_span(c: &mut Criterion) {
    c.bench_function("run_user_until_one_tick", |b| {
        let mut machine = Machine::new(MachineConfig::xiaomi_air13(), 2);
        b.iter(|| black_box(machine.run_user_until(Ps::MAX).cycles));
    });
}

fn bench_guard(c: &mut Criterion) {
    c.bench_function("interrupt_guard_round_trip", |b| {
        let mut machine = Machine::new(MachineConfig::xiaomi_air13(), 3);
        b.iter(|| {
            let guard = InterruptGuard::arm(&mut machine).expect("arm");
            machine.spin(500);
            black_box(guard.finish(&mut machine))
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("memory_hierarchy_access_mixed", |b| {
        let mut mem = memsim::MemoryHierarchy::default();
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(0x1740) & 0xf_ffff;
            black_box(mem.access(addr).cycles)
        });
    });
}

/// Serial (1 thread) vs parallel (`SEGSCOPE_THREADS` / all cores) fan-out
/// of independent KASLR trials through the `exec` engine. On a 1-CPU host
/// the two are expected to tie; on a multicore host the parallel variant
/// should approach a linear speedup.
fn bench_kaslr_trials(c: &mut Criterion) {
    let machine_cfg = MachineConfig::lenovo_yangtian();
    let config = KaslrConfig {
        slots: 64,
        c: 1,
        k: 16,
        ..KaslrConfig::paper_default()
    };
    let trials = 8;
    c.bench_function("kaslr_trials_serial", |b| {
        b.iter(|| {
            let results = run_trials(&machine_cfg, &config, 0xBE7C, trials, Some(1));
            black_box(results.len())
        });
    });
    c.bench_function("kaslr_trials_parallel", |b| {
        b.iter(|| {
            let results = run_trials(&machine_cfg, &config, 0xBE7C, trials, None);
            black_box(results.len())
        });
    });
}

fn lstm_epoch_data(steps: usize, input: usize) -> Vec<Vec<f32>> {
    (0..steps)
        .map(|t| {
            (0..input)
                .map(|k| ((t * input + k) as f32 * 0.13).sin())
                .collect()
        })
        .collect()
}

/// Old (naive, per-timestep-allocating) vs new (flat-trace, fused-gate)
/// LSTM forward+backward+update epoch at the paper's model size
/// (32 hidden units).
fn bench_lstm_epoch(c: &mut Criterion) {
    let xs = lstm_epoch_data(64, 8);
    let dh_last = vec![1.0f32; 32];
    c.bench_function("lstm_epoch_naive", |b| {
        let mut rng = SmallRng::seed_from_u64(0xE0);
        let mut lstm = NaiveLstm::new(8, 32, &mut rng, AdamConfig::default());
        let mut dh = vec![vec![0.0f32; 32]; xs.len()];
        dh[xs.len() - 1] = dh_last.clone();
        b.iter(|| {
            let trace = lstm.forward(&xs);
            lstm.backward(&trace, &dh);
            lstm.apply_grads(1);
            black_box(trace.len())
        });
    });
    c.bench_function("lstm_epoch_optimized", |b| {
        let mut rng = SmallRng::seed_from_u64(0xE0);
        let mut lstm = Lstm::new(8, 32, &mut rng, AdamConfig::default());
        b.iter(|| {
            let trace = lstm.forward(&xs);
            lstm.backward_last(&trace, &dh_last);
            lstm.apply_grads(1);
            black_box(trace.len())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_probe, bench_user_span, bench_guard, bench_cache,
        bench_kaslr_trials, bench_lstm_epoch
}
criterion_main!(benches);
