//! Criterion performance benches for the simulator's hot paths: probing
//! throughput, baseline probing, guarded measurements, and the cache
//! hierarchy. These guard against performance regressions in the
//! substrate (they are about *host* performance, not paper results).

use criterion::{criterion_group, criterion_main, Criterion};
use irq::time::Ps;
use segscope::{InterruptGuard, SegProbe};
use segsim::{Machine, MachineConfig};
use std::hint::black_box;

fn bench_probe(c: &mut Criterion) {
    c.bench_function("segscope_probe_100_interrupts", |b| {
        let mut machine = Machine::new(MachineConfig::xiaomi_air13(), 1);
        let mut probe = SegProbe::new();
        b.iter(|| {
            let samples = probe.probe_n(&mut machine, 100).expect("probe works");
            black_box(samples.len())
        });
    });
}

fn bench_user_span(c: &mut Criterion) {
    c.bench_function("run_user_until_one_tick", |b| {
        let mut machine = Machine::new(MachineConfig::xiaomi_air13(), 2);
        b.iter(|| black_box(machine.run_user_until(Ps::MAX).cycles));
    });
}

fn bench_guard(c: &mut Criterion) {
    c.bench_function("interrupt_guard_round_trip", |b| {
        let mut machine = Machine::new(MachineConfig::xiaomi_air13(), 3);
        b.iter(|| {
            let guard = InterruptGuard::arm(&mut machine).expect("arm");
            machine.spin(500);
            black_box(guard.finish(&mut machine))
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("memory_hierarchy_access_mixed", |b| {
        let mut mem = memsim::MemoryHierarchy::default();
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(0x1740) & 0xf_ffff;
            black_box(mem.access(addr).cycles)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_probe, bench_user_span, bench_guard, bench_cache
}
criterion_main!(benches);
