//! Table II — a comparison of SegScope and the timer-based probing
//! techniques at HZ ∈ {100, 250, 1000} on an isolated idle core.
//!
//! Paper shape to reproduce: SegScope counts ≈ 10·HZ + 3 with tiny
//! variance; the timestamp-jump prober overcounts (false positives) with
//! large variance; the loop-counting prober saturates at 2000 (its 5 ms
//! sampling caps detection at 200/s).

use irq::time::Ps;
use segscope::{LoopCountProber, SegProbe, TsJumpProber};
use segsim::{Machine, MachineConfig};

fn mean_std(xs: &[f64]) -> (f64, f64) {
    (segscope::mean(xs), segscope::std_dev(xs))
}

fn make_machine(hz: f64, seed: u64) -> Machine {
    // isolcpus: no co-resident task, only the timer + ~0.3/s PMIs. The
    // governor is warmed to steady state before any technique runs, as
    // on a real machine that has been executing the spinning prober.
    let mut machine = Machine::new(MachineConfig::lenovo_yangtian().with_hz(hz), seed);
    machine.spin(400_000_000);
    machine.ground_truth_mut().clear();
    machine
}

fn main() {
    segscope_bench::header("Table II: probed interrupts in 10 s (isolated core)");
    let reps = if segscope_bench::full_scale() { 30 } else { 8 };
    let duration = Ps::from_secs(10);
    println!("reps per cell: {reps}; baseline: 10*HZ timer ticks + ~3 PMIs\n");
    let widths = [20, 18, 18, 18];
    segscope_bench::print_row(
        &[
            "method".into(),
            "HZ=100".into(),
            "HZ=250".into(),
            "HZ=1000".into(),
        ],
        &widths,
    );

    // --- SegScope: exact, threshold-free ---
    let mut cells = vec!["SegScope".to_owned()];
    for hz in [100.0, 250.0, 1000.0] {
        let counts: Vec<f64> = exec::parallel_trials_auto(0x7AB2, reps, |_r, seed| {
            let mut m = make_machine(hz, seed);
            let mut probe = SegProbe::new();
            probe
                .probe_for(&mut m, duration)
                .expect("probe works")
                .len() as f64
        });
        let (mu, sd) = mean_std(&counts);
        cells.push(segscope_bench::pm(mu, sd));
    }
    segscope_bench::print_row(&cells, &widths);

    // --- Schwarz et al. (timestamp jumps, threshold 1000 cycles) ---
    let mut cells = vec!["Schwarz et al.".to_owned()];
    for hz in [100.0, 250.0, 1000.0] {
        let counts: Vec<f64> = exec::parallel_trials_auto(0x7AB3, reps, |_r, seed| {
            let mut m = make_machine(hz, seed);
            TsJumpProber::paper_default()
                .probe_for(&mut m, duration)
                .expect("rdtsc available") as f64
        });
        let (mu, sd) = mean_std(&counts);
        cells.push(segscope_bench::pm(mu, sd));
    }
    segscope_bench::print_row(&cells, &widths);

    // --- Lipp et al. (loop counting sampled every 5 ms) ---
    let mut cells = vec!["Lipp et al.".to_owned()];
    for hz in [100.0, 250.0, 1000.0] {
        let counts: Vec<f64> = exec::parallel_trials_auto(0x7AB4, reps, |_r, seed| {
            let mut m = make_machine(hz, seed);
            let mut prober = LoopCountProber::paper_default();
            prober.calibrate(&mut m, 200).expect("clock available");
            prober.probe_for(&mut m, duration).expect("clock available") as f64
        });
        let (mu, sd) = mean_std(&counts);
        cells.push(segscope_bench::pm(mu, sd));
    }
    segscope_bench::print_row(&cells, &widths);

    println!("\npaper Table II:");
    segscope_bench::print_row(
        &[
            "SegScope".into(),
            "1003.1 ± 0.3".into(),
            "2503.7 ± 0.6".into(),
            "10003.1 ± 0.4".into(),
        ],
        &widths,
    );
    segscope_bench::print_row(
        &[
            "Schwarz et al.".into(),
            "1170.5 ± 51.1".into(),
            "2740.3 ± 62.7".into(),
            "10224.6 ± 52.3".into(),
        ],
        &widths,
    );
    segscope_bench::print_row(
        &[
            "Lipp et al.".into(),
            "1038.8 ± 20.9".into(),
            "2000 ± 0".into(),
            "2000 ± 0".into(),
        ],
        &widths,
    );
    println!(
        "\nshape checks: SegScope ≈ 10·HZ + 3 exactly; Schwarz overcounts; Lipp caps at 2000 for HZ ≥ 250."
    );
}
