//! Table III — SegScope-based timer vs the optimized counting thread,
//! with the native timestamp counter (`rdtsc`/`rdpru`) as baseline.
//!
//! *Granularity* = timer increments per TSC cycle across timer-interrupt
//! intervals (Z-score filtered). *Stability* = the standard deviation (in
//! TSC cycles) of repeatedly timing a fixed 1 M-cycle workload.
//!
//! Paper shape: both software timers reach rdtsc-level granularity
//! (~0.5–1.6 increments/cycle) but are orders of magnitude less stable;
//! the counting thread degrades badly on the virtualized cloud machines
//! while SegScope stays at the same order of magnitude everywhere.

use segscope::{CountingThreadTimer, Denoise, SegProbe, SegTimer, ZScoreFilter};
use segsim::{Machine, MachineConfig};

struct Row {
    machine: String,
    seg_gran: f64,
    seg_std: f64,
    ct_gran: f64,
    ct_std: f64,
    rdtsc_std: f64,
    timer_name: &'static str,
}

/// The fixed workload: loop on the hi-res timestamp until 1 M TSC cycles
/// elapsed (the paper's attacker-controlled code).
fn workload(m: &mut Machine) {
    let t0 = m.rdtsc().expect("baseline machine allows rdtsc");
    while m.rdtsc().expect("rdtsc") - t0 < 1_000_000 {
        m.spin(300);
    }
}

fn measure(config: MachineConfig, seed: u64, intervals: usize, stab_reps: usize) -> Row {
    let timer_name = match config.vendor {
        segsim::Vendor::Intel => "rdtsc",
        segsim::Vendor::Amd => "rdpru",
    };
    let machine_name = config.name.clone();
    let mut m = Machine::new(config, seed);
    m.spin(800_000_000); // warm the governor to steady state

    // --- Granularity: timer increments per TSC cycle over intervals. ---
    let mut probe = SegProbe::new();
    let mut seg_ratio = Vec::with_capacity(intervals);
    let mut ct_ratio = Vec::with_capacity(intervals);
    for _ in 0..intervals {
        let ct0 = m.counting_thread_read();
        let t0 = m.rdtsc().expect("rdtsc");
        let sample = probe.probe_once(&mut m).expect("probe");
        let t1 = m.rdtsc().expect("rdtsc");
        let ct1 = m.counting_thread_read();
        let cycles = (t1 - t0) as f64;
        if cycles > 0.0 {
            seg_ratio.push(sample.segcnt as f64 / cycles);
            ct_ratio.push((ct1 - ct0) as f64 / cycles);
        }
    }
    let keep = |xs: &[f64]| ZScoreFilter::fit_iterative(xs, 2.0, 8).filter(xs);
    let seg_gran = segscope::mean(&keep(&seg_ratio));
    let ct_gran = segscope::mean(&keep(&ct_ratio));

    // --- Stability: std (cycles) of timing a fixed 1 M-cycle workload. ---
    let mut timer = SegTimer::calibrate(&mut m, 150, Denoise::ZScore).expect("calibrate");
    let seg = timer.measure(&mut m, stab_reps, workload).expect("measure");
    let seg_std = seg.std_ticks / seg_gran.max(1e-9);

    let mut ct_samples = Vec::with_capacity(stab_reps);
    for _ in 0..stab_reps {
        let (_, delta) = CountingThreadTimer::time(&mut m, workload);
        ct_samples.push(delta as f64);
    }
    let ct_kept = keep(&ct_samples);
    let ct_std = segscope::std_dev(&ct_kept) / ct_gran.max(1e-9);

    let mut native = Vec::with_capacity(stab_reps);
    for _ in 0..stab_reps {
        let t0 = m.rdtsc().expect("rdtsc");
        workload(&mut m);
        let t1 = m.rdtsc().expect("rdtsc");
        native.push((t1 - t0) as f64);
    }
    let rdtsc_std = segscope::std_dev(&keep(&native));

    Row {
        machine: machine_name,
        seg_gran,
        seg_std,
        ct_gran,
        ct_std,
        rdtsc_std,
        timer_name,
    }
}

fn main() {
    segscope_bench::header("Table III: SegScope timer vs counting thread vs native TSC");
    let (intervals, stab_reps) = if segscope_bench::full_scale() {
        (1_000, 400)
    } else {
        (250, 80)
    };
    println!("intervals for granularity: {intervals}; stability reps: {stab_reps}\n");
    let widths = [44, 10, 14, 10, 14, 10];
    segscope_bench::print_row(
        &[
            "machine".into(),
            "seg gran".into(),
            "seg std(cy)".into(),
            "ct gran".into(),
            "ct std(cy)".into(),
            "tsc std".into(),
        ],
        &widths,
    );
    // Table III covers the Table I machines minus the Savior (reserved
    // for Spectral in the paper).
    let machines = [
        MachineConfig::xiaomi_air13(),
        MachineConfig::lenovo_yangtian(),
        MachineConfig::honor_magicbook(),
        MachineConfig::amazon_t2_large(),
        MachineConfig::amazon_c5_large(),
    ];
    let mut gsum = (0.0, 0.0);
    let mut ssum = (0.0, 0.0, 0.0);
    for (i, config) in machines.into_iter().enumerate() {
        let row = measure(config, 0x7AB3_3000 + i as u64, intervals, stab_reps);
        segscope_bench::print_row(
            &[
                format!("{} [{}]", row.machine, row.timer_name),
                format!("{:.2}", row.seg_gran),
                format!("{:.1}", row.seg_std),
                format!("{:.2}", row.ct_gran),
                format!("{:.1}", row.ct_std),
                format!("{:.1}", row.rdtsc_std),
            ],
            &widths,
        );
        gsum.0 += row.seg_gran;
        gsum.1 += row.ct_gran;
        ssum.0 += row.seg_std;
        ssum.1 += row.ct_std;
        ssum.2 += row.rdtsc_std;
    }
    segscope_bench::print_row(
        &[
            "AVERAGE".into(),
            format!("{:.2}", gsum.0 / 5.0),
            format!("{:.1}", ssum.0 / 5.0),
            format!("{:.2}", gsum.1 / 5.0),
            format!("{:.1}", ssum.1 / 5.0),
            format!("{:.1}", ssum.2 / 5.0),
        ],
        &widths,
    );
    println!(
        "\npaper Table III averages: SegScope gran 1.29, std 4011.2; counting thread gran 0.85,\n\
         std 7163.0; rdtsc/rdpru std 10.1. Shape: software timers reach ~cycle-level\n\
         granularity with thousands-of-cycles stability; the native TSC std is ~10 cycles;\n\
         the counting thread collapses on the cloud instances while SegScope does not."
    );
}
