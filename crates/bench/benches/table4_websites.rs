//! Table IV — website fingerprinting accuracy across browsers and
//! system settings.
//!
//! Paper shape: top-1 well above 80 % in every setting, top-5 near
//! saturation; Tor Browser lower than Chrome; disabling frequency
//! scaling or hyper-threading helps slightly. (Scale substitution: the
//! paper's 95 sites × 100 traces × 5000-sample traces are reduced here —
//! chance level is printed so the margin over chance remains
//! comparable.)

use segscope_attacks::website::{run_experiment, Browser, Setting, WebsiteFpConfig};

fn main() {
    segscope_bench::header("Table IV: website fingerprinting (10-fold CV in the paper)");
    let full = segscope_bench::full_scale();
    let widths = [28, 14, 14, 14, 14];
    segscope_bench::print_row(
        &[
            "setting".into(),
            "Chrome top-1".into(),
            "Chrome top-5".into(),
            "Tor top-1".into(),
            "Tor top-5".into(),
        ],
        &widths,
    );
    let settings: &[Setting] = if full {
        &Setting::ALL
    } else {
        &[Setting::Default, Setting::DifferentCores]
    };
    for &setting in settings {
        let mut cells = vec![setting.label().to_owned()];
        for browser in [Browser::Chrome, Browser::Tor] {
            let config = if full {
                WebsiteFpConfig::bench(browser, setting)
            } else {
                WebsiteFpConfig::quick(browser, setting)
            };
            let result = run_experiment(&config);
            cells.push(segscope_bench::pct(result.top1));
            cells.push(segscope_bench::pct(result.top5));
            if browser == Browser::Tor {
                // Shape assertions per cell pair would be noisy at quick
                // scale; assert the headline margins after the Default row.
            }
        }
        segscope_bench::print_row(&cells, &widths);
    }
    let chance = if full {
        1.0 / WebsiteFpConfig::bench(Browser::Chrome, Setting::Default).n_sites as f64
    } else {
        1.0 / WebsiteFpConfig::quick(Browser::Chrome, Setting::Default).n_sites as f64
    };
    println!("\nchance level: {}", segscope_bench::pct(chance));
    println!(
        "paper Table IV (default): Chrome 92.4% / 98.4%, Tor 87.4% / 97.3% over 95 sites \
         (chance 1.1%)."
    );

    // Headline shape check on the default setting.
    let chrome = run_experiment(&if full {
        WebsiteFpConfig::bench(Browser::Chrome, Setting::Default)
    } else {
        WebsiteFpConfig::quick(Browser::Chrome, Setting::Default)
    });
    assert!(
        chrome.top1 > 4.0 * chance,
        "Chrome top-1 {} should dwarf chance {}",
        chrome.top1,
        chance
    );
    assert!(chrome.top5 >= chrome.top1);
    println!("\nshape check PASSED: top-1 far above chance; top-5 >= top-1.");
}
