//! Table V — DNN layer-sequence recovery: per-class Segment Accuracy
//! (SA) and Levenshtein Distance Accuracy (LDA).
//!
//! Paper shape: overall SA ~97.7 % with compute-intensive layers (Conv)
//! far easier than short/light layers (ReLU, AvgPool, Linear), and LDA
//! around 87 % across classes. (Scale substitution: 2000 train / 500
//! test architectures reduced to dozens; the quick run's BiLSTM is
//! smaller, so absolute SA is lower while the class ordering holds.)

use segscope_attacks::dnnsteal::{run_experiment, DnnStealConfig, LayerType};

fn main() {
    segscope_bench::header("Table V: DNN layer classification (SA per class, LDA)");
    let config = if segscope_bench::full_scale() {
        DnnStealConfig::bench()
    } else {
        DnnStealConfig::quick()
    };
    println!(
        "train models: {}, test models: {}, BiLSTM hidden: {}\n",
        config.train_models, config.test_models, config.hidden
    );
    let result = run_experiment(&config);

    let widths = [10, 12, 14];
    segscope_bench::print_row(&["layer".into(), "SA".into(), "paper SA".into()], &widths);
    let paper_sa = [98.2, 77.8, 58.6, 85.2, 50.4, 52.8];
    for (layer, paper) in LayerType::ALL.iter().zip(paper_sa) {
        let sa = result.per_class_sa[layer.class()];
        segscope_bench::print_row(
            &[
                layer.label().to_owned(),
                sa.map_or("n/a".to_owned(), segscope_bench::pct),
                format!("{paper:.1}%"),
            ],
            &widths,
        );
    }
    println!(
        "\noverall SA: {} (paper 97.7%)   LDA: {} (paper 87.2%)",
        segscope_bench::pct(result.overall_sa),
        segscope_bench::pct(result.lda)
    );

    // Shape checks: Conv (heavy, long, many samples) beats the light
    // short layers; overall far above the 1/6 chance level.
    let conv = result.per_class_sa[LayerType::Conv.class()].unwrap_or(0.0);
    let relu = result.per_class_sa[LayerType::ReLu.class()].unwrap_or(0.0);
    assert!(result.overall_sa > 0.5, "overall SA {}", result.overall_sa);
    assert!(
        conv > relu,
        "compute-intensive layers must classify better: conv {conv} vs relu {relu}"
    );
    println!("\nshape check PASSED: Conv >> ReLU, overall far above 16.7% chance.");
}
