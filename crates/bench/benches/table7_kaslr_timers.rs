//! Table VII — breaking KASLR by direct access with different timers.
//!
//! Paper shape: the SegScope timer fails at C = 1 without denoising but
//! reaches ~100 % top-1 with Z-score (and frequency) denoising at
//! C = 10; the counting thread fails; rdtsc and a 1 µs clock succeed
//! easily (but are unavailable in the threat model); a 1 ms clock
//! cannot do it at all.

use irq::time::Ps;
use segscope::Denoise;
use segscope_attacks::kaslr::{hit_rates, run_trials, KaslrConfig, ProbeMethod, TimerKind};
use segsim::MachineConfig;

fn run_cell(timer: TimerKind, c: usize, trials: usize, seed0: u64) -> Option<(f64, f64, f64)> {
    let config = KaslrConfig {
        method: ProbeMethod::Access,
        timer,
        c,
        k: 64,
        ..KaslrConfig::paper_default()
    };
    // Parallel fan-out over independent trials (SEGSCOPE_THREADS workers).
    let results = run_trials(
        &MachineConfig::lenovo_yangtian(),
        &config,
        seed0,
        trials,
        None,
    );
    if results.iter().any(Result::is_err) {
        return None;
    }
    let (top1, top5) = hit_rates(&results, 5);
    let secs: f64 = results.iter().flatten().map(|r| r.elapsed_s).sum();
    Some((secs / trials as f64, top1, top5))
}

fn main() {
    segscope_bench::header("Table VII: KASLR break by direct access, timer ablation");
    let trials = if segscope_bench::full_scale() { 12 } else { 4 };
    println!("trials per cell: {trials} (paper: 1000); 512 candidate slots\n");
    let widths = [40, 4, 10, 10, 10];
    segscope_bench::print_row(
        &[
            "timer".into(),
            "C".into(),
            "time(s)".into(),
            "top-1".into(),
            "top-5".into(),
        ],
        &widths,
    );
    let rows: Vec<(TimerKind, Vec<usize>)> = vec![
        (TimerKind::SegScope(Denoise::None), vec![1, 10]),
        (TimerKind::SegScope(Denoise::ZScore), vec![1, 10]),
        (TimerKind::SegScope(Denoise::Freq), vec![1, 10]),
        (TimerKind::SegScope(Denoise::ZScoreAndFreq), vec![1, 10]),
        (TimerKind::CountingThread, vec![1]),
        (TimerKind::HighRes, vec![1, 10]),
        (TimerKind::Coarse(Ps::from_us(1)), vec![1, 10]),
        (TimerKind::Coarse(Ps::from_ms(1)), vec![1, 10]),
    ];
    let mut zscore_c10_top1 = 0.0;
    let mut ms_top1: f64 = 1.0;
    for (i, (timer, cs)) in rows.into_iter().enumerate() {
        for c in cs {
            match run_cell(timer, c, trials, (0xF16D_0000 + (i as u64)) << 8) {
                Some((secs, top1, top5)) => {
                    segscope_bench::print_row(
                        &[
                            timer.label(),
                            c.to_string(),
                            format!("{secs:.2}"),
                            segscope_bench::pct(top1),
                            segscope_bench::pct(top5),
                        ],
                        &widths,
                    );
                    if matches!(timer, TimerKind::SegScope(Denoise::ZScore)) && c == 10 {
                        zscore_c10_top1 = top1;
                    }
                    if matches!(timer, TimerKind::Coarse(res) if res == Ps::from_ms(1)) {
                        ms_top1 = ms_top1.min(top1);
                    }
                }
                None => {
                    segscope_bench::print_row(
                        &[
                            timer.label(),
                            c.to_string(),
                            "-".into(),
                            "n/a".into(),
                            "n/a".into(),
                        ],
                        &widths,
                    );
                }
            }
        }
    }
    println!(
        "\npaper Table VII: Z-score C=10 -> 99.6%/99.8% in 20.3 s; Z-score+freq C=10 -> 100%;\n\
         counting thread -> 0.3%/1.3%; rdtsc C=1 -> 96.9%; 1 ms timer -> 0%."
    );
    assert!(
        zscore_c10_top1 >= 0.75,
        "Z-score C=10 should nearly always recover the base: {zscore_c10_top1}"
    );
    assert!(
        ms_top1 <= 0.5,
        "a 1 ms clock must not reliably break KASLR: {ms_top1}"
    );
    println!("\nshape check PASSED.");
}
