//! Table VIII — breaking KASLR via prefetch probing on the Table I
//! machines, at C = 1 and C = 5.
//!
//! Paper shape: C = 1 gives good-but-imperfect top-1 with near-perfect
//! top-5 in ~2 s; C = 5 reaches 100 % / 100 % in ~10 s on every machine.

use segscope_attacks::kaslr::{hit_rates, run_trials, KaslrConfig};
use segsim::MachineConfig;

fn main() {
    segscope_bench::header("Table VIII: KASLR break via prefetch across machines");
    let trials = if segscope_bench::full_scale() { 10 } else { 3 };
    println!("trials per cell: {trials} (paper: 1000)\n");
    let widths = [40, 4, 10, 10, 10];
    segscope_bench::print_row(
        &[
            "machine".into(),
            "C".into(),
            "time(s)".into(),
            "top-1".into(),
            "top-5".into(),
        ],
        &widths,
    );
    let machines = [
        MachineConfig::xiaomi_air13(),
        MachineConfig::lenovo_yangtian(),
        MachineConfig::amazon_t2_large(),
        MachineConfig::amazon_c5_large(),
    ];
    let mut c5_top1_sum = 0.0;
    let mut cells = 0usize;
    for (i, machine_cfg) in machines.into_iter().enumerate() {
        for c in [1usize, 5] {
            let config = KaslrConfig {
                c,
                ..KaslrConfig::paper_default()
            };
            // Parallel fan-out over independent trials.
            let results = run_trials(
                &machine_cfg,
                &config,
                0xF16E_0000 + ((i as u64) << 8),
                trials,
                None,
            );
            let (top1, top5) = hit_rates(&results, 5);
            let secs: f64 = results
                .iter()
                .map(|r| {
                    r.as_ref()
                        .expect("SegScope timer always available")
                        .elapsed_s
                })
                .sum();
            segscope_bench::print_row(
                &[
                    machine_cfg.name.clone(),
                    c.to_string(),
                    format!("{:.2}", secs / trials as f64),
                    segscope_bench::pct(top1),
                    segscope_bench::pct(top5),
                ],
                &widths,
            );
            if c == 5 {
                c5_top1_sum += top1;
                cells += 1;
            }
        }
    }
    println!(
        "\npaper Table VIII: C=1 -> 63.7-96.1% top-1 in ~2.1 s; C=5 -> 100%/100% in ~10.2 s\n\
         on all four machines."
    );
    let c5_avg = c5_top1_sum / cells as f64;
    assert!(
        c5_avg >= 0.75,
        "C=5 should reliably recover the base: avg {c5_avg}"
    );
    println!("\nshape check PASSED: C=5 de-randomizes KASLR in ~10-20 simulated seconds.");
}
