//! Machine-readable performance report for the batched execution path
//! (`BENCH_batched.json`).
//!
//! The `bench_batched` target regenerates the file; it records host
//! wall-clock numbers, so absolute values vary by machine. The gates in
//! [`BatchedBenchReport::validate`] are host-independent:
//!
//! - the adaptive fabric and the naive linear-scan fabric deliver
//!   bit-identical interrupt streams (and leave their RNGs at the same
//!   position) on every arm, peek for peek and pop for pop,
//! - on the simulator's peek-heavy dispatch pattern the adaptive fabric
//!   never loses to the naive scan even at 3 sources (its cached head
//!   makes `peek_next` O(1) in both modes), and beats it by at least 2x
//!   past the calendar cutover,
//! - recycled-lane batched trials produce bit-identical per-trial sample
//!   streams, fault logs, and final RNG positions (FNV-folded) to
//!   fresh-machine scalar trials, at ≥2x the throughput on the quick
//!   scale and ≥5x at full scale.

use irq::{FabricImpl, InterruptFabric, InterruptKind, NaiveFabric, FABRIC_CUTOVER_SOURCES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use segsim::{FaultPlan, Machine, MachineConfig};
use serde::Serialize;
use std::time::Instant;
use x86seg::Selector;

/// Minimum accepted adaptive-vs-naive speedup on peek+pop arms at or
/// below [`FABRIC_CUTOVER_SOURCES`] sources. Full parity (not the 0.9
/// jitter bar of the pop-only hot-path report): the simulator's dispatch
/// peeks the fabric head several times per delivered interrupt, and the
/// adaptive fabric answers those peeks from its cache while the naive
/// scan pays O(sources) each time — so ≥1.0x holds with real margin.
pub const LOW_SOURCE_PEEK_MIN_SPEEDUP: f64 = 1.0;

/// Minimum accepted batched-vs-scalar trial throughput speedup on the
/// quick scale (a deliberately loose floor for noisy CI hosts).
pub const BATCHED_MIN_SPEEDUP: f64 = 2.0;

/// Minimum accepted batched-vs-scalar trial throughput speedup at full
/// scale (`SEGSCOPE_BENCH_FULL=1`), where per-trial work is long enough
/// to amortize timing noise.
pub const BATCHED_FULL_MIN_SPEEDUP: f64 = 5.0;

/// How many `peek_next` calls the dispatch loop issues per consumed
/// interrupt — the simulator re-peeks the head once per user span to
/// bound the span, so several peeks per pop is the representative ratio.
pub const PEEKS_PER_POP: usize = 4;

/// FNV-1a offset basis.
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Device-interrupt kinds used for the synthetic extra sources; cycled
/// in order so source `i` gets `DEVICE_KINDS[i % 6]`.
const DEVICE_KINDS: [InterruptKind; 6] = [
    InterruptKind::Network,
    InterruptKind::Gpu,
    InterruptKind::Keyboard,
    InterruptKind::Thermal,
    InterruptKind::CallFunction,
    InterruptKind::Other,
];

/// Adaptive-vs-naive fabric throughput on the peek-heavy dispatch
/// pattern, one arm per source count.
#[derive(Debug, Clone, Serialize)]
pub struct FabricPeekArm {
    /// Machine preset the source set came from.
    pub machine: String,
    /// Total interrupt sources on the fabric (preset + extra devices).
    pub sources: usize,
    /// Implementation the adaptive fabric selected for this source count.
    pub mode: String,
    /// Interrupts consumed per fabric per run.
    pub events: usize,
    /// `peek_next` calls issued per consumed interrupt.
    pub peeks_per_pop: usize,
    /// Naive linear-scan fabric wall-clock seconds.
    pub naive_s: f64,
    /// Adaptive fabric wall-clock seconds.
    pub adaptive_s: f64,
    /// Naive fabric throughput, consumed interrupts per second.
    pub naive_events_per_s: f64,
    /// Adaptive fabric throughput, consumed interrupts per second.
    pub adaptive_events_per_s: f64,
    /// Adaptive speedup over the naive scan (wall-clock ratio).
    pub speedup: f64,
    /// Whether both fabrics produced bit-identical peek+pop streams and
    /// finished with their RNGs at the same position.
    pub identical: bool,
}

/// Recycled-lane batched trials vs fresh-machine scalar trials.
#[derive(Debug, Clone, Serialize)]
pub struct BatchedTrialsArm {
    /// Machine preset the trials ran on.
    pub machine: String,
    /// Trials per run.
    pub trials: usize,
    /// Probe slots (wrgs/spin/rdgs rounds) per trial.
    pub slots_per_trial: usize,
    /// Scalar (fresh `Machine::new` per trial) wall-clock seconds.
    pub scalar_s: f64,
    /// Batched (recycled lane, `reset` per trial) wall-clock seconds.
    pub batched_s: f64,
    /// Scalar throughput, trials per second.
    pub scalar_trials_per_s: f64,
    /// Batched throughput, trials per second.
    pub batched_trials_per_s: f64,
    /// Batched speedup over scalar (wall-clock ratio).
    pub speedup: f64,
    /// Whether every trial's sample stream, fault log, and final RNG
    /// position (FNV-folded) matched between the two paths.
    pub identical: bool,
}

/// The full `BENCH_batched.json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct BatchedBenchReport {
    /// One arm per source-count point, low to high.
    pub fabric: Vec<FabricPeekArm>,
    /// Batched-vs-scalar end-to-end trial throughput.
    pub trials: BatchedTrialsArm,
    /// Whether the run used the full scale (`SEGSCOPE_BENCH_FULL=1`),
    /// which arms the ≥5x batched gate.
    pub full_scale: bool,
    /// Human-readable caveat about the measurement host.
    pub note: String,
}

impl BatchedBenchReport {
    /// Checks the invariants the CI gate relies on.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.fabric.is_empty() {
            return Err("fabric arms empty".into());
        }
        for arm in &self.fabric {
            if !arm.identical {
                return Err(format!(
                    "fabric arm `{}` ({} sources): adaptive and naive \
                     fabrics diverged",
                    arm.machine, arm.sources
                ));
            }
            if arm.naive_events_per_s <= 0.0 || arm.adaptive_events_per_s <= 0.0 {
                return Err(format!(
                    "fabric arm `{}` ({} sources): non-positive throughput",
                    arm.machine, arm.sources
                ));
            }
        }
        for arm in self
            .fabric
            .iter()
            .filter(|a| a.sources <= FABRIC_CUTOVER_SOURCES)
        {
            if arm.speedup < LOW_SOURCE_PEEK_MIN_SPEEDUP {
                return Err(format!(
                    "fabric arm `{}` ({} sources): adaptive fabric lost to \
                     the naive scan at {:.2}x on the peek-heavy pattern \
                     (bar {LOW_SOURCE_PEEK_MIN_SPEEDUP}x)",
                    arm.machine, arm.sources, arm.speedup
                ));
            }
        }
        let multi_best = self
            .fabric
            .iter()
            .filter(|a| a.sources > FABRIC_CUTOVER_SOURCES)
            .map(|a| a.speedup)
            .fold(f64::NEG_INFINITY, f64::max);
        if multi_best < 2.0 {
            return Err(format!(
                "no multi-source arm reached the 2x adaptive speedup bar \
                 (best {multi_best:.2}x)"
            ));
        }
        if !self.trials.identical {
            return Err("batched and scalar trial streams diverged".into());
        }
        if self.trials.speedup < BATCHED_MIN_SPEEDUP {
            return Err(format!(
                "batched trials reached only {:.2}x over scalar \
                 (bar {BATCHED_MIN_SPEEDUP}x)",
                self.trials.speedup
            ));
        }
        if self.full_scale && self.trials.speedup < BATCHED_FULL_MIN_SPEEDUP {
            return Err(format!(
                "batched trials reached only {:.2}x over scalar at full \
                 scale (bar {BATCHED_FULL_MIN_SPEEDUP}x)",
                self.trials.speedup
            ));
        }
        Ok(())
    }
}

fn time_s<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Folds one `u64` into an order-sensitive FNV-1a hash.
#[must_use]
pub fn fold_u64(hash: u64, value: u64) -> u64 {
    let mut h = hash;
    for byte in value.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Builds one fabric of the requested flavor with the preset's sources
/// plus `extra_devices` synthetic Poisson device sources.
macro_rules! build_fabric {
    ($ty:ty, $cfg:expr, $extra:expr, $rng:expr) => {{
        let mut fabric = <$ty>::new();
        fabric.add_periodic_timer($cfg.timer_hz, $cfg.timer_jitter, $rng);
        fabric.add_poisson(InterruptKind::PerfMon, $cfg.pmi_rate_hz, $rng);
        fabric.add_poisson(InterruptKind::Resched, $cfg.resched_rate_hz, $rng);
        for i in 0..$extra {
            fabric.add_poisson(
                DEVICE_KINDS[i % DEVICE_KINDS.len()],
                40.0 + 17.0 * i as f64,
                $rng,
            );
        }
        fabric
    }};
}

/// Measures one peek+pop arm: the preset's source set plus
/// `extra_devices` synthetic device sources, consumed for `events`
/// deliveries with [`PEEKS_PER_POP`] head peeks before every pop —
/// the simulator's span-bounding dispatch pattern — on the adaptive
/// fabric and the naive linear-scan fabric with identically seeded RNGs.
#[must_use]
pub fn measure_fabric_peek(
    cfg: &MachineConfig,
    extra_devices: usize,
    events: usize,
    seed: u64,
) -> FabricPeekArm {
    let mut adaptive_rng = SmallRng::seed_from_u64(seed);
    let mut adaptive = build_fabric!(InterruptFabric, cfg, extra_devices, &mut adaptive_rng);
    let mut naive_rng = SmallRng::seed_from_u64(seed);
    let mut naive = build_fabric!(NaiveFabric, cfg, extra_devices, &mut naive_rng);
    let sources = adaptive.source_count();
    let mode = match FabricImpl::auto_select(sources) {
        FabricImpl::NaiveScan => "naive-scan",
        FabricImpl::Calendar => "calendar",
    };

    let (naive_s, naive_hash) = time_s(|| {
        let mut h = FNV_BASIS;
        for _ in 0..events {
            for _ in 0..PEEKS_PER_POP {
                let head = naive.peek_next().expect("sources never run dry");
                h = fold_u64(h, head.at.as_ps());
            }
            let ev = naive.pop(&mut naive_rng).expect("sources never run dry");
            h = fold_u64(h, ev.at.as_ps());
            h = fold_u64(h, ev.kind as u64);
        }
        h
    });
    let (adaptive_s, adaptive_hash) = time_s(|| {
        let mut h = FNV_BASIS;
        for _ in 0..events {
            for _ in 0..PEEKS_PER_POP {
                let head = adaptive.peek_next().expect("sources never run dry");
                h = fold_u64(h, head.at.as_ps());
            }
            let ev = adaptive
                .pop(&mut adaptive_rng)
                .expect("sources never run dry");
            h = fold_u64(h, ev.at.as_ps());
            h = fold_u64(h, ev.kind as u64);
        }
        h
    });
    let identical =
        naive_hash == adaptive_hash && naive_rng.gen::<u64>() == adaptive_rng.gen::<u64>();

    FabricPeekArm {
        machine: cfg.name.clone(),
        sources,
        mode: mode.to_string(),
        events,
        peeks_per_pop: PEEKS_PER_POP,
        naive_s,
        adaptive_s,
        naive_events_per_s: events as f64 / naive_s.max(1e-9),
        adaptive_events_per_s: events as f64 / adaptive_s.max(1e-9),
        speedup: naive_s / adaptive_s.max(1e-9),
        identical,
    }
}

/// One short probe trial — load GS once, then `slots` spin+rdgs rounds —
/// folded to an FNV hash over every sample, the fault log, and one final
/// RNG draw, so two paths agreeing on the hash agree on the full
/// architectural footprint and stream position.
fn probe_trial_hash(machine: &mut Machine, slots: usize) -> u64 {
    let mut h = FNV_BASIS;
    machine.wrgs(Selector::from_bits(0x3)).expect("GS loads");
    for slot in 0..slots {
        machine.spin(1_500 + (slot as u64 % 5) * 200);
        h = fold_u64(h, u64::from(machine.rdgs().bits()));
    }
    let log = machine.fault_log();
    for v in [
        log.dropped,
        log.duplicated,
        log.coalesced,
        log.jittered,
        log.bursts,
        log.clamped_steps,
    ] {
        h = fold_u64(h, v);
    }
    fold_u64(h, machine.rng_mut().gen::<u64>())
}

/// The machine preset the trial arms run on: a Table I machine with a
/// light delivery-fault plan, so the per-trial hash also covers the
/// fault-injection path.
#[must_use]
pub fn trials_machine() -> MachineConfig {
    MachineConfig::lenovo_yangtian().with_fault_plan(
        FaultPlan::none()
            .with_drop_prob(0.05)
            .with_duplicate_prob(0.02),
    )
}

/// Measures `trials` short probe trials both ways, keeping the
/// best-of-`repeats` timing per path (the standard minimum-noise
/// throughput estimator on shared hosts): scalar (a fresh
/// [`Machine::new`] per trial, the pre-batch driver) and batched (this
/// worker's recycled [`segsim::MachineBatch`] lane through
/// [`scenario::with_recycled_machine`], the shipped batched-driver
/// mechanism). Per-trial hashes must match pairwise on every repeat.
#[must_use]
pub fn measure_batched_trials(
    trials: usize,
    slots: usize,
    repeats: usize,
    seed: u64,
) -> BatchedTrialsArm {
    let cfg = trials_machine();
    let trial_seed = |t: usize| seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64));

    // Warm both paths (page-in, lane construction) outside the timing.
    let _ = probe_trial_hash(&mut Machine::new(cfg.clone(), trial_seed(0)), slots);
    let _ =
        scenario::with_recycled_machine(cfg.clone(), trial_seed(0), |m| probe_trial_hash(m, slots));

    let mut scalar_s = f64::INFINITY;
    let mut batched_s = f64::INFINITY;
    let mut identical = true;
    for _ in 0..repeats.max(1) {
        let (s, scalar_hashes) = time_s(|| {
            (0..trials)
                .map(|t| probe_trial_hash(&mut Machine::new(cfg.clone(), trial_seed(t)), slots))
                .collect::<Vec<u64>>()
        });
        let (b, batched_hashes) = time_s(|| {
            (0..trials)
                .map(|t| {
                    scenario::with_recycled_machine(cfg.clone(), trial_seed(t), |m| {
                        probe_trial_hash(m, slots)
                    })
                })
                .collect::<Vec<u64>>()
        });
        scalar_s = scalar_s.min(s);
        batched_s = batched_s.min(b);
        identical &= scalar_hashes == batched_hashes;
    }

    BatchedTrialsArm {
        machine: cfg.name.clone(),
        trials,
        slots_per_trial: slots,
        scalar_s,
        batched_s,
        scalar_trials_per_s: trials as f64 / scalar_s.max(1e-9),
        batched_trials_per_s: trials as f64 / batched_s.max(1e-9),
        speedup: scalar_s / batched_s.max(1e-9),
        identical,
    }
}

/// Serializes a report to JSON and writes it to `path`.
///
/// # Errors
///
/// Returns any filesystem error from the write.
pub fn write_report(report: &BatchedBenchReport, path: &str) -> std::io::Result<()> {
    let json = serde_json::to_string(report)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peek_arm_is_identical_at_and_above_the_cutover() {
        let cfg = MachineConfig::lenovo_yangtian();
        let low = measure_fabric_peek(&cfg, 0, 5_000, 0xBA7C_0001);
        assert!(low.identical, "3-source streams diverged");
        assert_eq!(low.sources, 3);
        assert_eq!(low.mode, "naive-scan");
        let high = measure_fabric_peek(&cfg, 32, 5_000, 0xBA7C_0002);
        assert!(high.identical, "35-source streams diverged");
        assert_eq!(high.sources, 35);
        assert_eq!(high.mode, "calendar");
    }

    #[test]
    fn batched_trials_match_scalar_trials() {
        let arm = measure_batched_trials(6, 120, 1, 0xBA7C_0003);
        assert!(arm.identical, "batched and scalar trial hashes diverged");
        assert_eq!(arm.trials, 6);
    }

    #[test]
    fn validate_enforces_every_gate() {
        let arm = FabricPeekArm {
            machine: "m".into(),
            sources: 35,
            mode: "calendar".into(),
            events: 10,
            peeks_per_pop: PEEKS_PER_POP,
            naive_s: 1.0,
            adaptive_s: 0.1,
            naive_events_per_s: 10.0,
            adaptive_events_per_s: 100.0,
            speedup: 10.0,
            identical: true,
        };
        let trials = BatchedTrialsArm {
            machine: "m".into(),
            trials: 8,
            slots_per_trial: 100,
            scalar_s: 1.0,
            batched_s: 0.2,
            scalar_trials_per_s: 8.0,
            batched_trials_per_s: 40.0,
            speedup: 5.0,
            identical: true,
        };
        let good = BatchedBenchReport {
            fabric: vec![arm.clone()],
            trials: trials.clone(),
            full_scale: false,
            note: String::new(),
        };
        assert!(good.validate().is_ok());

        let mut divergent = good.clone();
        divergent.fabric[0].identical = false;
        assert!(divergent.validate().is_err());

        // A 3-source arm below parity must fail; at parity it passes.
        let mut low_lost = good.clone();
        low_lost.fabric.push(FabricPeekArm {
            sources: 3,
            mode: "naive-scan".into(),
            speedup: 0.97,
            ..arm.clone()
        });
        assert!(low_lost.validate().is_err());
        let mut low_ok = good.clone();
        low_ok.fabric.push(FabricPeekArm {
            sources: 3,
            mode: "naive-scan".into(),
            speedup: 1.0,
            ..arm.clone()
        });
        assert!(low_ok.validate().is_ok());

        // No multi-source arm over 2x fails.
        let mut slow = good.clone();
        slow.fabric[0].speedup = 1.5;
        assert!(slow.validate().is_err());

        // Trial gates: divergence, the quick 2x bar, the full-scale 5x bar.
        let mut trial_div = good.clone();
        trial_div.trials.identical = false;
        assert!(trial_div.validate().is_err());
        let mut trial_slow = good.clone();
        trial_slow.trials.speedup = 1.4;
        assert!(trial_slow.validate().is_err());
        let mut full_slow = good.clone();
        full_slow.full_scale = true;
        full_slow.trials.speedup = 3.0;
        assert!(full_slow.validate().is_err());
        let mut full_ok = good;
        full_ok.full_scale = true;
        full_ok.trials.speedup = 5.5;
        assert!(full_ok.validate().is_ok());
    }
}
