//! Machine-readable performance report for the campaign engine
//! (`BENCH_campaign.json`).
//!
//! The `bench_campaign` target regenerates the file; it records host
//! wall-clock numbers, so absolute values vary by machine. The gates in
//! [`CampaignBenchReport::validate`] are host-independent:
//!
//! - every shard count produces a bit-identical merged report (compared
//!   by an FNV fold over the serialized report JSON),
//! - on a multi-core host, sharding the sweep 8 wide beats the serial
//!   sweep by at least 2x (on a single-core host the speedup gate is
//!   informational only, mirroring `BENCH_parallel.json`).

use campaign::{CampaignManifest, CampaignOptions, CampaignSpec, FaultVariant, ScenarioSel};
use segsim::FaultPlan;
use serde::Serialize;
use std::time::Instant;

/// Minimum accepted sharded-vs-serial sweep speedup at the widest shard
/// count, enforced only on multi-core hosts.
pub const SHARDED_MIN_SPEEDUP: f64 = 2.0;

/// FNV-1a offset basis.
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Order-sensitive FNV-1a digest of a byte string.
#[must_use]
pub fn fnv_digest(text: &str) -> u64 {
    let mut hash = FNV_BASIS;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// One sweep of the bench grid at a fixed shard count.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignArm {
    /// Cells run concurrently per wave.
    pub shards: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_s: f64,
    /// Sweep throughput, cells per second.
    pub cells_per_s: f64,
    /// FNV fold of the merged report's JSON — equal digests mean
    /// byte-identical reports.
    pub report_digest: u64,
}

/// The full `BENCH_campaign.json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignBenchReport {
    /// Campaign label of the bench grid.
    pub spec: String,
    /// Cells in the grid.
    pub cells: usize,
    /// Trials per cell (repetition scenarios; structured ones keep
    /// their own counts).
    pub trials_per_cell: usize,
    /// One sweep per shard count, ascending.
    pub arms: Vec<CampaignArm>,
    /// Whether every arm produced a bit-identical report.
    pub identical: bool,
    /// Whether the host had more than one core (arms the speedup gate).
    pub multi_core: bool,
    /// Whether the run used the full scale (`SEGSCOPE_BENCH_FULL=1`).
    pub full_scale: bool,
    /// Human-readable caveat about the measurement host.
    pub note: String,
}

impl CampaignBenchReport {
    /// Checks the invariants the CI gate relies on.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.arms.is_empty() {
            return Err("campaign arms empty".into());
        }
        for arm in &self.arms {
            if arm.cells_per_s <= 0.0 {
                return Err(format!(
                    "arm at {} shards: non-positive throughput",
                    arm.shards
                ));
            }
        }
        let digest = self.arms[0].report_digest;
        if self.arms.iter().any(|a| a.report_digest != digest) {
            return Err("shard counts disagree on the merged report".into());
        }
        if !self.identical {
            return Err("report marked non-identical".into());
        }
        if self.multi_core {
            let serial = self
                .arms
                .iter()
                .find(|a| a.shards == 1)
                .ok_or("no serial (1-shard) arm")?;
            let widest = self
                .arms
                .iter()
                .max_by_key(|a| a.shards)
                .expect("arms non-empty");
            let speedup = widest.wall_s.max(1e-9) / serial.wall_s.max(1e-9);
            let speedup = 1.0 / speedup;
            if speedup < SHARDED_MIN_SPEEDUP {
                return Err(format!(
                    "sharded sweep reached only {speedup:.2}x over serial at \
                     {} shards on a multi-core host (bar {SHARDED_MIN_SPEEDUP}x)",
                    widest.shards
                ));
            }
        }
        Ok(())
    }
}

/// The bench grid: four fast scenarios × two Table I presets × two
/// fault regimes. Full scale widens the preset axis and adds a
/// replicate, quick scale keeps the sweep CI-sized.
#[must_use]
pub fn bench_spec(full: bool) -> CampaignSpec {
    CampaignSpec {
        name: "bench-grid".to_owned(),
        seed: 0xBE9C_CA4A,
        scenarios: ["circl", "spectral", "kaslr", "covert"]
            .iter()
            .map(|n| ScenarioSel::named(n))
            .collect(),
        presets: if full {
            segsim::presets::NAMES
                .iter()
                .map(|&n| n.to_owned())
                .collect()
        } else {
            vec!["xiaomi_air13".to_owned(), "amazon_c5_large".to_owned()]
        },
        faults: vec![
            FaultVariant::none(),
            FaultVariant {
                name: "delivery_storm".to_owned(),
                plan: Some(FaultPlan::delivery_storm()),
            },
        ],
        defenses: vec![campaign::DefenseVariant::none()],
        replicates: if full { 2 } else { 1 },
        trials: Some(if full { 4 } else { 1 }),
    }
}

/// Sweeps the bench grid once at `shards`, returning the arm record.
#[must_use]
pub fn measure_campaign(spec: &CampaignSpec, shards: usize) -> CampaignArm {
    let registry = segscope_attacks::registry();
    let mut manifest = CampaignManifest::new(spec);
    let opts = CampaignOptions {
        shards,
        threads: Some(1),
        stop_after_waves: None,
    };
    let start = Instant::now();
    let report = campaign::run_campaign(&registry, spec, &opts, &mut manifest, |_| {})
        .expect("bench grid runs")
        .expect("bench grid completes");
    let wall_s = start.elapsed().as_secs_f64();
    CampaignArm {
        shards,
        wall_s,
        cells_per_s: spec.cell_count() as f64 / wall_s.max(1e-9),
        report_digest: fnv_digest(&report.to_json()),
    }
}

/// Serializes a report to JSON and writes it to `path`.
///
/// # Errors
///
/// Returns any filesystem error from the write.
pub fn write_report(report: &CampaignBenchReport, path: &str) -> std::io::Result<()> {
    let json = serde_json::to_string(report)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_grid_is_shard_invariant() {
        let spec = bench_spec(false);
        assert_eq!(spec.cell_count(), 4 * 2 * 2);
        let serial = measure_campaign(&spec, 1);
        let sharded = measure_campaign(&spec, 4);
        assert_eq!(serial.report_digest, sharded.report_digest);
    }

    #[test]
    fn validate_enforces_every_gate() {
        let arm = |shards: usize, wall_s: f64, digest: u64| CampaignArm {
            shards,
            wall_s,
            cells_per_s: 16.0 / wall_s,
            report_digest: digest,
        };
        let good = CampaignBenchReport {
            spec: "bench-grid".into(),
            cells: 16,
            trials_per_cell: 1,
            arms: vec![arm(1, 8.0, 0xD1), arm(4, 2.5, 0xD1), arm(8, 1.5, 0xD1)],
            identical: true,
            multi_core: true,
            full_scale: false,
            note: String::new(),
        };
        assert!(good.validate().is_ok());

        let mut divergent = good.clone();
        divergent.arms[2].report_digest = 0xD2;
        assert!(divergent.validate().is_err());

        let mut flagged = good.clone();
        flagged.identical = false;
        assert!(flagged.validate().is_err());

        // On a multi-core host the widest arm must hit 2x over serial...
        let mut slow = good.clone();
        slow.arms[2].wall_s = 7.0;
        assert!(slow.validate().is_err());
        // ...but a single-core host only gates identity.
        let mut single = slow;
        single.multi_core = false;
        assert!(single.validate().is_ok());

        let empty = CampaignBenchReport {
            arms: Vec::new(),
            ..good
        };
        assert!(empty.validate().is_err());
    }
}
