//! Machine-readable performance report for the simulator hot path
//! (`BENCH_hotpath.json`).
//!
//! The `bench_hotpath` target regenerates the file; it records host
//! wall-clock numbers, so absolute values vary by machine. Three things
//! are asserted regardless of the host:
//!
//! - the adaptive fabric and the naive linear-scan fabric deliver
//!   bit-identical interrupt sequences (and leave their RNGs at the same
//!   position),
//! - on multi-source machines the calendar delivers at least 2x the
//!   naive fabric's interrupts/second,
//! - at low source counts (at or below the adaptive cutover) the fabric
//!   never regresses below the naive scan beyond timing noise — the
//!   scan-mode guard that keeps the pre-adaptive 0.85x 3-source
//!   regression from silently returning,
//! - the buffer-reuse probe API (`probe_n_into`) allocates strictly less
//!   than the allocating wrapper (`probe_n`) while producing identical
//!   samples.

use irq::{InterruptFabric, InterruptKind, NaiveFabric, FABRIC_CUTOVER_SOURCES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use segscope_attacks::kaslr::{run_trials, KaslrConfig};
use segsim::MachineConfig;
use serde::Serialize;
use std::time::Instant;

/// Minimum accepted adaptive-vs-naive speedup on arms at or below
/// [`FABRIC_CUTOVER_SOURCES`] sources. See
/// [`HotpathBenchReport::validate`] for why the bar sits slightly under
/// the 1.0x parity the scan mode delivers in expectation.
pub const LOW_SOURCE_MIN_SPEEDUP: f64 = 0.9;

/// Device-interrupt kinds used for the synthetic extra sources; cycled
/// in order so source `i` gets `DEVICE_KINDS[i % 6]`.
const DEVICE_KINDS: [InterruptKind; 6] = [
    InterruptKind::Network,
    InterruptKind::Gpu,
    InterruptKind::Keyboard,
    InterruptKind::Thermal,
    InterruptKind::CallFunction,
    InterruptKind::Other,
];

/// Calendar-vs-naive fabric throughput on one machine configuration.
#[derive(Debug, Clone, Serialize)]
pub struct FabricArm {
    /// Machine preset the source set came from.
    pub machine: String,
    /// Total interrupt sources on the fabric (preset + extra devices).
    pub sources: usize,
    /// Interrupts delivered per fabric per run.
    pub events: usize,
    /// Naive linear-scan fabric wall-clock seconds.
    pub naive_s: f64,
    /// Event-calendar fabric wall-clock seconds.
    pub calendar_s: f64,
    /// Naive fabric throughput, delivered interrupts per second.
    pub naive_events_per_s: f64,
    /// Calendar fabric throughput, delivered interrupts per second.
    pub calendar_events_per_s: f64,
    /// Calendar speedup over the naive scan (wall-clock ratio).
    pub speedup: f64,
    /// Whether both fabrics delivered bit-identical event sequences and
    /// finished with their RNGs at the same stream position.
    pub identical: bool,
}

/// Allocating-vs-reusing probe API comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ProbeBench {
    /// Samples per batch.
    pub samples: usize,
    /// Batches per run (each `probe_n` batch allocates a fresh `Vec`).
    pub batches: usize,
    /// Heap bytes allocated across the `probe_n` run.
    pub alloc_bytes_fresh: u64,
    /// Heap bytes allocated across the `probe_n_into` run.
    pub alloc_bytes_reused: u64,
    /// Allocation count across the `probe_n` run.
    pub allocs_fresh: u64,
    /// Allocation count across the `probe_n_into` run.
    pub allocs_reused: u64,
    /// Fractional allocation-count reduction, `1 - reused/fresh`.
    pub alloc_reduction: f64,
    /// `probe_n` throughput, samples per second.
    pub fresh_samples_per_s: f64,
    /// `probe_n_into` throughput, samples per second.
    pub reused_samples_per_s: f64,
    /// Whether both APIs produced identical sample streams.
    pub identical: bool,
}

/// End-to-end scenario throughput (full trials through the unified
/// scenario engine, serial).
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioBench {
    /// Scenario exercised.
    pub scenario: String,
    /// Trials per run.
    pub trials: usize,
    /// Wall-clock seconds for the run.
    pub wall_s: f64,
    /// Throughput, trials per second.
    pub trials_per_s: f64,
}

/// The full `BENCH_hotpath.json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct HotpathBenchReport {
    /// One arm per (machine, source-count) point.
    pub fabric: Vec<FabricArm>,
    /// Probe-buffer reuse comparison.
    pub probe: ProbeBench,
    /// End-to-end scenario throughput.
    pub scenario: ScenarioBench,
    /// Human-readable caveat about the measurement host.
    pub note: String,
}

impl HotpathBenchReport {
    /// Checks the schema invariants the CI gate relies on.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.fabric.is_empty() {
            return Err("fabric arms empty".into());
        }
        for arm in &self.fabric {
            if !arm.identical {
                return Err(format!(
                    "fabric arm `{}` ({} sources): calendar and naive \
                     fabrics diverged",
                    arm.machine, arm.sources
                ));
            }
            if arm.naive_events_per_s <= 0.0 || arm.calendar_events_per_s <= 0.0 {
                return Err(format!(
                    "fabric arm `{}` ({} sources): non-positive throughput",
                    arm.machine, arm.sources
                ));
            }
        }
        let multi_best = self
            .fabric
            .iter()
            .filter(|a| a.sources > FABRIC_CUTOVER_SOURCES)
            .map(|a| a.speedup)
            .fold(f64::NEG_INFINITY, f64::max);
        if multi_best < 2.0 {
            return Err(format!(
                "no multi-source arm reached the 2x calendar speedup bar \
                 (best {multi_best:.2}x)"
            ));
        }
        // Below the cutover the adaptive fabric runs the same linear scan
        // as the naive baseline, so the true ratio is 1.0; the margin only
        // absorbs wall-clock jitter between the two timed loops. The
        // pre-adaptive calendar's 0.85x 3-source regression sits well
        // below this bar and can never silently return.
        for arm in self
            .fabric
            .iter()
            .filter(|a| a.sources <= FABRIC_CUTOVER_SOURCES)
        {
            if arm.speedup < LOW_SOURCE_MIN_SPEEDUP {
                return Err(format!(
                    "fabric arm `{}` ({} sources): adaptive fabric regressed \
                     to {:.2}x against the naive scan (bar {LOW_SOURCE_MIN_SPEEDUP}x)",
                    arm.machine, arm.sources, arm.speedup
                ));
            }
        }
        if !self.probe.identical {
            return Err("probe_n and probe_n_into sample streams diverged".into());
        }
        if self.probe.allocs_reused >= self.probe.allocs_fresh {
            return Err(format!(
                "probe_n_into must allocate less than probe_n \
                 ({} vs {} allocations)",
                self.probe.allocs_reused, self.probe.allocs_fresh
            ));
        }
        if self.probe.alloc_reduction <= 0.0 {
            return Err("probe allocation reduction must be positive".into());
        }
        if self.scenario.trials_per_s <= 0.0 {
            return Err("scenario throughput must be positive".into());
        }
        Ok(())
    }
}

fn time_s<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Order-sensitive FNV-1a fold over a delivered-event stream.
fn fold_event(hash: u64, at_ps: u64, kind: InterruptKind) -> u64 {
    let mut h = hash;
    for byte in at_ps.to_le_bytes().iter().chain(&[kind as u8]) {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Measures one fabric arm: the preset's source set plus `extra_devices`
/// synthetic Poisson device sources, drained for `events` deliveries on
/// the calendar fabric and the naive linear-scan fabric with identically
/// seeded RNGs.
#[must_use]
pub fn measure_fabric(
    cfg: &MachineConfig,
    extra_devices: usize,
    events: usize,
    seed: u64,
) -> FabricArm {
    let device_rate = |i: usize| 40.0 + 17.0 * i as f64;

    let mut cal_rng = SmallRng::seed_from_u64(seed);
    let mut cal = InterruptFabric::new();
    cal.add_periodic_timer(cfg.timer_hz, cfg.timer_jitter, &mut cal_rng);
    cal.add_poisson(InterruptKind::PerfMon, cfg.pmi_rate_hz, &mut cal_rng);
    cal.add_poisson(InterruptKind::Resched, cfg.resched_rate_hz, &mut cal_rng);
    for i in 0..extra_devices {
        cal.add_poisson(
            DEVICE_KINDS[i % DEVICE_KINDS.len()],
            device_rate(i),
            &mut cal_rng,
        );
    }

    let mut naive_rng = SmallRng::seed_from_u64(seed);
    let mut naive = NaiveFabric::new();
    naive.add_periodic_timer(cfg.timer_hz, cfg.timer_jitter, &mut naive_rng);
    naive.add_poisson(InterruptKind::PerfMon, cfg.pmi_rate_hz, &mut naive_rng);
    naive.add_poisson(InterruptKind::Resched, cfg.resched_rate_hz, &mut naive_rng);
    for i in 0..extra_devices {
        naive.add_poisson(
            DEVICE_KINDS[i % DEVICE_KINDS.len()],
            device_rate(i),
            &mut naive_rng,
        );
    }
    let sources = cal.source_count();

    let (naive_s, naive_hash) = time_s(|| {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for _ in 0..events {
            let ev = naive.pop(&mut naive_rng).expect("sources never run dry");
            h = fold_event(h, ev.at.as_ps(), ev.kind);
        }
        h
    });
    let (calendar_s, cal_hash) = time_s(|| {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for _ in 0..events {
            let ev = cal.pop(&mut cal_rng).expect("sources never run dry");
            h = fold_event(h, ev.at.as_ps(), ev.kind);
        }
        h
    });
    let identical = naive_hash == cal_hash && naive_rng.gen::<u64>() == cal_rng.gen::<u64>();

    FabricArm {
        machine: cfg.name.clone(),
        sources,
        events,
        naive_s,
        calendar_s,
        naive_events_per_s: events as f64 / naive_s.max(1e-9),
        calendar_events_per_s: events as f64 / calendar_s.max(1e-9),
        speedup: naive_s / calendar_s.max(1e-9),
        identical,
    }
}

/// Measures end-to-end scenario throughput: serial KASLR trials through
/// the unified engine (each trial runs the full probe loop on a fresh
/// machine).
#[must_use]
pub fn measure_scenario(trials: usize) -> ScenarioBench {
    let machine = MachineConfig::lenovo_yangtian();
    let config = KaslrConfig {
        c: 2,
        k: 32,
        ..KaslrConfig::paper_default()
    };
    let seed = 0xB3CC_0005;
    let _ = run_trials(&machine, &config, seed, 1.min(trials), Some(1));
    let (wall_s, _) = time_s(|| run_trials(&machine, &config, seed, trials, Some(1)));
    ScenarioBench {
        scenario: "kaslr".to_string(),
        trials,
        wall_s,
        trials_per_s: trials as f64 / wall_s.max(1e-9),
    }
}

/// Serializes a report to JSON and writes it to `path`.
///
/// # Errors
///
/// Returns any filesystem error from the write.
pub fn write_report(report: &HotpathBenchReport, path: &str) -> std::io::Result<()> {
    let json = serde_json::to_string(report)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_arm_is_identical_and_fast_enough_to_validate() {
        let cfg = MachineConfig::lenovo_yangtian();
        let arm = measure_fabric(&cfg, 32, 20_000, 0xB3CC_0010);
        assert!(arm.identical, "calendar and naive fabrics diverged");
        assert_eq!(arm.sources, 35);
        assert_eq!(arm.events, 20_000);
    }

    #[test]
    fn validate_rejects_divergent_fabrics_and_alloc_regressions() {
        let arm = FabricArm {
            machine: "m".into(),
            sources: 35,
            events: 10,
            naive_s: 1.0,
            calendar_s: 0.1,
            naive_events_per_s: 10.0,
            calendar_events_per_s: 100.0,
            speedup: 10.0,
            identical: true,
        };
        let probe = ProbeBench {
            samples: 10,
            batches: 2,
            alloc_bytes_fresh: 100,
            alloc_bytes_reused: 10,
            allocs_fresh: 20,
            allocs_reused: 2,
            alloc_reduction: 0.9,
            fresh_samples_per_s: 1.0,
            reused_samples_per_s: 1.0,
            identical: true,
        };
        let scenario = ScenarioBench {
            scenario: "kaslr".into(),
            trials: 1,
            wall_s: 1.0,
            trials_per_s: 1.0,
        };
        let good = HotpathBenchReport {
            fabric: vec![arm.clone()],
            probe: probe.clone(),
            scenario: scenario.clone(),
            note: String::new(),
        };
        assert!(good.validate().is_ok());

        let mut divergent = good.clone();
        divergent.fabric[0].identical = false;
        assert!(divergent.validate().is_err());

        let mut slow = good.clone();
        slow.fabric[0].speedup = 1.5;
        assert!(slow.validate().is_err());

        let mut alloc_regress = good.clone();
        alloc_regress.probe.allocs_reused = 20;
        assert!(alloc_regress.validate().is_err());

        // A low-source arm at the pre-adaptive 0.85x regression must fail;
        // the same arm at parity must pass.
        let mut low_regressed = good.clone();
        low_regressed.fabric.push(FabricArm {
            sources: 3,
            speedup: 0.85,
            ..arm.clone()
        });
        assert!(low_regressed.validate().is_err());
        let mut low_ok = good.clone();
        low_ok.fabric.push(FabricArm {
            sources: 3,
            speedup: 1.0,
            ..arm
        });
        assert!(low_ok.validate().is_ok());
    }
}
