//! `segscope-bench` — shared reporting helpers for the per-table /
//! per-figure reproduction harnesses in `benches/`.
//!
//! Each bench target regenerates one table or figure of the paper's
//! evaluation and prints it in a paper-comparable layout. Absolute
//! numbers come from the simulator, so only the *shape* (orderings,
//! ratios, crossovers) is expected to match the paper; the expected
//! paper values are printed alongside for easy comparison.
//!
//! Set `SEGSCOPE_BENCH_FULL=1` to run the larger (slower) experiment
//! scales.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batched_report;
pub mod campaign_report;
pub mod hotpath_report;
pub mod parallel_report;
pub mod serve_report;

use std::fmt::Write as _;

/// Whether the harness should run at full scale
/// (`SEGSCOPE_BENCH_FULL=1`).
#[must_use]
pub fn full_scale() -> bool {
    std::env::var("SEGSCOPE_BENCH_FULL").is_ok_and(|v| v == "1")
}

/// Prints a boxed section header.
pub fn header(title: &str) {
    let line = "=".repeat(title.len() + 4);
    println!("\n{line}\n| {title} |\n{line}");
}

/// Formats a `mean ± std` cell.
#[must_use]
pub fn pm(mean: f64, std: f64) -> String {
    format!("{mean:.1} ± {std:.1}")
}

/// Formats a percentage cell.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Renders a fixed-width text table row: `widths[i]` is the column width.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        let _ = write!(line, "{cell:>width$}  ");
    }
    println!("{}", line.trim_end());
}

/// Renders an ASCII histogram of `values` over `bins` equal-width bins,
/// each bar scaled to at most `width` characters, annotated with bin
/// ranges.
pub fn ascii_histogram(values: &[f64], bins: usize, width: usize) {
    if values.is_empty() || bins == 0 {
        println!("(no data)");
        return;
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    let mut counts = vec![0usize; bins];
    for &v in values {
        let bin = (((v - min) / span) * bins as f64) as usize;
        counts[bin.min(bins - 1)] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    for (i, &count) in counts.iter().enumerate() {
        let lo = min + span * i as f64 / bins as f64;
        let hi = min + span * (i + 1) as f64 / bins as f64;
        let bar = "#".repeat(count * width / peak);
        println!("{lo:>14.1} .. {hi:>14.1} |{bar:<width$}| {count}");
    }
}

/// Prints a one-line summary (n, mean, std, min, max) of a sample set.
pub fn summary(label: &str, values: &[f64]) {
    let stats: irq::dist::RunningStats = values.iter().copied().collect();
    println!(
        "{label}: n={} mean={:.1} std={:.1} min={:.1} max={:.1}",
        stats.count(),
        stats.mean(),
        stats.sample_std(),
        stats.min(),
        stats.max()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pm(1.234, 0.56), "1.2 ± 0.6");
        assert_eq!(pct(0.924), "92.4%");
    }

    #[test]
    fn histogram_handles_edge_cases() {
        ascii_histogram(&[], 4, 10);
        ascii_histogram(&[1.0], 4, 10);
        ascii_histogram(&[1.0, 2.0, 2.0, 3.0], 2, 10);
    }
}
