//! Machine-readable performance report for the parallel experiment
//! engine and the optimized LSTM kernels (`BENCH_parallel.json`).
//!
//! The `bench_parallel` target regenerates the file; it records host
//! wall-clock numbers, so absolute values vary by machine. Determinism is
//! asserted (serial and parallel runs must produce identical results)
//! regardless of the observed speedup — on a single-CPU host the speedup
//! is ~1×, which the `note` field calls out.

use nnet::reference::NaiveLstm;
use nnet::{AdamConfig, Lstm};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use segscope_attacks::kaslr::{run_trials, KaslrConfig};
use segsim::MachineConfig;
use serde::Serialize;
use std::time::Instant;

/// Serial-vs-parallel engine throughput on independent KASLR trials.
#[derive(Debug, Clone, Serialize)]
pub struct EngineBench {
    /// Trials per run.
    pub trials: usize,
    /// Worker threads the parallel run used.
    pub parallel_threads: usize,
    /// Serial (1-thread) wall-clock seconds.
    pub serial_s: f64,
    /// Parallel wall-clock seconds.
    pub parallel_s: f64,
    /// Serial throughput, trials per second.
    pub serial_trials_per_s: f64,
    /// Parallel throughput, trials per second.
    pub parallel_trials_per_s: f64,
    /// Parallel speedup over serial (wall-clock ratio).
    pub speedup: f64,
    /// Whether serial and parallel runs returned bit-identical results.
    pub deterministic: bool,
}

/// Old-vs-new LSTM training epoch time at the paper's model size.
#[derive(Debug, Clone, Serialize)]
pub struct LstmBench {
    /// Sequence length per example.
    pub steps: usize,
    /// Input feature dimension.
    pub input: usize,
    /// Hidden units.
    pub hidden: usize,
    /// Epochs timed (after warmup).
    pub epochs: usize,
    /// Naive (pre-optimization) mean epoch time, milliseconds.
    pub naive_epoch_ms: f64,
    /// Optimized mean epoch time, milliseconds.
    pub optimized_epoch_ms: f64,
    /// Naive/optimized epoch-time ratio.
    pub speedup: f64,
}

/// The full `BENCH_parallel.json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct ParallelBenchReport {
    /// Host parallelism available to the engine.
    pub host_threads: usize,
    /// Engine throughput comparison.
    pub kaslr_engine: EngineBench,
    /// LSTM kernel comparison.
    pub lstm_kernels: LstmBench,
    /// Human-readable caveat about the measurement host.
    pub note: String,
}

fn time_s<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Measures engine throughput: the same KASLR trial set, serial vs
/// parallel.
#[must_use]
pub fn measure_engine(trials: usize) -> EngineBench {
    let machine = MachineConfig::lenovo_yangtian();
    let config = KaslrConfig {
        c: 2,
        k: 32,
        ..KaslrConfig::paper_default()
    };
    let seed = 0xB3CC_0001;
    // Warmup run (page-in, branch training).
    let _ = run_trials(&machine, &config, seed, 1.min(trials), Some(1));
    let (serial_s, serial) = time_s(|| run_trials(&machine, &config, seed, trials, Some(1)));
    let parallel_threads = exec::resolve_threads(None);
    let (parallel_s, parallel) = time_s(|| run_trials(&machine, &config, seed, trials, None));
    EngineBench {
        trials,
        parallel_threads,
        serial_s,
        parallel_s,
        serial_trials_per_s: trials as f64 / serial_s.max(1e-9),
        parallel_trials_per_s: trials as f64 / parallel_s.max(1e-9),
        speedup: serial_s / parallel_s.max(1e-9),
        deterministic: serial == parallel,
    }
}

/// Measures LSTM epoch time, naive reference vs optimized kernels.
#[must_use]
pub fn measure_lstm(epochs: usize) -> LstmBench {
    let (steps, input, hidden) = (64usize, 8usize, 32usize);
    let xs: Vec<Vec<f32>> = (0..steps)
        .map(|t| {
            (0..input)
                .map(|k| ((t * input + k) as f32 * 0.13).sin())
                .collect()
        })
        .collect();
    let dh_last = vec![1.0f32; hidden];

    let mut rng = SmallRng::seed_from_u64(0xB3CC_0002);
    let mut naive = NaiveLstm::new(input, hidden, &mut rng, AdamConfig::default());
    let mut dh = vec![vec![0.0f32; hidden]; steps];
    dh[steps - 1] = dh_last.clone();
    let naive_epoch = || {
        let trace = naive.forward(&xs);
        naive.backward(&trace, &dh);
        naive.apply_grads(1);
    };
    let (naive_s, ()) = {
        let mut run = naive_epoch;
        run(); // warmup
        time_s(|| (0..epochs).for_each(|_| run()))
    };

    let mut rng = SmallRng::seed_from_u64(0xB3CC_0002);
    let mut fast = Lstm::new(input, hidden, &mut rng, AdamConfig::default());
    let fast_epoch = || {
        let trace = fast.forward(&xs);
        fast.backward_last(&trace, &dh_last);
        fast.apply_grads(1);
    };
    let (fast_s, ()) = {
        let mut run = fast_epoch;
        run(); // warmup
        time_s(|| (0..epochs).for_each(|_| run()))
    };

    let naive_epoch_ms = naive_s * 1e3 / epochs as f64;
    let optimized_epoch_ms = fast_s * 1e3 / epochs as f64;
    LstmBench {
        steps,
        input,
        hidden,
        epochs,
        naive_epoch_ms,
        optimized_epoch_ms,
        speedup: naive_epoch_ms / optimized_epoch_ms.max(1e-9),
    }
}

/// Runs both measurements and assembles the report.
#[must_use]
pub fn measure(trials: usize, epochs: usize) -> ParallelBenchReport {
    let host_threads = exec::resolve_threads(None);
    let note = if host_threads < 2 {
        "measured on a single-CPU host: the parallel speedup is not \
         observable here (expect ~1x); determinism is still asserted. \
         Re-run `cargo bench -p segscope-bench --bench bench_parallel` on \
         a multicore host for the >=2x engine speedup."
            .to_string()
    } else {
        format!("measured with {host_threads} worker threads")
    };
    ParallelBenchReport {
        host_threads,
        kaslr_engine: measure_engine(trials),
        lstm_kernels: measure_lstm(epochs),
        note,
    }
}

/// Serializes a report to JSON and writes it to `path`.
///
/// # Errors
///
/// Returns any filesystem error from the write.
pub fn write_report(report: &ParallelBenchReport, path: &str) -> std::io::Result<()> {
    let json = serde_json::to_string(report)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json + "\n")
}
