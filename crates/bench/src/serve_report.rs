//! Machine-readable performance report for the streaming serving engine
//! (`BENCH_serve.json`).
//!
//! The `bench_serve` target regenerates the file; it records host
//! wall-clock numbers, so absolute values vary by machine. The gates in
//! [`ServeBenchReport::validate`] are host-independent except the
//! batched-throughput bar, which arms only on multi-core hosts:
//!
//! - every f64 batched arm reproduces the sequential baseline's verdict
//!   stream bit for bit (FNV-folded) at every batch capacity — the
//!   serve crate's batch-parity contract, measured end to end,
//! - every quantized batched arm likewise matches its own sequential
//!   baseline,
//! - post-training quantization stays within the per-scheme
//!   accuracy-delta budget of the f64 model on a Table IV-style
//!   website-fingerprinting eval set,
//! - on multi-core hosts the widest batched arm serves sessions at
//!   least [`BATCHED_SERVE_MIN_SPEEDUP`]x faster than the recycled
//!   single-session baseline.

use nnet::{AdamConfig, SeqClassifier, SeqExample};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use segscope_attacks::website::{self, Browser, Setting, WebsiteFpConfig};
use serde::Serialize;
use serve::{
    serve_batched, serve_sequential, verdict_fnv, QuantScheme, QuantizedSeqClassifier, StepModel,
    Verdict,
};
use std::time::Instant;

/// Minimum accepted batched-vs-sequential session throughput speedup on
/// multi-core hosts (single-core hosts gate verdict identity alone —
/// lockstep lanes add no parallelism on one core).
pub const BATCHED_SERVE_MIN_SPEEDUP: f64 = 3.0;

/// Maximum accepted |accuracy(quantized) - accuracy(f64)| on the eval
/// set for the 15-bit `i16` scheme — the serving default, and the bar
/// the issue's acceptance criterion names.
pub const I16_MAX_ACCURACY_DELTA: f64 = 0.01;

/// Maximum accepted accuracy delta for the 7-bit `i8` scheme, whose
/// coarser weight grid may flip genuinely close calls.
pub const I8_MAX_ACCURACY_DELTA: f64 = 0.05;

/// Auxiliary seed stream for the bench's serving model, disjoint from
/// the website scenario's machine and visit streams.
const SERVE_BENCH_STREAM: u64 = 0x5EBE;

/// One batched serving measurement: a batch capacity on one precision.
#[derive(Debug, Clone, Serialize)]
pub struct ServeArm {
    /// Model precision: `f64` (the f32-weight reference classifier,
    /// named for its f64 accuracy contract) or a quantization scheme.
    pub precision: String,
    /// Lockstep lanes in the session batch.
    pub capacity: usize,
    /// Sessions served per run.
    pub sessions: usize,
    /// Total timesteps pushed across all sessions per run.
    pub steps: usize,
    /// Best-of-repeats wall-clock seconds for the run.
    pub wall_s: f64,
    /// Session throughput, completed sessions per second.
    pub sessions_per_s: f64,
    /// Speedup over the same precision's sequential baseline.
    pub speedup: f64,
    /// FNV-1a fold of the verdict stream in trace order.
    pub verdict_fnv: String,
}

/// The unbatched baseline: one recycled [`serve::StreamSession`]
/// serving every trace in order.
#[derive(Debug, Clone, Serialize)]
pub struct SequentialBaseline {
    /// Model precision the baseline ran on.
    pub precision: String,
    /// Best-of-repeats wall-clock seconds for the run.
    pub wall_s: f64,
    /// Session throughput, completed sessions per second.
    pub sessions_per_s: f64,
    /// FNV-1a fold of the verdict stream in trace order.
    pub verdict_fnv: String,
}

/// Post-training quantization accuracy versus the f64 model.
#[derive(Debug, Clone, Serialize)]
pub struct QuantArm {
    /// Quantization scheme name (`i8` or `i16`).
    pub scheme: String,
    /// Reference model accuracy on the eval set.
    pub f64_accuracy: f64,
    /// Quantized model accuracy on the same eval set.
    pub quant_accuracy: f64,
    /// `|quant_accuracy - f64_accuracy|`.
    pub accuracy_delta: f64,
    /// Eval-set size the accuracies were measured on.
    pub eval_examples: usize,
}

/// The full `BENCH_serve.json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchReport {
    /// Sessions served per arm.
    pub sessions: usize,
    /// Timesteps per session (the pooled sequence length).
    pub steps_per_session: usize,
    /// One arm per (precision, capacity) point.
    pub arms: Vec<ServeArm>,
    /// One recycled-session baseline per precision.
    pub sequential: Vec<SequentialBaseline>,
    /// One accuracy arm per quantization scheme.
    pub quant: Vec<QuantArm>,
    /// Worker threads the sharded batched arms ran with.
    pub threads: usize,
    /// Whether the host had more than one core (arms the speedup gate).
    pub multi_core: bool,
    /// Whether the run used the full scale (`SEGSCOPE_BENCH_FULL=1`).
    pub full_scale: bool,
    /// Human-readable caveat about the measurement host.
    pub note: String,
}

impl ServeBenchReport {
    /// Checks the invariants the CI gate relies on.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.arms.is_empty() {
            return Err("serve arms empty".into());
        }
        for precision in ["f64", "i16"] {
            if !self.arms.iter().any(|a| a.precision == precision) {
                return Err(format!("no batched arm at precision `{precision}`"));
            }
        }
        for baseline in &self.sequential {
            if baseline.sessions_per_s <= 0.0 {
                return Err(format!(
                    "sequential baseline `{}`: non-positive throughput",
                    baseline.precision
                ));
            }
        }
        for arm in &self.arms {
            if arm.sessions_per_s <= 0.0 {
                return Err(format!(
                    "arm `{}` capacity {}: non-positive throughput",
                    arm.precision, arm.capacity
                ));
            }
            let baseline = self
                .sequential
                .iter()
                .find(|b| b.precision == arm.precision)
                .ok_or_else(|| {
                    format!("no sequential baseline for precision `{}`", arm.precision)
                })?;
            if arm.verdict_fnv != baseline.verdict_fnv {
                return Err(format!(
                    "arm `{}` capacity {}: verdict stream diverged from the \
                     sequential baseline ({} vs {})",
                    arm.precision, arm.capacity, arm.verdict_fnv, baseline.verdict_fnv
                ));
            }
        }
        for quant in &self.quant {
            let bar = match quant.scheme.as_str() {
                "i16" => I16_MAX_ACCURACY_DELTA,
                _ => I8_MAX_ACCURACY_DELTA,
            };
            if quant.accuracy_delta > bar {
                return Err(format!(
                    "`{}` quantization drifted {:.3} in accuracy from the f64 \
                     model (bar {bar})",
                    quant.scheme, quant.accuracy_delta
                ));
            }
        }
        if self.multi_core {
            let best = self
                .arms
                .iter()
                .filter(|a| a.precision == "f64")
                .map(|a| a.speedup)
                .fold(f64::NEG_INFINITY, f64::max);
            if best < BATCHED_SERVE_MIN_SPEEDUP {
                return Err(format!(
                    "batched serving reached only {best:.2}x over the \
                     sequential baseline on a multi-core host \
                     (bar {BATCHED_SERVE_MIN_SPEEDUP}x)"
                ));
            }
        }
        Ok(())
    }
}

/// The trained model, its quantized variants' source data, and the
/// serving trace set the arms run over.
pub struct ServeWorkload {
    /// The f32-weight reference classifier, trained on the train split.
    pub model: SeqClassifier,
    /// Held-out eval split (the quantization accuracy set).
    pub eval: Vec<SeqExample>,
    /// Serving traces: eval sequences cycled up to the session count.
    pub traces: Vec<Vec<Vec<f32>>>,
    /// Timesteps per trace (the pooled sequence length).
    pub steps_per_session: usize,
}

/// Builds the Table IV-style workload: simulate website-fingerprinting
/// visit traces on the quick scenario scale, train the LSTM on the
/// train split (`train_per_site` traces per site), and keep
/// `eval_per_site` held-out traces per site as the quantization eval
/// set. The serving trace list cycles the eval sequences up to
/// `sessions` entries.
#[must_use]
pub fn build_workload(
    sessions: usize,
    train_per_site: usize,
    eval_per_site: usize,
    seed: u64,
) -> ServeWorkload {
    let mut config = WebsiteFpConfig::quick(Browser::Chrome, Setting::DifferentCores);
    config.seed = seed;
    let per_site = train_per_site + eval_per_site;
    let mut train = Vec::new();
    let mut eval = Vec::new();
    for site in 0..config.n_sites {
        for rep in 0..per_site {
            let visit = (site * per_site + rep) as u64;
            let trace =
                website::collect_trace(&config, site, exec::derive_seed(config.seed, visit));
            let example = website::trace_to_example(&trace, config.pooled_len, site);
            if rep < train_per_site {
                train.push(example);
            } else {
                eval.push(example);
            }
        }
    }
    let mut rng = SmallRng::seed_from_u64(exec::derive_seed(seed, SERVE_BENCH_STREAM));
    let mut model = SeqClassifier::new(
        2,
        config.hidden,
        config.n_sites,
        &mut rng,
        AdamConfig::default(),
    );
    for _ in 0..config.epochs {
        model.train_epoch(&train, 8);
    }
    let traces: Vec<Vec<Vec<f32>>> = (0..sessions)
        .map(|i| eval[i % eval.len()].xs.clone())
        .collect();
    ServeWorkload {
        model,
        eval,
        traces,
        steps_per_session: config.pooled_len,
    }
}

/// Serves `traces` through `threads` contiguous shards, each a
/// [`serve_batched`] batch of `capacity` lanes. Lanes never interact
/// across sessions (the batch-parity contract), and both the sharding
/// and [`serve_batched`] itself keep verdicts in trace order, so the
/// concatenated verdict stream is bit-identical to an unsharded run at
/// any shard count.
#[must_use]
pub fn serve_sharded<M: StepModel + Sync>(
    model: &M,
    traces: &[Vec<Vec<f32>>],
    capacity: usize,
    threads: usize,
) -> Vec<Verdict> {
    if threads <= 1 {
        return serve_batched(model, traces, capacity);
    }
    let per_shard = traces.len().div_ceil(threads).max(1);
    let shards: Vec<&[Vec<Vec<f32>>]> = traces.chunks(per_shard).collect();
    exec::parallel_map(shards.len(), threads, |i| {
        serve_batched(model, shards[i], capacity)
    })
    .into_iter()
    .flatten()
    .collect()
}

fn time_s<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

fn best_of<T>(repeats: usize, f: impl Fn() -> T) -> (f64, T) {
    // Warmup pass (page-in, allocator steady state) before the timed
    // repeats; keep the minimum wall-clock, the standard minimum-noise
    // estimator on shared hosts.
    let _ = f();
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeats.max(1) {
        let (s, value) = time_s(&f);
        best = best.min(s);
        out = Some(value);
    }
    (best, out.expect("at least one timed repeat"))
}

fn fnv_hex(verdicts: &[Verdict]) -> String {
    format!("{:#018x}", verdict_fnv(verdicts))
}

/// Measures the recycled single-session baseline for one precision.
#[must_use]
pub fn measure_sequential<M: StepModel + Sync>(
    model: &M,
    precision: &str,
    traces: &[Vec<Vec<f32>>],
    repeats: usize,
) -> SequentialBaseline {
    let (wall_s, verdicts) = best_of(repeats, || serve_sequential(model, traces));
    SequentialBaseline {
        precision: precision.to_string(),
        wall_s,
        sessions_per_s: traces.len() as f64 / wall_s.max(1e-9),
        verdict_fnv: fnv_hex(&verdicts),
    }
}

/// Measures one batched arm: the workload's traces served through
/// `threads` shards of `capacity` lockstep lanes each.
#[must_use]
pub fn measure_batched<M: StepModel + Sync>(
    model: &M,
    precision: &str,
    workload: &ServeWorkload,
    capacity: usize,
    threads: usize,
    repeats: usize,
    baseline_s: f64,
) -> ServeArm {
    let traces = &workload.traces;
    let (wall_s, verdicts) = best_of(repeats, || serve_sharded(model, traces, capacity, threads));
    ServeArm {
        precision: precision.to_string(),
        capacity,
        sessions: traces.len(),
        steps: traces.len() * workload.steps_per_session,
        wall_s,
        sessions_per_s: traces.len() as f64 / wall_s.max(1e-9),
        speedup: baseline_s / wall_s.max(1e-9),
        verdict_fnv: fnv_hex(&verdicts),
    }
}

/// Measures one quantization accuracy arm on the eval set.
#[must_use]
pub fn measure_quant_accuracy(
    model: &SeqClassifier,
    scheme: QuantScheme,
    eval: &[SeqExample],
) -> QuantArm {
    let quantized = QuantizedSeqClassifier::quantize(model, scheme);
    let f64_accuracy = model.accuracy(eval);
    let quant_accuracy = quantized.accuracy(eval);
    QuantArm {
        scheme: scheme.name().to_string(),
        f64_accuracy,
        quant_accuracy,
        accuracy_delta: (quant_accuracy - f64_accuracy).abs(),
        eval_examples: eval.len(),
    }
}

/// Serializes a report to JSON and writes it to `path`.
///
/// # Errors
///
/// Returns any filesystem error from the write.
pub fn write_report(report: &ServeBenchReport, path: &str) -> std::io::Result<()> {
    let json = serde_json::to_string(report)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_serving_is_shard_count_invariant() {
        let workload = build_workload(23, 2, 1, 0x5EBE_0001);
        let solo = serve_sharded(&workload.model, &workload.traces, 8, 1);
        let sharded = serve_sharded(&workload.model, &workload.traces, 8, 4);
        assert_eq!(solo, sharded, "sharding permuted or perturbed verdicts");
        assert_eq!(
            verdict_fnv(&solo),
            verdict_fnv(&serve_sequential(&workload.model, &workload.traces)),
            "batched verdict stream diverged from sequential",
        );
    }

    #[test]
    fn validate_enforces_every_gate() {
        let arm = |precision: &str, capacity: usize, speedup: f64, fnv: &str| ServeArm {
            precision: precision.into(),
            capacity,
            sessions: 64,
            steps: 64 * 64,
            wall_s: 0.1,
            sessions_per_s: 640.0,
            speedup,
            verdict_fnv: fnv.into(),
        };
        let baseline = |precision: &str, fnv: &str| SequentialBaseline {
            precision: precision.into(),
            wall_s: 0.4,
            sessions_per_s: 160.0,
            verdict_fnv: fnv.into(),
        };
        let good = ServeBenchReport {
            sessions: 64,
            steps_per_session: 64,
            arms: vec![
                arm("f64", 1, 1.0, "0xaa"),
                arm("f64", 64, 4.0, "0xaa"),
                arm("i16", 64, 4.0, "0xbb"),
            ],
            sequential: vec![baseline("f64", "0xaa"), baseline("i16", "0xbb")],
            quant: vec![QuantArm {
                scheme: "i16".into(),
                f64_accuracy: 0.9,
                quant_accuracy: 0.9,
                accuracy_delta: 0.0,
                eval_examples: 104,
            }],
            threads: 4,
            multi_core: true,
            full_scale: false,
            note: String::new(),
        };
        assert!(good.validate().is_ok());

        // A batched arm whose verdicts drift from its baseline fails.
        let mut divergent = good.clone();
        divergent.arms[1].verdict_fnv = "0xcc".into();
        assert!(divergent.validate().is_err());

        // The i16 accuracy budget is 1%; 5% only covers i8.
        let mut drifted = good.clone();
        drifted.quant[0].accuracy_delta = 0.02;
        assert!(drifted.validate().is_err());
        let mut coarse = good.clone();
        coarse.quant[0].scheme = "i8".into();
        coarse.quant[0].accuracy_delta = 0.02;
        assert!(coarse.validate().is_ok());

        // The 3x bar arms on multi-core hosts only.
        let mut slow = good.clone();
        for arm in &mut slow.arms {
            arm.speedup = 1.1;
        }
        assert!(slow.validate().is_err());
        let mut single = slow;
        single.multi_core = false;
        assert!(single.validate().is_ok());

        // Both required precisions must be present.
        let mut missing = good;
        missing.arms.retain(|a| a.precision == "f64");
        assert!(missing.validate().is_err());
    }
}
