//! Fleet-scale campaign engine: sharded, resumable parameter-grid
//! sweeps over the scenario registry.
//!
//! A campaign multiplies five axes — scenario set × machine preset ×
//! fault-plan grid × defense grid × replicate range — into a flat list of *cells*
//! ([`CampaignSpec::expand`]), runs every cell through the generic
//! scenario driver, and folds the per-cell results into one
//! [`CampaignReport`]. The engine stacks the workspace's determinism
//! primitives into a two-level geometry:
//!
//! * **Across cells** — cell `i`'s experiment seed is
//!   `exec::derive_seed(campaign_seed, i)`, a pure function of the spec,
//!   and progress is tracked by an [`exec::ChunkManifest`] over the cell
//!   axis with chunk size 1 (one chunk = one cell). Shards are wave
//!   width only: they decide how many cells run concurrently, never
//!   which seed a cell gets or where its result lands.
//! * **Within a cell** — the scenario driver's own chunked fan-out,
//!   whose outputs are thread-count invariant by the
//!   [`scenario::Scenario::run_batch`] chunk-geometry contract.
//!
//! Results fold through [`MergeReport`](scenario::MergeReport) fragments
//! ([`CellSet`], [`scenario::RunTotals`], [`segsim::FaultLog`]), so the
//! final report is a function of the *set* of cell results — not of the
//! shard count, thread count, wave order, or how many times the run was
//! killed and resumed. The workspace determinism battery
//! (`tests/campaign_determinism.rs`) pins exactly that: bit-identical
//! report JSON at any shard count × thread count × kill point.
//!
//! Resumability: [`run_campaign`] records each wave into a
//! [`CampaignManifest`] and hands it to a persist callback; a killed
//! campaign resumes by reloading the manifest and calling
//! [`run_campaign`] again, which executes only the missing cells. The
//! manifest carries the spec's FNV digest so it can never be resumed
//! under a different grid.

mod report;
mod spec;

pub use report::{CampaignReport, CellResult, CellSet, MatrixRow};
pub use spec::{
    inject_defense, inject_machine, CampaignCell, CampaignSpec, DefenseVariant, FaultVariant,
    ScenarioSel,
};

use scenario::{Registry, RunOptions};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors of the campaign layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// A spec names a scenario the registry does not have.
    UnknownScenario(String),
    /// A spec names a machine preset outside the Table I set.
    UnknownPreset(String),
    /// A cell's params (with the preset's machine injected) do not
    /// deserialize into the scenario's config type.
    Params {
        /// The scenario whose config rejected the params.
        scenario: String,
        /// The underlying deserialization message.
        message: String,
    },
    /// A grid axis is empty, so the spec expands to zero cells.
    EmptyAxis(&'static str),
    /// A manifest does not belong to the spec it was resumed under
    /// (digest or cell-axis geometry mismatch).
    SpecMismatch,
    /// A report was requested from an incomplete manifest.
    Incomplete {
        /// Cells completed so far.
        completed: usize,
        /// Total cells in the grid.
        total: usize,
    },
    /// A spec, manifest, or report failed to parse.
    Parse(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::UnknownScenario(name) => {
                write!(f, "unknown scenario `{name}` (see `segscope list`)")
            }
            CampaignError::UnknownPreset(name) => {
                write!(
                    f,
                    "unknown machine preset `{name}` (see `segscope machines`)"
                )
            }
            CampaignError::Params { scenario, message } => {
                write!(f, "invalid params for scenario `{scenario}`: {message}")
            }
            CampaignError::EmptyAxis(axis) => {
                write!(f, "campaign axis `{axis}` is empty — the grid has no cells")
            }
            CampaignError::SpecMismatch => write!(
                f,
                "manifest does not belong to this campaign spec (digest or geometry mismatch)"
            ),
            CampaignError::Incomplete { completed, total } => write!(
                f,
                "campaign is incomplete ({completed}/{total} cells) — resume it before reporting"
            ),
            CampaignError::Parse(msg) => write!(f, "campaign parse error: {msg}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Execution options of [`run_campaign`] — the schedule knobs that,
/// by the determinism contract, must never change the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignOptions {
    /// Cells run concurrently per wave (clamped to ≥ 1).
    pub shards: usize,
    /// Worker threads *within* each cell's scenario run (`None` = the
    /// driver's `SEGSCOPE_THREADS`-or-all-cores default).
    pub threads: Option<usize>,
    /// Stop (returning `Ok(None)`) after this many waves have been
    /// recorded and persisted — the deterministic kill switch the
    /// resume battery uses to cut a campaign at an arbitrary
    /// checkpoint.
    pub stop_after_waves: Option<usize>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            shards: 1,
            threads: None,
            stop_after_waves: None,
        }
    }
}

/// Progress record of a campaign: the spec's digest plus an
/// [`exec::ChunkManifest`] over the cell axis with chunk size 1.
///
/// Reusing the chunk manifest at the cell level means the campaign
/// inherits its invariants wholesale: completed cells are keyed by flat
/// index (shard-count invariant), `chunk_seeds(i)` yields exactly cell
/// `i`'s derived experiment seed, and geometry mismatches are detected
/// on resume. The digest adds the campaign-level guard the geometry
/// alone cannot give: two different grids can have equal cell counts
/// and seeds, but never an equal canonical-JSON fingerprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignManifest {
    /// FNV digest of the spec this manifest belongs to.
    pub spec_digest: u64,
    /// Per-cell progress: chunk index = flat cell index.
    pub cells: exec::ChunkManifest<CellResult>,
}

impl CampaignManifest {
    /// An empty manifest for `spec`'s grid.
    #[must_use]
    pub fn new(spec: &CampaignSpec) -> Self {
        CampaignManifest {
            spec_digest: spec.digest(),
            cells: exec::ChunkManifest::new(spec.seed, spec.cell_count(), 1),
        }
    }

    /// Whether this manifest belongs to `spec`: digest and cell-axis
    /// geometry both match.
    #[must_use]
    pub fn matches(&self, spec: &CampaignSpec) -> bool {
        self.spec_digest == spec.digest() && self.cells.matches(spec.seed, spec.cell_count(), 1)
    }

    /// Cells completed so far.
    #[must_use]
    pub fn completed_cells(&self) -> usize {
        self.cells.completed_chunks()
    }

    /// Total cells in the grid.
    #[must_use]
    pub fn total_cells(&self) -> usize {
        self.cells.total_chunks()
    }

    /// Whether every cell has completed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.cells.is_complete()
    }

    /// Flat indices of the cells still to run, ascending.
    #[must_use]
    pub fn remaining_cells(&self) -> Vec<usize> {
        self.cells.remaining_chunks()
    }

    /// Serializes the manifest to JSON (what the CLI persists after
    /// every wave).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("campaign manifests are serializable")
    }

    /// Parses a manifest from JSON.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Parse`] with the underlying message.
    pub fn from_json(json: &str) -> Result<Self, CampaignError> {
        serde_json::from_str(json).map_err(|e| CampaignError::Parse(e.to_string()))
    }
}

/// Runs one expanded cell through the generic scenario driver.
///
/// The cell's params and scenario name were validated by
/// [`CampaignSpec::expand`] before any cell ran, so a failure here is a
/// registry/spec drift bug, not a user error — it panics rather than
/// poisoning the manifest with a half-recorded wave.
#[must_use]
pub fn run_cell(registry: &Registry, cell: &CampaignCell, threads: Option<usize>) -> CellResult {
    let entry = registry
        .get(&cell.scenario)
        .expect("cell scenarios are validated at expansion");
    let opts = RunOptions {
        seed: Some(cell.seed),
        trials: cell.trials,
        threads,
        capacity: 0,
        fault_plan: cell.fault_plan,
    };
    let run = entry
        .run_dyn(Some(&cell.params), &opts)
        .expect("cell params are validated at expansion");
    CellResult {
        index: cell.index,
        scenario: cell.scenario.clone(),
        preset: cell.preset.clone(),
        fault: cell.fault.clone(),
        defense: cell.defense.clone(),
        replicate: cell.replicate,
        report: run.report,
        totals: run.totals,
        fault_log: run.fault_log,
    }
}

/// Executes (or resumes) a campaign: runs the manifest's missing cells
/// in shard-wide waves, persisting after every wave.
///
/// Returns `Ok(Some(report))` when the campaign completed,
/// `Ok(None)` when `opts.stop_after_waves` cut it short (the manifest
/// holds the progress; call again to resume).
///
/// Determinism: cell seeds and indices come from the spec alone, each
/// cell's run is thread-count invariant, and the final fold is a
/// [`MergeReport`](scenario::MergeReport) over the completed cell set —
/// so the report is bit-identical at any `shards` × `threads` × kill
/// schedule.
///
/// # Errors
///
/// Expansion errors ([`CampaignError::UnknownScenario`] /
/// [`CampaignError::UnknownPreset`] / [`CampaignError::Params`] /
/// [`CampaignError::EmptyAxis`]) and [`CampaignError::SpecMismatch`]
/// when `manifest` does not belong to `spec`.
pub fn run_campaign<P>(
    registry: &Registry,
    spec: &CampaignSpec,
    opts: &CampaignOptions,
    manifest: &mut CampaignManifest,
    mut persist: P,
) -> Result<Option<CampaignReport>, CampaignError>
where
    P: FnMut(&CampaignManifest),
{
    let cells = spec.expand(registry)?;
    if !manifest.matches(spec) {
        return Err(CampaignError::SpecMismatch);
    }
    let shards = opts.shards.max(1);
    let missing = manifest.remaining_cells();
    for (wave_index, wave) in missing.chunks(shards).enumerate() {
        let results = exec::parallel_map(wave.len(), shards, |k| {
            let cell = &cells[wave[k]];
            debug_assert_eq!(
                manifest.cells.chunk_seeds(cell.index),
                vec![cell.seed],
                "cell seed must agree between spec expansion and manifest geometry"
            );
            run_cell(registry, cell, opts.threads)
        });
        for (k, result) in results.into_iter().enumerate() {
            manifest.cells.record_chunk(wave[k], vec![result]);
        }
        persist(manifest);
        if let Some(stop) = opts.stop_after_waves {
            if wave_index + 1 >= stop && !manifest.is_complete() {
                return Ok(None);
            }
        }
    }
    report_from_manifest(spec, manifest).map(Some)
}

/// Folds a complete manifest into the final [`CampaignReport`].
///
/// The fold goes through [`CellSet`] singletons — the same commutative
/// merge any shard grouping produces — so this function is the single
/// reporting path for fresh runs, resumes, and `campaign report` on a
/// previously persisted manifest.
///
/// # Errors
///
/// [`CampaignError::SpecMismatch`] when `manifest` does not belong to
/// `spec`, [`CampaignError::Incomplete`] when cells are still missing.
pub fn report_from_manifest(
    spec: &CampaignSpec,
    manifest: &CampaignManifest,
) -> Result<CampaignReport, CampaignError> {
    use scenario::MergeReport;
    if !manifest.matches(spec) {
        return Err(CampaignError::SpecMismatch);
    }
    if !manifest.is_complete() {
        return Err(CampaignError::Incomplete {
            completed: manifest.completed_cells(),
            total: manifest.total_cells(),
        });
    }
    let set = CellSet::merged(
        manifest
            .cells
            .clone()
            .into_outputs()
            .into_iter()
            .map(CellSet::singleton),
    );
    Ok(CampaignReport::from_cells(
        &spec.name,
        spec.seed,
        manifest.spec_digest,
        set.into_ordered(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenario::{DynScenario, Scenario, TrialCtx};
    use segsim::{FaultPlan, Machine, MachineConfig};
    use serde::Value;

    /// A fast probe scenario whose output depends on the machine config,
    /// so the preset axis is observable in the results.
    struct GridProbe;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct GridProbeConfig {
        machine: MachineConfig,
        spins: u64,
    }

    impl Default for GridProbeConfig {
        fn default() -> Self {
            GridProbeConfig {
                machine: MachineConfig::xiaomi_air13(),
                spins: 60_000_000,
            }
        }
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct GridProbeSummary {
        samples: Vec<u64>,
    }

    impl Scenario for GridProbe {
        type Config = GridProbeConfig;
        type TrialOutput = u64;
        type Summary = GridProbeSummary;

        fn name(&self) -> &'static str {
            "grid_probe"
        }

        fn describe(&self) -> &'static str {
            "campaign self-test scenario"
        }

        fn experiment_seed(&self, _config: &GridProbeConfig, requested: Option<u64>) -> u64 {
            requested.unwrap_or(0xCA4B)
        }

        fn trial_count(&self, _config: &GridProbeConfig, requested: Option<usize>) -> usize {
            requested.unwrap_or(2)
        }

        fn build_machine(&self, config: &GridProbeConfig, ctx: &TrialCtx) -> Machine {
            Machine::new(config.machine.clone(), ctx.seed)
        }

        fn run_trial(
            &self,
            config: &GridProbeConfig,
            machine: &mut Machine,
            ctx: &TrialCtx,
        ) -> u64 {
            machine.spin(config.spins.max(1_000_000));
            u64::from(machine.rdgs().bits()) ^ ctx.seed
        }

        fn summarize(&self, _config: &GridProbeConfig, outputs: &[u64]) -> GridProbeSummary {
            GridProbeSummary {
                samples: outputs.to_vec(),
            }
        }
    }

    static PROBES: [&dyn DynScenario; 1] = [&GridProbe];

    fn probe_registry() -> Registry {
        Registry::new(&PROBES)
    }

    fn small_spec() -> CampaignSpec {
        CampaignSpec {
            name: "unit".to_owned(),
            seed: 0xC0FF_EE00,
            scenarios: vec![ScenarioSel::named("grid_probe")],
            presets: vec!["xiaomi_air13".to_owned(), "amazon_t2_large".to_owned()],
            faults: vec![
                FaultVariant::none(),
                FaultVariant {
                    name: "delivery_storm".to_owned(),
                    plan: Some(FaultPlan::delivery_storm()),
                },
            ],
            defenses: vec![DefenseVariant::none()],
            replicates: 2,
            trials: Some(2),
        }
    }

    #[test]
    fn expansion_is_a_pure_function_of_the_spec() {
        let spec = small_spec();
        let cells = spec.expand(&probe_registry()).expect("valid spec");
        assert_eq!(cells.len(), spec.cell_count());
        assert_eq!(cells.len(), 8);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.seed, exec::derive_seed(spec.seed, i as u64));
        }
        // Fixed nesting: scenario → preset → fault → replicate.
        assert_eq!(
            (
                cells[0].preset.as_str(),
                cells[0].fault.as_str(),
                cells[0].replicate
            ),
            ("xiaomi_air13", "none", 0)
        );
        assert_eq!(cells[1].replicate, 1);
        assert_eq!(cells[2].fault, "delivery_storm");
        assert_eq!(cells[4].preset, "amazon_t2_large");
        // The preset's machine is injected into every cell's params.
        for cell in &cells {
            let config = GridProbeConfig::from_value(&cell.params).expect("params deserialize");
            let expected = segsim::presets::by_name(&cell.preset).expect("known preset");
            assert_eq!(config.machine, expected);
        }
        // Same spec, same cells.
        assert_eq!(cells, spec.expand(&probe_registry()).expect("valid spec"));
    }

    #[test]
    fn expansion_rejects_bad_axes_up_front() {
        let registry = probe_registry();
        let mut empty = small_spec();
        empty.faults.clear();
        assert_eq!(
            empty.expand(&registry),
            Err(CampaignError::EmptyAxis("faults"))
        );
        let mut unknown = small_spec();
        unknown.scenarios[0].scenario = "nope".to_owned();
        assert_eq!(
            unknown.expand(&registry),
            Err(CampaignError::UnknownScenario("nope".to_owned()))
        );
        let mut preset = small_spec();
        preset.presets[0] = "commodore64".to_owned();
        assert_eq!(
            preset.expand(&registry),
            Err(CampaignError::UnknownPreset("commodore64".to_owned()))
        );
        let mut params = small_spec();
        params.scenarios[0].params = Some(Value::Map(vec![(
            "spins".to_owned(),
            Value::Str("many".to_owned()),
        )]));
        assert!(matches!(
            params.expand(&registry),
            Err(CampaignError::Params { .. })
        ));
    }

    fn run_at(shards: usize, threads: usize) -> CampaignReport {
        let spec = small_spec();
        let mut manifest = CampaignManifest::new(&spec);
        let opts = CampaignOptions {
            shards,
            threads: Some(threads),
            stop_after_waves: None,
        };
        run_campaign(&probe_registry(), &spec, &opts, &mut manifest, |_| {})
            .expect("campaign runs")
            .expect("campaign completes")
    }

    #[test]
    fn reports_are_bit_identical_across_shard_and_thread_counts() {
        let reference = run_at(1, 1);
        assert_eq!(reference.cells, 8);
        assert_eq!(reference.totals.trials, 16, "8 cells x 2 trials");
        assert_eq!(reference.matrix.len(), 2, "one row per (scenario, preset)");
        assert!(
            reference.fault_log.delivery_faults() > 0,
            "the delivery_storm axis must inject faults"
        );
        let reference_json = reference.to_json();
        for (shards, threads) in [(3, 1), (8, 2), (2, 4)] {
            assert_eq!(
                run_at(shards, threads).to_json(),
                reference_json,
                "shards {shards} x threads {threads}"
            );
        }
    }

    #[test]
    fn kill_and_resume_round_trips_through_json_bit_identically() {
        let spec = small_spec();
        let registry = probe_registry();
        let reference = run_at(1, 1);
        // With 8 cells in waves of 3 shards, waves 1 and 2 leave work
        // behind; a stop bound past the last wave must complete instead.
        for kill_after in 1..3 {
            let mut manifest = CampaignManifest::new(&spec);
            let mut persisted = String::new();
            let first = run_campaign(
                &registry,
                &spec,
                &CampaignOptions {
                    shards: 3,
                    threads: Some(1),
                    stop_after_waves: Some(kill_after),
                },
                &mut manifest,
                |m| persisted = m.to_json(),
            )
            .expect("first leg runs");
            assert!(first.is_none(), "stop_after_waves cuts the run short");
            // Resume from the persisted JSON, not the in-memory manifest —
            // the round trip is part of the contract.
            let mut revived = CampaignManifest::from_json(&persisted).expect("parses");
            assert_eq!(revived.completed_cells(), (kill_after * 3).min(8));
            let resumed = run_campaign(
                &registry,
                &spec,
                &CampaignOptions {
                    shards: 2,
                    threads: Some(2),
                    stop_after_waves: None,
                },
                &mut revived,
                |_| {},
            )
            .expect("resume runs")
            .expect("resume completes");
            assert_eq!(
                resumed.to_json(),
                reference.to_json(),
                "kill after wave {kill_after}"
            );
        }
        let mut manifest = CampaignManifest::new(&spec);
        let finished = run_campaign(
            &registry,
            &spec,
            &CampaignOptions {
                shards: 3,
                threads: Some(1),
                stop_after_waves: Some(3),
            },
            &mut manifest,
            |_| {},
        )
        .expect("runs");
        assert_eq!(
            finished
                .expect("a stop bound past the last wave completes")
                .to_json(),
            reference.to_json()
        );
    }

    #[test]
    fn manifests_guard_against_spec_drift_and_incompleteness() {
        let spec = small_spec();
        let registry = probe_registry();
        let mut manifest = CampaignManifest::new(&spec);
        // A different grid (even one with the same seed and cell count)
        // has a different digest and is rejected.
        let mut drifted = spec.clone();
        drifted.faults[1].name = "renamed".to_owned();
        assert_eq!(drifted.cell_count(), spec.cell_count());
        assert_eq!(
            run_campaign(
                &registry,
                &drifted,
                &CampaignOptions::default(),
                &mut manifest,
                |_| {}
            ),
            Err(CampaignError::SpecMismatch)
        );
        // Reporting an incomplete manifest is an error, not a partial
        // report.
        assert_eq!(
            report_from_manifest(&spec, &manifest),
            Err(CampaignError::Incomplete {
                completed: 0,
                total: 8
            })
        );
    }

    #[test]
    fn cells_match_standalone_driver_runs() {
        let spec = small_spec();
        let registry = probe_registry();
        let cells = spec.expand(&registry).expect("valid spec");
        let report = run_at(4, 1);
        for (cell, result) in cells.iter().zip(&report.cell_results) {
            let standalone = registry
                .get(&cell.scenario)
                .expect("registered")
                .run_dyn(
                    Some(&cell.params),
                    &RunOptions {
                        seed: Some(cell.seed),
                        trials: cell.trials,
                        threads: Some(1),
                        capacity: 0,
                        fault_plan: cell.fault_plan,
                    },
                )
                .expect("standalone run");
            assert_eq!(result.report, standalone.report, "cell {}", cell.index);
            assert_eq!(result.totals, standalone.totals, "cell {}", cell.index);
            assert_eq!(
                result.fault_log, standalone.fault_log,
                "cell {}",
                cell.index
            );
        }
    }

    #[test]
    fn defense_axis_expands_in_order_and_injects_into_the_machine() {
        use segsim::Defense;
        let mut spec = small_spec();
        spec.presets.truncate(1);
        spec.faults.truncate(1);
        spec.replicates = 1;
        spec.defenses = DefenseVariant::all();
        let cells = spec.expand(&probe_registry()).expect("valid spec");
        assert_eq!(cells.len(), 3);
        assert_eq!(
            cells.iter().map(|c| c.defense.as_str()).collect::<Vec<_>>(),
            ["none", "quanshield", "padding"]
        );
        for (cell, expected) in cells.iter().zip([
            Defense::None,
            Defense::QuanShield,
            Defense::default_padding(),
        ]) {
            let config = GridProbeConfig::from_value(&cell.params).expect("params deserialize");
            assert_eq!(config.machine.defense, expected, "cell {}", cell.index);
        }
    }

    #[test]
    fn pre_defense_spec_json_parses_with_the_none_axis() {
        // A spec serialized before the defense axis existed has no
        // `defenses` key; it must parse to the single-entry [none] axis
        // and expand to the exact pre-defense cell indices and seeds.
        let spec = small_spec();
        let json = spec.to_json();
        let legacy = json.replace(
            "\"defenses\":[{\"name\":\"none\",\"defense\":\"None\"}],",
            "",
        );
        assert_ne!(legacy, json, "the defenses key must have been stripped");
        let parsed = CampaignSpec::from_json(&legacy).expect("legacy specs parse");
        assert_eq!(parsed.defenses, vec![DefenseVariant::none()]);
        let registry = probe_registry();
        assert_eq!(
            parsed.expand(&registry).expect("valid"),
            spec.expand(&registry).expect("valid"),
            "cell geometry, seeds, and params are unchanged"
        );
    }

    #[test]
    fn specs_round_trip_through_json_and_digest_is_content_sensitive() {
        let spec = small_spec();
        let json = spec.to_json();
        let back = CampaignSpec::from_json(&json).expect("parses");
        assert_eq!(back, spec);
        assert_eq!(back.digest(), spec.digest());
        let mut other = spec.clone();
        other.seed ^= 1;
        assert_ne!(other.digest(), spec.digest());
        assert!(CampaignSpec::from_json("{").is_err());
    }
}
