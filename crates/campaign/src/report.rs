//! Campaign results: per-cell records, the commutative cell-set fold,
//! and the merged [`CampaignReport`].
//!
//! Shards produce [`CellResult`]s in whatever order the scheduler
//! dictates; the fold into a final report must not care. [`CellSet`]
//! makes the fold a [`MergeReport`]: each result becomes a singleton
//! fragment keyed by its flat cell index, fragments merge by disjoint
//! map union (commutative and associative, with the empty set as
//! identity), and the ordered cell list — hence the serialized report —
//! falls out of the `BTreeMap`'s ascending-key iteration no matter how
//! the fragments were grouped or folded. That is the entire
//! merge-order-independence argument: *the report is a function of the
//! set of cell results, and set union does not remember arrival order.*

use scenario::{MergeReport, RunReport, RunTotals};
use segsim::FaultLog;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The outcome of one campaign cell: its grid coordinate plus the full
/// scenario-level run report and the foldable accounting fragments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Flat cell index in the spec's expansion order.
    pub index: usize,
    /// Scenario registry name.
    pub scenario: String,
    /// Machine preset name.
    pub preset: String,
    /// Fault-variant label.
    pub fault: String,
    /// Defense-variant label.
    pub defense: String,
    /// Replicate number within the coordinate.
    pub replicate: u64,
    /// The scenario-level report (seed, trials, params, summary) — the
    /// same record a standalone `segscope run` emits for this cell.
    pub report: RunReport,
    /// Additive totals of the cell's run.
    pub totals: RunTotals,
    /// Fault-injection audit counters merged across the cell's trials.
    pub fault_log: FaultLog,
}

/// A mergeable set of cell results keyed by flat cell index — the
/// [`MergeReport`] fragment one shard (or one cell) contributes.
///
/// Merging is map union. For fragments with disjoint keys — the only
/// kind a correctly sharded campaign produces, since every cell index
/// is computed exactly once — union is commutative and associative with
/// [`CellSet::empty`] as identity, so any partition of the cells into
/// shards, folded in any order, yields the same set. On a key collision
/// the first-merged value wins; colliding fragments that disagree
/// indicate a resume against the wrong manifest, which the
/// spec-digest check rejects before any fold happens.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellSet {
    cells: BTreeMap<usize, CellResult>,
}

impl CellSet {
    /// The fragment one cell contributes.
    #[must_use]
    pub fn singleton(cell: CellResult) -> Self {
        let mut cells = BTreeMap::new();
        cells.insert(cell.index, cell);
        CellSet { cells }
    }

    /// Number of distinct cells in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cells in ascending flat-index order.
    #[must_use]
    pub fn into_ordered(self) -> Vec<CellResult> {
        self.cells.into_values().collect()
    }
}

impl MergeReport for CellSet {
    fn empty() -> Self {
        CellSet::default()
    }

    fn merge(&mut self, other: &Self) {
        for (index, cell) in &other.cells {
            self.cells.entry(*index).or_insert_with(|| cell.clone());
        }
    }
}

/// One row of the campaign's summary matrix: the fold of every cell at
/// a `(scenario, preset, defense)` coordinate, across fault variants
/// and replicates — the attack × defense matrix, one preset at a time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixRow {
    /// Scenario registry name.
    pub scenario: String,
    /// Machine preset name.
    pub preset: String,
    /// Defense-variant label.
    pub defense: String,
    /// Cells folded into this row.
    pub cells: u64,
    /// Trials across those cells.
    pub trials: u64,
    /// Ground-truth interrupt deliveries across those cells.
    pub ground_truth_deliveries: u64,
    /// Delivery faults (dropped + duplicated + coalesced) injected.
    pub delivery_faults: u64,
    /// Timing faults (jitter + bursts + clamps) injected.
    pub timing_faults: u64,
    /// Mean of the cells' summary `accuracy` field, when the scenario
    /// reports one (`None` otherwise) — the matrix's headline number.
    pub mean_accuracy: Option<f64>,
    /// Cells contributing to [`mean_accuracy`](Self::mean_accuracy).
    pub accuracy_cells: u64,
}

/// Extracts the `accuracy` field from a cell's serialized summary, when
/// the scenario reports one as a number.
fn summary_accuracy(cell: &CellResult) -> Option<f64> {
    let serde::Value::Map(entries) = &cell.report.summary else {
        return None;
    };
    match entries.iter().find(|(k, _)| k == "accuracy") {
        Some((_, serde::Value::Float(x))) => Some(*x),
        Some((_, serde::Value::Int(i))) => Some(*i as f64),
        _ => None,
    }
}

/// The merged outcome of a whole campaign: run-level accounting, the
/// per-(scenario, preset) summary matrix, and every cell's full report.
///
/// Deliberately excludes the shard count, thread count, and everything
/// else schedule-dependent, so serialized reports are byte-identical at
/// any execution geometry — the campaign determinism contract the test
/// battery pins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign label from the spec.
    pub name: String,
    /// The campaign seed all cell seeds derive from.
    pub seed: u64,
    /// Digest of the spec this report belongs to.
    pub spec_digest: u64,
    /// Total cells in the grid.
    pub cells: usize,
    /// Additive totals merged across all cells.
    pub totals: RunTotals,
    /// Fault audit counters merged across all cells.
    pub fault_log: FaultLog,
    /// Per-(scenario, preset) summary rows, in grid order.
    pub matrix: Vec<MatrixRow>,
    /// Every cell's result, in ascending flat-index order.
    pub cell_results: Vec<CellResult>,
}

impl CampaignReport {
    /// Folds a complete, ordered cell list into the final report.
    ///
    /// The matrix groups rows by `(scenario, preset, defense)` in order
    /// of first appearance, which — cells arriving in flat-index order —
    /// is the spec's own axis order.
    #[must_use]
    pub fn from_cells(
        name: &str,
        seed: u64,
        spec_digest: u64,
        cell_results: Vec<CellResult>,
    ) -> Self {
        let totals = RunTotals::merged(cell_results.iter().map(|c| c.totals));
        let fault_log = FaultLog::merged(cell_results.iter().map(|c| c.fault_log));
        let mut matrix: Vec<MatrixRow> = Vec::new();
        for cell in &cell_results {
            let row = match matrix.iter_mut().find(|r| {
                r.scenario == cell.scenario && r.preset == cell.preset && r.defense == cell.defense
            }) {
                Some(row) => row,
                None => {
                    matrix.push(MatrixRow {
                        scenario: cell.scenario.clone(),
                        preset: cell.preset.clone(),
                        defense: cell.defense.clone(),
                        cells: 0,
                        trials: 0,
                        ground_truth_deliveries: 0,
                        delivery_faults: 0,
                        timing_faults: 0,
                        mean_accuracy: None,
                        accuracy_cells: 0,
                    });
                    matrix.last_mut().expect("just pushed")
                }
            };
            row.cells += 1;
            row.trials += cell.totals.trials;
            row.ground_truth_deliveries += cell.totals.ground_truth_deliveries;
            row.delivery_faults += cell.fault_log.delivery_faults();
            row.timing_faults += cell.fault_log.timing_faults();
            if let Some(acc) = summary_accuracy(cell) {
                // Incremental mean keeps the fold single-pass; cells
                // arrive in ascending flat-index order, so the result is
                // schedule-independent.
                let n = row.accuracy_cells as f64;
                let mean = row.mean_accuracy.unwrap_or(0.0);
                row.mean_accuracy = Some((mean * n + acc) / (n + 1.0));
                row.accuracy_cells += 1;
            }
        }
        CampaignReport {
            name: name.to_owned(),
            seed,
            spec_digest,
            cells: cell_results.len(),
            totals,
            fault_log,
            matrix,
            cell_results,
        }
    }

    /// Serializes the report to JSON (the byte-comparable form the
    /// determinism battery pins).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("campaign reports are serializable")
    }

    /// Parses a report from JSON.
    ///
    /// # Errors
    ///
    /// [`crate::CampaignError::Parse`] with the underlying message.
    pub fn from_json(json: &str) -> Result<Self, crate::CampaignError> {
        serde_json::from_str(json).map_err(|e| crate::CampaignError::Parse(e.to_string()))
    }
}
