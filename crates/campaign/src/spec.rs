//! The declarative campaign grid: what to sweep, and its expansion
//! into a flat, stably-indexed cell list.
//!
//! A [`CampaignSpec`] names five axes — scenarios, machine presets,
//! fault-plan variants, countermeasure ([`Defense`]) variants, and a
//! replicate (seed) range — plus the campaign seed every cell seed
//! derives from. [`CampaignSpec::expand`] multiplies the axes out into
//! [`CampaignCell`]s in a fixed nesting order (scenario, outermost →
//! preset → fault → defense → replicate, innermost), so a cell's flat
//! index — and therefore its derived experiment seed
//! `exec::derive_seed(campaign_seed, index)` — depends only on the spec,
//! never on how the cells are later sharded or scheduled.
//!
//! Backwards compatibility: the defense axis deserializes permissively —
//! a spec JSON without a `defenses` key parses as the single-entry
//! `[none]` axis, which keeps every pre-defense cell index, seed, and
//! derived result unchanged.

use scenario::Registry;
use segsim::{Defense, FaultPlan};
use serde::{Deserialize, Serialize, Value};

use crate::CampaignError;

/// One entry of the scenario axis: a registry name plus an optional
/// params override (`None` = the scenario's defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSel {
    /// Registry name of the scenario (`segscope list --names`).
    pub scenario: String,
    /// Params override; `None` uses the scenario's default config.
    pub params: Option<Value>,
}

impl ScenarioSel {
    /// Selects `scenario` with its default params.
    #[must_use]
    pub fn named(scenario: &str) -> Self {
        ScenarioSel {
            scenario: scenario.to_owned(),
            params: None,
        }
    }
}

/// One entry of the fault axis: a label plus the fault plan it installs
/// (`None` = the unfaulted baseline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultVariant {
    /// Label used in cell keys and the report matrix.
    pub name: String,
    /// The run-level fault-plan override; `None` leaves the scenario's
    /// own wiring in place.
    pub plan: Option<FaultPlan>,
}

impl FaultVariant {
    /// The unfaulted baseline variant.
    #[must_use]
    pub fn none() -> Self {
        FaultVariant {
            name: "none".to_owned(),
            plan: None,
        }
    }
}

/// One entry of the defense axis: a label plus the countermeasure it
/// configures on every cell machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseVariant {
    /// Label used in cell keys and the report matrix.
    pub name: String,
    /// The countermeasure installed on the cell's machine config.
    pub defense: Defense,
}

impl DefenseVariant {
    /// The undefended baseline variant.
    #[must_use]
    pub fn none() -> Self {
        DefenseVariant {
            name: "none".to_owned(),
            defense: Defense::None,
        }
    }

    /// The QuanShield self-destruct variant.
    #[must_use]
    pub fn quanshield() -> Self {
        DefenseVariant {
            name: "quanshield".to_owned(),
            defense: Defense::QuanShield,
        }
    }

    /// The deterministic-padding variant (default grid).
    #[must_use]
    pub fn padding() -> Self {
        DefenseVariant {
            name: "padding".to_owned(),
            defense: Defense::default_padding(),
        }
    }

    /// The canonical three-variant defense axis (none / quanshield /
    /// padding) the attack × defense matrix sweeps.
    #[must_use]
    pub fn all() -> Vec<Self> {
        vec![
            DefenseVariant::none(),
            DefenseVariant::quanshield(),
            DefenseVariant::padding(),
        ]
    }
}

/// A declarative parameter grid: scenario set × machine preset ×
/// fault-plan grid × defense grid × replicate (seed) range.
///
/// Serde-loadable (the `segscope campaign` CLI reads it as JSON);
/// every field except `defenses` is required in the serialized form
/// (`defenses` defaults to the single-entry `[none]` axis so
/// pre-defense specs keep their exact cell geometry), and `segscope
/// campaign spec` emits a complete template to start from.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CampaignSpec {
    /// Human label of the campaign (report header).
    pub name: String,
    /// The campaign seed every cell's experiment seed derives from via
    /// `exec::derive_seed(seed, cell_index)`.
    pub seed: u64,
    /// Scenario axis, in sweep order.
    pub scenarios: Vec<ScenarioSel>,
    /// Machine-preset axis (Table I names, `segsim::presets::NAMES`).
    pub presets: Vec<String>,
    /// Fault-plan axis.
    pub faults: Vec<FaultVariant>,
    /// Defense (countermeasure) axis. Deserializes to `[none]` when the
    /// spec JSON has no `defenses` key.
    pub defenses: Vec<DefenseVariant>,
    /// Replicate axis: how many independently-seeded repetitions of
    /// every (scenario, preset, fault, defense) combination to run
    /// (≥ 1).
    pub replicates: u64,
    /// Per-cell trial-count override (`None` = each scenario's default;
    /// structured scenarios ignore it either way).
    pub trials: Option<usize>,
}

// Hand-written so a pre-defense spec (no `defenses` key) still parses:
// the vendored serde derive would demand every field. All other fields
// stay required, exactly as the derive would have them.
impl Deserialize for CampaignSpec {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let map = value.as_map()?;
        let field = |name: &str| serde::get_field(map, name);
        Ok(CampaignSpec {
            name: Deserialize::from_value(field("name")?)?,
            seed: Deserialize::from_value(field("seed")?)?,
            scenarios: Deserialize::from_value(field("scenarios")?)?,
            presets: Deserialize::from_value(field("presets")?)?,
            faults: Deserialize::from_value(field("faults")?)?,
            defenses: match map.iter().find(|(k, _)| k == "defenses") {
                Some((_, v)) => Deserialize::from_value(v)?,
                None => vec![DefenseVariant::none()],
            },
            replicates: Deserialize::from_value(field("replicates")?)?,
            trials: Deserialize::from_value(field("trials")?)?,
        })
    }
}

impl CampaignSpec {
    /// The paper's full cross-vendor evaluation grid: all eleven
    /// registered scenarios × all six Table I vendor presets × the
    /// three canonical fault regimes (none / delivery storm / timing
    /// storm), undefended, one replicate each.
    #[must_use]
    pub fn full_grid(seed: u64) -> Self {
        CampaignSpec {
            name: "full-grid".to_owned(),
            seed,
            scenarios: [
                "website",
                "circl",
                "dnnsteal",
                "spectral",
                "kaslr",
                "spectre",
                "keystroke",
                "covert",
                "procfp",
                "aexcount",
                "heckler",
            ]
            .iter()
            .map(|n| ScenarioSel::named(n))
            .collect(),
            presets: segsim::presets::NAMES
                .iter()
                .map(|&n| n.to_owned())
                .collect(),
            faults: vec![
                FaultVariant::none(),
                FaultVariant {
                    name: "delivery_storm".to_owned(),
                    plan: Some(FaultPlan::delivery_storm()),
                },
                FaultVariant {
                    name: "timing_storm".to_owned(),
                    plan: Some(FaultPlan::timing_storm()),
                },
            ],
            defenses: vec![DefenseVariant::none()],
            replicates: 1,
            trials: None,
        }
    }

    /// The attack × defense matrix: the enclave-sensitive scenarios
    /// (aexcount, heckler, keystroke) × the unfaulted baseline × the
    /// full defense axis (none / quanshield / padding).
    #[must_use]
    pub fn defense_matrix(seed: u64) -> Self {
        CampaignSpec {
            name: "defense-matrix".to_owned(),
            seed,
            scenarios: ["aexcount", "heckler", "keystroke"]
                .iter()
                .map(|n| ScenarioSel::named(n))
                .collect(),
            presets: vec!["xiaomi_air13".to_owned()],
            faults: vec![FaultVariant::none()],
            defenses: DefenseVariant::all(),
            replicates: 1,
            trials: None,
        }
    }

    /// Total number of cells the grid expands to.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.scenarios.len()
            * self.presets.len()
            * self.faults.len()
            * self.defenses.len()
            * (self.replicates.max(1) as usize)
    }

    /// Serializes the spec to JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("campaign specs are serializable")
    }

    /// Parses a spec from JSON.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Parse`] with the underlying message.
    pub fn from_json(json: &str) -> Result<Self, CampaignError> {
        serde_json::from_str(json).map_err(|e| CampaignError::Parse(e.to_string()))
    }

    /// An order-sensitive FNV-1a digest of the canonical (re-serialized)
    /// spec JSON: the resume-safety fingerprint a
    /// [`CampaignManifest`](crate::CampaignManifest) carries so a
    /// manifest cut for one grid can never be resumed under another.
    #[must_use]
    pub fn digest(&self) -> u64 {
        const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_BASIS;
        for byte in self.to_json().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }

    /// Expands the grid into its flat cell list, validating every axis
    /// entry against `registry` and the preset table up front — so a
    /// long sweep cannot die on a typo after hours of work.
    ///
    /// Nesting order is fixed (scenario → preset → fault → defense →
    /// replicate) and cell `index` is the flat position, so indices and
    /// derived seeds are a pure function of the spec. A single-entry
    /// `[none]` defense axis reproduces the pre-defense flat indices
    /// (and seeds) exactly.
    ///
    /// # Errors
    ///
    /// [`CampaignError::EmptyAxis`] on an empty axis,
    /// [`CampaignError::UnknownScenario`] / `UnknownPreset` on a name
    /// that does not resolve, and [`CampaignError::Params`] when a
    /// params override (with the preset's machine and the variant's
    /// defense injected) does not deserialize into the scenario's
    /// config.
    pub fn expand(&self, registry: &Registry) -> Result<Vec<CampaignCell>, CampaignError> {
        for (axis, empty) in [
            ("scenarios", self.scenarios.is_empty()),
            ("presets", self.presets.is_empty()),
            ("faults", self.faults.is_empty()),
            ("defenses", self.defenses.is_empty()),
        ] {
            if empty {
                return Err(CampaignError::EmptyAxis(axis));
            }
        }
        let mut cells = Vec::with_capacity(self.cell_count());
        for sel in &self.scenarios {
            let entry = registry
                .get(&sel.scenario)
                .map_err(|_| CampaignError::UnknownScenario(sel.scenario.clone()))?;
            for preset in &self.presets {
                let base = match &sel.params {
                    Some(p) => p.clone(),
                    None => entry.default_params(),
                };
                // Resolve and validate one params value per defense
                // variant up front (faults and replicates reuse them).
                let mut defended: Vec<(&DefenseVariant, Value)> =
                    Vec::with_capacity(self.defenses.len());
                for variant in &self.defenses {
                    let mut params = base.clone();
                    inject_machine(&mut params, preset)?;
                    inject_defense(&mut params, &variant.defense);
                    entry
                        .check_params(&params)
                        .map_err(|e| CampaignError::Params {
                            scenario: sel.scenario.clone(),
                            message: e.to_string(),
                        })?;
                    defended.push((variant, params));
                }
                for fault in &self.faults {
                    for (variant, params) in &defended {
                        for replicate in 0..self.replicates.max(1) {
                            let index = cells.len();
                            cells.push(CampaignCell {
                                index,
                                scenario: sel.scenario.clone(),
                                preset: preset.clone(),
                                fault: fault.name.clone(),
                                defense: variant.name.clone(),
                                replicate,
                                seed: exec::derive_seed(self.seed, index as u64),
                                trials: self.trials,
                                params: params.clone(),
                                fault_plan: fault.plan,
                            });
                        }
                    }
                }
            }
        }
        debug_assert_eq!(cells.len(), self.cell_count());
        Ok(cells)
    }
}

/// One cell of the expanded grid: a fully resolved `(scenario, preset,
/// fault, defense, replicate)` coordinate with its derived experiment
/// seed and ready-to-run params.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Flat index in the expansion order (the manifest/checkpoint key).
    pub index: usize,
    /// Scenario registry name.
    pub scenario: String,
    /// Machine preset name.
    pub preset: String,
    /// Fault-variant label.
    pub fault: String,
    /// Defense-variant label.
    pub defense: String,
    /// Replicate number within the coordinate (`0..replicates`).
    pub replicate: u64,
    /// The cell's experiment seed,
    /// `exec::derive_seed(campaign_seed, index)`.
    pub seed: u64,
    /// Per-cell trial-count override.
    pub trials: Option<usize>,
    /// Resolved scenario params with the preset's machine injected.
    pub params: Value,
    /// The run-level fault-plan override this cell installs.
    pub fault_plan: Option<FaultPlan>,
}

/// Replaces (or inserts) the top-level `machine` key of `params` with
/// the named Table I preset's serialized [`segsim::MachineConfig`].
///
/// Scenarios whose config has no `machine` field ignore unknown keys,
/// so for them the preset axis degenerates to identical repeats — the
/// grid stays regular either way.
///
/// # Errors
///
/// [`CampaignError::UnknownPreset`] when no preset has `preset`'s name,
/// and [`CampaignError::Parse`] when `params` is not a JSON object.
pub fn inject_machine(params: &mut Value, preset: &str) -> Result<(), CampaignError> {
    let config = segsim::presets::by_name(preset)
        .ok_or_else(|| CampaignError::UnknownPreset(preset.to_owned()))?;
    let Value::Map(entries) = params else {
        return Err(CampaignError::Parse(
            "scenario params are not a JSON object".to_owned(),
        ));
    };
    let machine = config.to_value();
    match entries.iter_mut().find(|(k, _)| k == "machine") {
        Some((_, slot)) => *slot = machine,
        None => entries.push(("machine".to_owned(), machine)),
    }
    Ok(())
}

/// Sets the `defense` field of `params`' top-level `machine` map to the
/// serialized [`Defense`].
///
/// A no-op when `params` has no `machine` object (scenarios without a
/// machine field ignore the defense axis the same way they ignore the
/// preset axis — the grid stays regular, the variants degenerate to
/// repeats).
pub fn inject_defense(params: &mut Value, defense: &Defense) {
    let Value::Map(entries) = params else {
        return;
    };
    let Some((_, Value::Map(machine))) = entries.iter_mut().find(|(k, _)| k == "machine") else {
        return;
    };
    let value = defense.to_value();
    match machine.iter_mut().find(|(k, _)| k == "defense") {
        Some((_, slot)) => *slot = value,
        None => machine.push(("defense".to_owned(), value)),
    }
}
