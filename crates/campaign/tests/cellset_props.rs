//! Property tests pinning the [`MergeReport`] laws for [`CellSet`] —
//! the fragment type the campaign engine folds shard outputs through.
//!
//! The laws (identity, commutativity, associativity over disjoint
//! fragments) are what make the final [`CampaignReport`] independent of
//! the shard count and wave order: any partition of the cell results,
//! folded in any order, must reassemble the same ordered cell list.

use campaign::{CellResult, CellSet};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scenario::{MergeReport, RunReport, RunTotals};
use segsim::FaultLog;
use serde::Value;

/// A synthetic cell result whose every field is a function of
/// `(index, seed)`, so equal indices produced from equal seeds are
/// equal cells.
fn cell_from(index: usize, seed: u64) -> CellResult {
    let mut rng = SmallRng::seed_from_u64(seed ^ index as u64);
    let trials = rng.gen_range(1..50u64);
    let deliveries = rng.gen_range(0..10_000u64);
    CellResult {
        index,
        scenario: format!("scenario_{}", index % 3),
        preset: format!("preset_{}", index % 2),
        fault: "none".to_owned(),
        defense: "none".to_owned(),
        replicate: rng.gen_range(0..4),
        report: RunReport {
            scenario: format!("scenario_{}", index % 3),
            seed: rng.gen(),
            trials: trials as usize,
            ground_truth_deliveries: deliveries,
            params: Value::Null,
            summary: Value::Null,
        },
        totals: RunTotals {
            trials,
            ground_truth_deliveries: deliveries,
        },
        fault_log: FaultLog {
            dropped: rng.gen_range(0..100),
            duplicated: rng.gen_range(0..100),
            coalesced: rng.gen_range(0..100),
            jittered: rng.gen_range(0..100),
            bursts: rng.gen_range(0..100),
            clamped_steps: rng.gen_range(0..100),
        },
    }
}

/// A fragment holding the cells at `indices` (deduplicated by the set
/// itself).
fn set_from(indices: &[usize], seed: u64) -> CellSet {
    CellSet::merged(
        indices
            .iter()
            .map(|&i| CellSet::singleton(cell_from(i, seed))),
    )
}

/// Asserts the three merge laws for arbitrary `(x, y, z)`.
fn assert_merge_laws(x: &CellSet, y: &CellSet, z: &CellSet) {
    // Identity.
    let mut with_empty = x.clone();
    with_empty.merge(&CellSet::empty());
    assert_eq!(&with_empty, x, "right identity");
    let mut empty_with = CellSet::empty();
    empty_with.merge(x);
    assert_eq!(&empty_with, x, "left identity");
    // Commutativity.
    let mut xy = x.clone();
    xy.merge(y);
    let mut yx = y.clone();
    yx.merge(x);
    assert_eq!(xy, yx, "commutativity");
    // Associativity.
    let mut xy_z = xy.clone();
    xy_z.merge(z);
    let mut yz = y.clone();
    yz.merge(z);
    let mut x_yz = x.clone();
    x_yz.merge(&yz);
    assert_eq!(xy_z, x_yz, "associativity");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The merge laws hold for arbitrary fragments drawn from one cell
    /// universe — including overlapping ones, since equal indices carry
    /// equal cells and first-wins union is then order-blind.
    #[test]
    fn cell_sets_obey_the_merge_laws(
        seed in 0u64..100_000,
        ix in prop::collection::vec(0usize..30, 0..12),
        iy in prop::collection::vec(0usize..30, 0..12),
        iz in prop::collection::vec(0usize..30, 0..12),
    ) {
        assert_merge_laws(
            &set_from(&ix, seed),
            &set_from(&iy, seed),
            &set_from(&iz, seed),
        );
    }

    /// Shard-geometry independence, end to end: any partition of a cell
    /// sequence into shard-sized groups, folded in any rotation, yields
    /// the same ordered cell list as the flat fold.
    #[test]
    fn sharded_folds_reassemble_the_flat_cell_order(
        seed in 0u64..100_000,
        cells in 0usize..40,
        shard in 1usize..9,
        rotate in 0usize..10,
    ) {
        let indices: Vec<usize> = (0..cells).collect();
        let flat = set_from(&indices, seed);
        let mut sharded: Vec<CellSet> = indices
            .chunks(shard)
            .map(|c| set_from(c, seed))
            .collect();
        if !sharded.is_empty() {
            let r = rotate % sharded.len();
            sharded.rotate_left(r); // fold order must not matter
        }
        let folded = CellSet::merged(sharded);
        prop_assert_eq!(folded.clone(), flat);
        let ordered = folded.into_ordered();
        prop_assert_eq!(ordered.len(), cells);
        for (i, cell) in ordered.iter().enumerate() {
            prop_assert_eq!(cell.index, i, "ascending flat-index order");
        }
    }
}
