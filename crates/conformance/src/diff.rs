//! The differential engine: drives op sequences through the reference
//! and naive models, compares [`StepOutcome`]s, and shrinks any
//! divergence to a minimal replayable case.

use crate::naive::{Mutation, NaiveModel};
use crate::ops::{generate_ops, DescClass, SegOp, StepOutcome};
use proptest::shrink::minimize_sequence;
use serde::{Deserialize, Serialize};
use std::fmt;
use x86seg::{
    load_data_segment, protected_mode_return, DataSegReg, DescriptorKind, DescriptorTables,
    PrivilegeLevel, SegError, SegmentDescriptor, SegmentRegisterFile, Selector,
};

fn reg_of(raw: u8) -> DataSegReg {
    match raw % 4 {
        0 => DataSegReg::Ds,
        1 => DataSegReg::Es,
        2 => DataSegReg::Fs,
        _ => DataSegReg::Gs,
    }
}

fn kind_of(class: DescClass) -> DescriptorKind {
    match class {
        DescClass::Data => DescriptorKind::Data {
            writable: true,
            expand_down: false,
        },
        DescClass::DataExpandDown => DescriptorKind::Data {
            writable: true,
            expand_down: true,
        },
        DescClass::CodeReadable => DescriptorKind::Code {
            readable: true,
            conforming: false,
        },
        DescClass::CodeNonReadable => DescriptorKind::Code {
            readable: false,
            conforming: false,
        },
        DescClass::CodeConforming => DescriptorKind::Code {
            readable: true,
            conforming: true,
        },
        DescClass::System => DescriptorKind::System,
    }
}

fn fault_tag(err: &SegError) -> &'static str {
    match err {
        SegError::IndexOutOfRange { .. } => "index-out-of-range",
        SegError::EmptyDescriptor { .. } => "empty-descriptor",
        SegError::NotLoadable { .. } => "not-loadable",
        SegError::PrivilegeViolation { .. } => "privilege",
        SegError::NotPresent { .. } => "not-present",
        // Access-path errors cannot arise from a register load/return.
        _ => "unexpected",
    }
}

/// The reference model: [`x86seg`] driven through its public API.
#[derive(Debug, Clone)]
pub struct RefModel {
    regs: SegmentRegisterFile,
    tables: DescriptorTables,
}

impl RefModel {
    /// Fresh flat-model user state (`flat_user` + `linux_flat`).
    #[must_use]
    pub fn new() -> Self {
        RefModel {
            regs: SegmentRegisterFile::flat_user(),
            tables: DescriptorTables::linux_flat(),
        }
    }

    /// Applies one op and reports the observable outcome.
    pub fn apply(&mut self, op: SegOp) -> StepOutcome {
        let mut fault = None;
        let mut footprint = None;
        match op {
            SegOp::Load { reg, selector, cpl } => {
                let result = load_data_segment(
                    &mut self.regs,
                    reg_of(reg),
                    Selector::from_bits(selector),
                    &self.tables,
                    PrivilegeLevel::from_bits_truncate(cpl),
                );
                fault = result.err().map(|e| fault_tag(&e).to_owned());
            }
            SegOp::Return { return_rpl, cpl } => {
                let fp = protected_mode_return(
                    &mut self.regs,
                    PrivilegeLevel::from_bits_truncate(return_rpl),
                    PrivilegeLevel::from_bits_truncate(cpl),
                );
                footprint = Some(serde_json::to_string(&fp).expect("footprint serializes"));
            }
            SegOp::InstallGdt {
                index,
                dpl,
                class,
                present,
            } => {
                let mut desc = SegmentDescriptor::new(
                    0,
                    u64::from(u32::MAX),
                    PrivilegeLevel::from_bits_truncate(dpl),
                    kind_of(class),
                );
                if !present {
                    desc = desc.not_present();
                }
                self.tables.gdt.install(index, desc);
            }
            SegOp::InstallLdt {
                index,
                dpl,
                class,
                present,
            } => {
                let mut desc = SegmentDescriptor::new(
                    0,
                    u64::from(u32::MAX),
                    PrivilegeLevel::from_bits_truncate(dpl),
                    kind_of(class),
                );
                if !present {
                    desc = desc.not_present();
                }
                self.tables.ldt.install(index, desc);
            }
            SegOp::RemoveGdt { index } => {
                self.tables.gdt.remove(index);
            }
            SegOp::RemoveLdt { index } => {
                self.tables.ldt.remove(index);
            }
        }
        let selectors = [
            DataSegReg::Ds,
            DataSegReg::Es,
            DataSegReg::Fs,
            DataSegReg::Gs,
        ]
        .map(|r| self.regs.selector(r).bits());
        let caches = [
            DataSegReg::Ds,
            DataSegReg::Es,
            DataSegReg::Fs,
            DataSegReg::Gs,
        ]
        .map(|r| {
            self.regs
                .register(r)
                .descriptor_cache()
                .map(|d| (d.dpl().bits(), d.is_present(), d.is_sensitive()))
        });
        StepOutcome {
            fault,
            footprint,
            selectors,
            caches,
        }
    }
}

impl Default for RefModel {
    fn default() -> Self {
        RefModel::new()
    }
}

/// The first step at which the two models disagreed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// Index of the diverging op within the replayed sequence.
    pub step: usize,
    /// The op both models executed when they split.
    pub op: SegOp,
    /// What the reference observed.
    pub reference: StepOutcome,
    /// What the naive model observed.
    pub naive: StepOutcome,
}

/// Replays `ops` through both models (the naive one carrying `mutation`)
/// and returns the first divergence, or `None` on full agreement.
#[must_use]
pub fn replay(ops: &[SegOp], mutation: Option<Mutation>) -> Option<Divergence> {
    let mut reference = RefModel::new();
    let mut naive = NaiveModel::new(mutation);
    for (step, &op) in ops.iter().enumerate() {
        let want = reference.apply(op);
        let got = naive.apply(op);
        if want != got {
            return Some(Divergence {
                step,
                op,
                reference: want,
                naive: got,
            });
        }
    }
    None
}

/// A shrunk, replayable divergence: everything needed to reproduce the
/// disagreement from scratch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseReport {
    /// Which generated case (task index into the experiment stream)
    /// diverged first.
    pub case_index: u64,
    /// The per-case seed (`exec::derive_seed(experiment_seed,
    /// case_index)`); `generate_ops(case_seed, ops_per_case)` rebuilds
    /// the full sequence.
    pub case_seed: u64,
    /// Length of the originally generated sequence.
    pub full_len: usize,
    /// The 1-minimal op sequence that still diverges.
    pub shrunk_ops: Vec<SegOp>,
    /// The divergence observed when replaying `shrunk_ops`.
    pub divergence: Divergence,
}

impl fmt::Display for CaseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "conformance divergence in case {} (seed {:#x}, {} ops generated), \
             shrunk to {} op(s):",
            self.case_index,
            self.case_seed,
            self.full_len,
            self.shrunk_ops.len()
        )?;
        for (i, op) in self.shrunk_ops.iter().enumerate() {
            writeln!(f, "  [{i}] {op:?}")?;
        }
        writeln!(
            f,
            "diverges at step {}: {:?}",
            self.divergence.step, self.divergence.op
        )?;
        writeln!(f, "  reference: {:?}", self.divergence.reference)?;
        write!(f, "  naive:     {:?}", self.divergence.naive)
    }
}

/// The outcome of a differential run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffReport {
    /// Cases executed (stops early at the first divergence).
    pub cases: u64,
    /// Total ops replayed through both models.
    pub ops: u64,
    /// The first divergence, shrunk — `None` means full conformance.
    pub divergence: Option<CaseReport>,
}

impl DiffReport {
    /// `true` when every generated op agreed.
    #[must_use]
    pub fn is_conformant(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Runs the differential harness: `cases` independent sequences of
/// `ops_per_case` random ops each, seeded from `experiment_seed` via
/// [`exec::derive_seed`] so any case is replayable in isolation.
///
/// Stops at (and shrinks) the first divergence.
#[must_use]
pub fn run_differential(
    experiment_seed: u64,
    cases: u64,
    ops_per_case: usize,
    mutation: Option<Mutation>,
) -> DiffReport {
    let mut ops_done = 0u64;
    for case_index in 0..cases {
        let case_seed = exec::derive_seed(experiment_seed, case_index);
        let ops = generate_ops(case_seed, ops_per_case);
        if replay(&ops, mutation).is_some() {
            let shrunk_ops =
                minimize_sequence(&ops, |candidate| replay(candidate, mutation).is_some());
            let divergence =
                replay(&shrunk_ops, mutation).expect("shrinker preserves the failure predicate");
            ops_done += divergence.step as u64 + 1;
            return DiffReport {
                cases: case_index + 1,
                ops: ops_done,
                divergence: Some(CaseReport {
                    case_index,
                    case_seed,
                    full_len: ops.len(),
                    shrunk_ops,
                    divergence,
                }),
            };
        }
        ops_done += ops.len() as u64;
    }
    DiffReport {
        cases,
        ops: ops_done,
        divergence: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_models_agree_on_a_quick_run() {
        let report = run_differential(0xD1FF, 64, 128, None);
        assert!(
            report.is_conformant(),
            "unexpected divergence:\n{}",
            report.divergence.unwrap()
        );
        assert_eq!(report.ops, 64 * 128);
    }

    #[test]
    fn replay_is_deterministic() {
        let ops = generate_ops(99, 512);
        assert_eq!(replay(&ops, None), replay(&ops, None));
    }

    #[test]
    fn case_report_round_trips_through_json_and_replays_its_divergence() {
        // A mutated naive model guarantees a divergence to report.
        let mutation = Some(Mutation::TreatNullThreeAsValid);
        let report = run_differential(0xCA5E, 256, 64, mutation);
        let case = report.divergence.clone().expect("mutation must diverge");

        // Serde round-trip: the report is a faithful wire format.
        let json = serde_json::to_string(&report).expect("report serializes");
        let back: DiffReport = serde_json::from_str(&json).expect("report parses");
        assert_eq!(back, report);
        let saved = back.divergence.expect("divergence survives the trip");
        assert_eq!(saved, case);

        // Replayability: the saved (seed, ops) reproduce the recorded
        // divergence from scratch — first from the regenerated full
        // sequence, then op-for-op from the shrunk script.
        let regenerated = generate_ops(saved.case_seed, saved.full_len);
        assert!(
            replay(&regenerated, mutation).is_some(),
            "the recorded case seed must still diverge"
        );
        assert_eq!(
            replay(&saved.shrunk_ops, mutation),
            Some(saved.divergence.clone()),
            "the saved shrunk ops must reproduce the recorded divergence exactly"
        );
    }

    #[test]
    fn canary_script_diverges_under_mutation() {
        let ops = [
            SegOp::Load {
                reg: 3,
                selector: 0x3,
                cpl: 3,
            },
            SegOp::Return {
                return_rpl: 3,
                cpl: 0,
            },
        ];
        assert!(replay(&ops, None).is_none());
        assert!(replay(&ops, Some(Mutation::TreatNullThreeAsValid)).is_some());
    }
}
