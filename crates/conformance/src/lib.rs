//! Differential conformance harness for the SegScope reproduction's
//! segment-protection model.
//!
//! The [`x86seg`] crate is the load-bearing model of the paper's
//! Algorithm 1 — every attack result rests on its selector/scrub
//! semantics being right. This crate checks it the way hardware teams
//! check RTL: against a second, independently written model.
//!
//! * [`NaiveModel`] re-implements selector loads, GDT/LDT lookup,
//!   DPL/CPL/RPL checks and the kernel→user null-family scrub from the
//!   spec text alone — raw integers, `BTreeMap` tables, if-chains; no
//!   [`x86seg`] types anywhere.
//! * [`run_differential`] drives millions of generated [`SegOp`]s
//!   (seeded via [`exec::derive_seed`], so every case replays in
//!   isolation) through both models and demands bit-identical
//!   [`StepOutcome`]s, down to the serialized
//!   [`ReturnFootprint`](x86seg::ReturnFootprint) JSON.
//! * Any divergence is shrunk with
//!   [`proptest::shrink::minimize_sequence`] to a 1-minimal op list and
//!   reported as a replayable `(seed, op-sequence)` [`CaseReport`].
//! * [`Mutation`] seeds one deliberate bug at a time into the naive
//!   model, proving the harness detects and shrinks real divergences
//!   rather than vacuously passing.
//!
//! ```
//! use conformance::run_differential;
//! let report = run_differential(0xC0DE, 8, 64, None);
//! assert!(report.is_conformant());
//! assert_eq!(report.ops, 8 * 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diff;
mod naive;
mod ops;

pub use diff::{replay, run_differential, CaseReport, DiffReport, Divergence, RefModel};
pub use naive::{Mutation, NaiveModel};
pub use ops::{generate_ops, random_op, DescClass, SegOp, StepOutcome, MAX_INSTALL_INDEX};
