//! The naive model: a from-scratch, deliberately unsophisticated
//! re-implementation of the segment-protection state machine.
//!
//! Nothing here imports an [`x86seg`] type. Selectors are bare `u16`s,
//! privilege levels bare `u8`s, tables are `BTreeMap`s with an explicit
//! length counter, and every check is an if-chain transcribed straight
//! from the SDM pseudocode / paper Algorithm 1 — the point is to agree
//! with the reference by *construction from the spec*, not by sharing
//! code. Where the reference decodes bit fields, the naive model
//! compares integer ranges; where the reference dispatches on enums, the
//! naive model matches on a flat class tag.
//!
//! [`Mutation`] seeds one deliberate bug at a time, so the differential
//! harness can prove it actually catches divergences (and shrinks them).

use crate::ops::{DescClass, SegOp, StepOutcome};
use serde::Serialize;
use std::collections::BTreeMap;

/// A deliberately-introduced bug in the naive model, used to verify the
/// differential harness detects (and shrinks) real divergences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The null family shrinks to `0x0..=0x2`: selector `0x3` goes
    /// through a descriptor fetch instead of loading silently.
    TreatNullThreeAsValid,
    /// Algorithm 1 skips ES: a marker parked there survives the return.
    SkipEsScrub,
    /// The load privilege check ignores RPL (only CPL ≤ DPL is
    /// enforced) — the classic confused-deputy bug.
    RplIgnoredOnLoad,
    /// The sensitive-cache scrub fires on `DPL <= return_rpl` instead of
    /// `DPL < return_rpl`, scrubbing user segments on return to user.
    SensitiveScrubOffByOne,
    /// Clearing an already-zero selector is (wrongly) recorded as an
    /// observable null footprint.
    ZeroNullLeavesFootprint,
    /// Conforming code segments are treated as sensitive and scrubbed.
    ConformingCodeSensitive,
}

impl Mutation {
    /// Every seedable bug.
    pub const ALL: [Mutation; 6] = [
        Mutation::TreatNullThreeAsValid,
        Mutation::SkipEsScrub,
        Mutation::RplIgnoredOnLoad,
        Mutation::SensitiveScrubOffByOne,
        Mutation::ZeroNullLeavesFootprint,
        Mutation::ConformingCodeSensitive,
    ];
}

/// Field-for-field shadow of [`x86seg::ReturnFootprint`]'s serialized
/// shape, produced without touching the reference type.
#[derive(Debug, Clone, Copy, Default, Serialize)]
struct NaiveFootprint {
    cleared_null: [bool; 4],
    cleared_sensitive: [bool; 4],
}

/// One cached/installed descriptor, reduced to the protection-relevant
/// triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NaiveDesc {
    dpl: u8,
    present: bool,
    class: DescClass,
}

fn class_loadable(class: DescClass) -> bool {
    matches!(
        class,
        DescClass::Data
            | DescClass::DataExpandDown
            | DescClass::CodeReadable
            | DescClass::CodeConforming
    )
}

fn class_sensitive(class: DescClass, mutation: Option<Mutation>) -> bool {
    if class == DescClass::CodeConforming {
        return mutation == Some(Mutation::ConformingCodeSensitive);
    }
    // Data, expand-down data, non-conforming code (readable or not) and
    // system descriptors all protect ring-private content.
    true
}

/// The naive segment-protection state machine.
#[derive(Debug, Clone)]
pub struct NaiveModel {
    /// Visible selector values, DS/ES/FS/GS.
    vis: [u16; 4],
    /// Hidden descriptor caches.
    hid: [Option<NaiveDesc>; 4],
    gdt: BTreeMap<u16, NaiveDesc>,
    ldt: BTreeMap<u16, NaiveDesc>,
    gdt_len: u16,
    ldt_len: u16,
    mutation: Option<Mutation>,
}

impl NaiveModel {
    /// The freshly-exec'd flat-model user state, mirroring what Linux
    /// leaves a process with (and what the reference calls
    /// `SegmentRegisterFile::flat_user()` + `DescriptorTables::
    /// linux_flat()`) — written out longhand from the documented layout.
    #[must_use]
    pub fn new(mutation: Option<Mutation>) -> Self {
        let mut gdt = BTreeMap::new();
        // index 1: kernel code, DPL 0. index 2: kernel data, DPL 0.
        // index 3: user code, DPL 3.   index 4: user data, DPL 3.
        gdt.insert(
            1,
            NaiveDesc {
                dpl: 0,
                present: true,
                class: DescClass::CodeReadable,
            },
        );
        gdt.insert(
            2,
            NaiveDesc {
                dpl: 0,
                present: true,
                class: DescClass::Data,
            },
        );
        gdt.insert(
            3,
            NaiveDesc {
                dpl: 3,
                present: true,
                class: DescClass::CodeReadable,
            },
        );
        gdt.insert(
            4,
            NaiveDesc {
                dpl: 3,
                present: true,
                class: DescClass::Data,
            },
        );
        let user_data = NaiveDesc {
            dpl: 3,
            present: true,
            class: DescClass::Data,
        };
        // DS/ES/FS hold the user-data selector (index 4, RPL 3 →
        // 4*8 + 3 = 0x23); GS starts zeroed.
        NaiveModel {
            vis: [0x23, 0x23, 0x23, 0],
            hid: [Some(user_data), Some(user_data), Some(user_data), None],
            gdt,
            ldt: BTreeMap::new(),
            gdt_len: 8,
            ldt_len: 0,
            mutation,
        }
    }

    fn is_null_value(&self, sel: u16) -> bool {
        // A null selector is GDT index 0 with any RPL: the four values
        // 0, 1, 2, 3 (the mutation shrinks the family by one).
        if self.mutation == Some(Mutation::TreatNullThreeAsValid) {
            sel <= 2
        } else {
            sel <= 3
        }
    }

    fn load(&mut self, reg: usize, sel: u16, cpl: u8) -> Option<&'static str> {
        if self.is_null_value(sel) {
            self.vis[reg] = sel;
            self.hid[reg] = None;
            return None;
        }
        let index = sel / 8;
        let uses_ldt = sel % 8 >= 4;
        let rpl = (sel % 4) as u8;
        let (table, len) = if uses_ldt {
            (&self.ldt, self.ldt_len)
        } else {
            (&self.gdt, self.gdt_len)
        };
        if index >= len {
            return Some("index-out-of-range");
        }
        let Some(desc) = table.get(&index).copied() else {
            return Some("empty-descriptor");
        };
        if !class_loadable(desc.class) {
            return Some("not-loadable");
        }
        let rpl_ok = self.mutation == Some(Mutation::RplIgnoredOnLoad) || rpl <= desc.dpl;
        if cpl > desc.dpl || !rpl_ok {
            return Some("privilege");
        }
        if !desc.present {
            return Some("not-present");
        }
        self.vis[reg] = sel;
        self.hid[reg] = Some(desc);
        None
    }

    fn protected_return(&mut self, return_rpl: u8, cpl: u8) -> NaiveFootprint {
        let mut fp = NaiveFootprint::default();
        if return_rpl <= cpl {
            return fp;
        }
        for i in 0..4 {
            if i == 1 && self.mutation == Some(Mutation::SkipEsScrub) {
                continue;
            }
            if self.vis[i] <= 3 {
                // Null selector parked: scrub to exactly zero. Only a
                // *non-zero* null leaves an observable footprint.
                fp.cleared_null[i] =
                    self.vis[i] != 0 || self.mutation == Some(Mutation::ZeroNullLeavesFootprint);
                self.vis[i] = 0;
                self.hid[i] = None;
            } else if let Some(desc) = self.hid[i] {
                let inner = if self.mutation == Some(Mutation::SensitiveScrubOffByOne) {
                    desc.dpl <= return_rpl
                } else {
                    desc.dpl < return_rpl
                };
                if inner && class_sensitive(desc.class, self.mutation) {
                    fp.cleared_sensitive[i] = true;
                    self.vis[i] = 0;
                    self.hid[i] = None;
                }
            }
        }
        fp
    }

    /// Applies one op and reports the observable outcome.
    pub fn apply(&mut self, op: SegOp) -> StepOutcome {
        let mut fault = None;
        let mut footprint = None;
        match op {
            SegOp::Load { reg, selector, cpl } => {
                fault = self.load(usize::from(reg % 4), selector, cpl % 4);
            }
            SegOp::Return { return_rpl, cpl } => {
                let fp = self.protected_return(return_rpl % 4, cpl % 4);
                footprint = Some(serde_json::to_string(&fp).expect("footprint serializes"));
            }
            SegOp::InstallGdt {
                index,
                dpl,
                class,
                present,
            } => {
                self.gdt.insert(
                    index,
                    NaiveDesc {
                        dpl: dpl % 4,
                        present,
                        class,
                    },
                );
                if index + 1 > self.gdt_len {
                    self.gdt_len = index + 1;
                }
            }
            SegOp::InstallLdt {
                index,
                dpl,
                class,
                present,
            } => {
                self.ldt.insert(
                    index,
                    NaiveDesc {
                        dpl: dpl % 4,
                        present,
                        class,
                    },
                );
                if index + 1 > self.ldt_len {
                    self.ldt_len = index + 1;
                }
            }
            SegOp::RemoveGdt { index } => {
                // Removal empties the slot but never shrinks the table.
                self.gdt.remove(&index);
            }
            SegOp::RemoveLdt { index } => {
                self.ldt.remove(&index);
            }
        }
        StepOutcome {
            fault: fault.map(str::to_owned),
            footprint,
            selectors: self.vis,
            caches: self
                .hid
                .map(|h| h.map(|d| (d.dpl, d.present, class_sensitive(d.class, self.mutation)))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_matches_linux_flat_user() {
        let m = NaiveModel::new(None);
        assert_eq!(m.vis, [0x23, 0x23, 0x23, 0]);
        assert!(m.hid[3].is_none());
        assert_eq!(m.gdt_len, 8);
        assert_eq!(m.ldt_len, 0);
    }

    #[test]
    fn nonzero_null_load_and_scrub() {
        let mut m = NaiveModel::new(None);
        let out = m.apply(SegOp::Load {
            reg: 3,
            selector: 0x1,
            cpl: 3,
        });
        assert_eq!(out.fault, None);
        assert_eq!(out.selectors[3], 0x1);
        let out = m.apply(SegOp::Return {
            return_rpl: 3,
            cpl: 0,
        });
        assert_eq!(out.selectors[3], 0);
        assert!(out
            .footprint
            .expect("return yields footprint")
            .contains("true"));
    }

    #[test]
    fn user_cannot_load_kernel_data() {
        let mut m = NaiveModel::new(None);
        // Kernel data = GDT index 2; selector 2*8 + 0 = 0x10.
        let out = m.apply(SegOp::Load {
            reg: 0,
            selector: 0x10,
            cpl: 3,
        });
        assert_eq!(out.fault.as_deref(), Some("privilege"));
        assert_eq!(out.selectors[0], 0x23, "failed load must not move DS");
    }

    #[test]
    fn every_mutation_changes_some_behavior() {
        // Sanity: each mutation must be *live* — a short handwritten
        // scenario on which it flips an outcome.
        for mutation in Mutation::ALL {
            let script = [
                SegOp::Load {
                    reg: 1,
                    selector: 0x3,
                    cpl: 3,
                },
                SegOp::Load {
                    reg: 2,
                    selector: 0x10, // kernel data, RPL 0 — kernel-only
                    cpl: 0,
                },
                SegOp::InstallGdt {
                    index: 5,
                    dpl: 0,
                    class: DescClass::CodeConforming,
                    present: true,
                },
                SegOp::Load {
                    reg: 2,
                    selector: 0x28, // the conforming kernel code segment
                    cpl: 0,
                },
                SegOp::Load {
                    reg: 0,
                    selector: 0x13, // kernel data with RPL 3: confused deputy
                    cpl: 0,
                },
                SegOp::Return {
                    return_rpl: 3,
                    cpl: 0,
                },
                SegOp::Return {
                    return_rpl: 3,
                    cpl: 0,
                },
            ];
            let mut clean = NaiveModel::new(None);
            let mut mutated = NaiveModel::new(Some(mutation));
            let diverged = script
                .iter()
                .any(|&op| clean.apply(op) != mutated.apply(op));
            assert!(diverged, "{mutation:?} is dead on the canary script");
        }
    }
}
