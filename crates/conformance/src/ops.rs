//! The operation vocabulary both models speak, and the seeded generator
//! that produces random operation sequences.
//!
//! An operation sequence is the *only* interface between the two models:
//! each [`SegOp`] is applied to the reference ([`x86seg`]) and to the
//! naive re-implementation, and the resulting [`StepOutcome`]s must be
//! bit-identical. Everything in this module is deliberately primitive —
//! raw `u16` selectors, raw `u8` privilege levels — so that neither
//! model's type vocabulary leaks into the other.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The descriptor classes the generator can install, spelled without
/// reference to [`x86seg::DescriptorKind`] so the naive model can give
/// them independent semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DescClass {
    /// Ordinary read/write data segment.
    Data,
    /// Expand-down (stack-style) data segment.
    DataExpandDown,
    /// Readable, non-conforming code segment.
    CodeReadable,
    /// Execute-only, non-conforming code segment.
    CodeNonReadable,
    /// Readable, conforming code segment.
    CodeConforming,
    /// System descriptor (TSS, gates): never loadable into a data
    /// register.
    System,
}

impl DescClass {
    /// All classes, for exhaustive sweeps.
    pub const ALL: [DescClass; 6] = [
        DescClass::Data,
        DescClass::DataExpandDown,
        DescClass::CodeReadable,
        DescClass::CodeNonReadable,
        DescClass::CodeConforming,
        DescClass::System,
    ];
}

/// One operation on the segment-protection state machine.
///
/// Fields are raw integers on purpose: the sequence must be replayable
/// from a printed debug dump with no interpretation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegOp {
    /// `mov sreg, r16`: load `selector` into data register `reg`
    /// (0 = DS, 1 = ES, 2 = FS, 3 = GS) at privilege level `cpl`.
    Load {
        /// Target data-segment register, 0..4.
        reg: u8,
        /// Raw 16-bit selector value.
        selector: u16,
        /// Current privilege level performing the load, 0..4.
        cpl: u8,
    },
    /// `iret` to `CS.RPL = return_rpl` from privilege level `cpl`
    /// (paper Algorithm 1).
    Return {
        /// RPL of the code segment being returned to, 0..4.
        return_rpl: u8,
        /// Privilege level executing the return, 0..4.
        cpl: u8,
    },
    /// Install a descriptor in the GDT.
    InstallGdt {
        /// Table slot.
        index: u16,
        /// Descriptor privilege level, 0..4.
        dpl: u8,
        /// Descriptor class.
        class: DescClass,
        /// Present bit.
        present: bool,
    },
    /// Install a descriptor in the LDT.
    InstallLdt {
        /// Table slot.
        index: u16,
        /// Descriptor privilege level, 0..4.
        dpl: u8,
        /// Descriptor class.
        class: DescClass,
        /// Present bit.
        present: bool,
    },
    /// Empty a GDT slot (the descriptor-cache staleness source: loaded
    /// registers keep their hidden copy).
    RemoveGdt {
        /// Table slot.
        index: u16,
    },
    /// Empty an LDT slot.
    RemoveLdt {
        /// Table slot.
        index: u16,
    },
}

/// Everything observable after one op — the comparison unit of the
/// differential harness.
///
/// `footprint` is the serialized [`x86seg::ReturnFootprint`] (or the
/// naive model's identically-shaped answer): comparing JSON strings makes
/// the check bit-exact without giving the naive model access to the
/// reference type's internals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// Canonical fault tag, `None` when the op succeeded.
    pub fault: Option<String>,
    /// Serialized return footprint (`Return` ops only).
    pub footprint: Option<String>,
    /// Visible selector values after the op, DS/ES/FS/GS.
    pub selectors: [u16; 4],
    /// Hidden descriptor caches after the op, as
    /// `(dpl, present, sensitive)` triples.
    pub caches: [Option<(u8, bool, bool)>; 4],
}

/// Highest slot index the generator installs descriptors at. Small on
/// purpose: collisions between installs, removes and loads are where the
/// interesting transitions live, and the reference table never grows
/// past a few dozen bytes.
pub const MAX_INSTALL_INDEX: u16 = 11;

fn random_selector<R: Rng + ?Sized>(rng: &mut R) -> u16 {
    match rng.gen_range(0u32..100) {
        // Null family, the SegScope marker values.
        0..=24 => rng.gen_range(0u16..4),
        // In-table and just-past-table indices, both tables, any RPL.
        25..=84 => {
            let index = rng.gen_range(0u16..=MAX_INSTALL_INDEX + 2);
            let ti = u16::from(rng.gen::<bool>());
            let rpl = rng.gen_range(0u16..4);
            (index << 3) | (ti << 2) | rpl
        }
        // Anything a `mov` can encode.
        _ => rng.gen::<u16>(),
    }
}

fn random_class<R: Rng + ?Sized>(rng: &mut R) -> DescClass {
    DescClass::ALL[rng.gen_range(0..DescClass::ALL.len())]
}

/// Draws one random operation.
///
/// Weights favour loads (the fault-richest op) and outward returns (the
/// footprint-producing op); installs and removes churn the tables so
/// loads keep hitting different descriptor states.
pub fn random_op<R: Rng + ?Sized>(rng: &mut R) -> SegOp {
    match rng.gen_range(0u32..100) {
        0..=44 => SegOp::Load {
            reg: rng.gen_range(0u8..4),
            selector: random_selector(rng),
            cpl: rng.gen_range(0u8..4),
        },
        45..=64 => {
            // Bias toward the kernel→user shape (cpl 0, return 3) that
            // actually occurs on interrupt exit, but keep every pair
            // reachable.
            if rng.gen::<f64>() < 0.6 {
                SegOp::Return {
                    return_rpl: 3,
                    cpl: 0,
                }
            } else {
                SegOp::Return {
                    return_rpl: rng.gen_range(0u8..4),
                    cpl: rng.gen_range(0u8..4),
                }
            }
        }
        65..=74 => SegOp::InstallGdt {
            index: rng.gen_range(0..=MAX_INSTALL_INDEX),
            dpl: rng.gen_range(0u8..4),
            class: random_class(rng),
            present: rng.gen::<f64>() < 0.85,
        },
        75..=84 => SegOp::InstallLdt {
            index: rng.gen_range(0..=MAX_INSTALL_INDEX),
            dpl: rng.gen_range(0u8..4),
            class: random_class(rng),
            present: rng.gen::<f64>() < 0.85,
        },
        85..=92 => SegOp::RemoveGdt {
            index: rng.gen_range(0..=MAX_INSTALL_INDEX),
        },
        _ => SegOp::RemoveLdt {
            index: rng.gen_range(0..=MAX_INSTALL_INDEX),
        },
    }
}

/// Generates a deterministic op sequence from a case seed.
#[must_use]
pub fn generate_ops(seed: u64, n: usize) -> Vec<SegOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| random_op(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_ops(42, 256), generate_ops(42, 256));
        assert_ne!(generate_ops(42, 256), generate_ops(43, 256));
    }

    #[test]
    fn generator_covers_every_op_shape() {
        let ops = generate_ops(7, 4096);
        let mut load = 0;
        let mut ret = 0;
        let mut install = 0;
        let mut remove = 0;
        for op in &ops {
            match op {
                SegOp::Load { .. } => load += 1,
                SegOp::Return { .. } => ret += 1,
                SegOp::InstallGdt { .. } | SegOp::InstallLdt { .. } => install += 1,
                SegOp::RemoveGdt { .. } | SegOp::RemoveLdt { .. } => remove += 1,
            }
        }
        assert!(load > 1000, "loads under-represented: {load}");
        assert!(ret > 400, "returns under-represented: {ret}");
        assert!(install > 200, "installs under-represented: {install}");
        assert!(remove > 200, "removes under-represented: {remove}");
    }

    #[test]
    fn generator_emits_null_family_selectors() {
        let ops = generate_ops(11, 4096);
        let nulls = ops
            .iter()
            .filter(|op| matches!(op, SegOp::Load { selector, .. } if *selector < 4))
            .count();
        assert!(nulls > 100, "null-family loads too rare: {nulls}");
    }
}
