//! The differential-conformance acceptance tests: millions of generated
//! segment ops through both models with zero divergences, plus proof
//! that a seeded bug is caught and shrunk to a replayable case.

use conformance::{generate_ops, replay, run_differential, Mutation};

/// Experiment seed for the conformance stream. Every case `i` replays in
/// isolation from `exec::derive_seed(EXPERIMENT_SEED, i)`.
const EXPERIMENT_SEED: u64 = 0x5E65_C09E;

/// Default profile: 2048 cases × 512 ops = 1,048,576 generated segment
/// ops — the ≥ 1e6 floor the harness promises on every `cargo test`.
#[test]
fn million_generated_ops_zero_divergences() {
    let report = run_differential(EXPERIMENT_SEED, 2_048, 512, None);
    assert!(
        report.is_conformant(),
        "models diverged:\n{}",
        report.divergence.unwrap()
    );
    assert_eq!(report.cases, 2_048);
    assert_eq!(report.ops, 1_048_576, "op floor regressed");
}

/// Long-run profile for the `SEGSCOPE_CONFORMANCE_FULL=1` CI job:
/// 16× the default volume.
#[test]
#[ignore = "long-run conformance sweep; enabled via --include-ignored in the gated CI job"]
fn full_conformance_sweep() {
    let report = run_differential(EXPERIMENT_SEED ^ 0xF0, 16_384, 1_024, None);
    assert!(
        report.is_conformant(),
        "models diverged:\n{}",
        report.divergence.unwrap()
    );
    assert_eq!(report.ops, 16_777_216);
}

/// Every seedable mutation must be *caught* by the generated stream —
/// not just by a handwritten canary — and shrunk to a small replayable
/// op list.
#[test]
fn every_mutation_is_caught_and_shrunk() {
    for mutation in Mutation::ALL {
        let report = run_differential(EXPERIMENT_SEED, 256, 256, Some(mutation));
        let case = report
            .divergence
            .unwrap_or_else(|| panic!("{mutation:?} survived 65,536 generated ops"));
        // The shrunk case must still be a genuine, standalone repro.
        let again = replay(&case.shrunk_ops, Some(mutation));
        assert!(again.is_some(), "{mutation:?}: shrunk case does not replay");
        assert_eq!(
            again.unwrap(),
            case.divergence,
            "{mutation:?}: divergence not stable under replay"
        );
        // …and small enough to read: delta-debugging guarantees
        // 1-minimality, and none of these bugs needs a long prefix.
        assert!(
            case.shrunk_ops.len() <= 8,
            "{mutation:?}: shrunk to {} ops, expected a short case:\n{case}",
            case.shrunk_ops.len()
        );
        // The report names the case seed, so the full sequence must be
        // reconstructible from the printed numbers alone.
        let regenerated = generate_ops(case.case_seed, case.full_len);
        assert!(
            replay(&regenerated, Some(mutation)).is_some(),
            "{mutation:?}: (seed, len) pair does not reproduce the divergence"
        );
        // Exercise the human-readable form (what a CI failure prints).
        let printed = case.to_string();
        assert!(
            printed.contains("shrunk to"),
            "report unreadable: {printed}"
        );
    }
}

/// The clean naive model must agree even on adversarially shaped
/// handwritten sequences (regression guard for the edge cases proptest
/// also covers on the reference side).
#[test]
fn handwritten_edge_sequences_agree() {
    use conformance::{DescClass, SegOp};
    let sequences: &[&[SegOp]] = &[
        // Every non-zero null value in every register, then the scrub.
        &[
            SegOp::Load {
                reg: 0,
                selector: 1,
                cpl: 3,
            },
            SegOp::Load {
                reg: 1,
                selector: 2,
                cpl: 3,
            },
            SegOp::Load {
                reg: 2,
                selector: 3,
                cpl: 3,
            },
            SegOp::Load {
                reg: 3,
                selector: 1,
                cpl: 3,
            },
            SegOp::Return {
                return_rpl: 3,
                cpl: 0,
            },
            SegOp::Return {
                return_rpl: 3,
                cpl: 0,
            },
        ],
        // LDT selector with an empty LDT, then after installing.
        &[
            SegOp::Load {
                reg: 3,
                selector: 0x0F,
                cpl: 3,
            },
            SegOp::InstallLdt {
                index: 1,
                dpl: 3,
                class: DescClass::Data,
                present: true,
            },
            SegOp::Load {
                reg: 3,
                selector: 0x0F,
                cpl: 3,
            },
            SegOp::Return {
                return_rpl: 3,
                cpl: 0,
            },
        ],
        // Descriptor-cache staleness: remove the GDT entry under a
        // loaded register, scrub must still use the cached DPL.
        &[
            SegOp::InstallGdt {
                index: 6,
                dpl: 0,
                class: DescClass::Data,
                present: true,
            },
            SegOp::Load {
                reg: 0,
                selector: 0x30,
                cpl: 0,
            },
            SegOp::RemoveGdt { index: 6 },
            SegOp::Return {
                return_rpl: 3,
                cpl: 0,
            },
        ],
        // RPL weakening at every CPL against every DPL.
        &[
            SegOp::Load {
                reg: 1,
                selector: 0x13,
                cpl: 0,
            },
            SegOp::Load {
                reg: 1,
                selector: 0x11,
                cpl: 0,
            },
            SegOp::Load {
                reg: 1,
                selector: 0x23,
                cpl: 2,
            },
            SegOp::Return {
                return_rpl: 2,
                cpl: 1,
            },
        ],
        // Conforming code survives the outward return.
        &[
            SegOp::InstallGdt {
                index: 7,
                dpl: 0,
                class: DescClass::CodeConforming,
                present: true,
            },
            SegOp::Load {
                reg: 2,
                selector: 0x38,
                cpl: 0,
            },
            SegOp::Return {
                return_rpl: 3,
                cpl: 0,
            },
        ],
    ];
    for (i, ops) in sequences.iter().enumerate() {
        if let Some(div) = replay(ops, None) {
            panic!("handwritten sequence {i} diverged: {div:?}");
        }
    }
}
