//! Mid-run checkpointing for chunked trial fan-outs.
//!
//! A [`ChunkManifest`] records which trial chunks of a
//! [`parallel_trial_chunks`](crate::parallel_trial_chunks)-style run have
//! completed, together with their outputs. A killed run resumes by
//! loading the manifest and calling [`resume_chunks`], which executes
//! only the missing chunks; because every chunk's seeds derive from
//! `(experiment_seed, trial_index)` alone, the assembled output vector
//! is bit-identical to the uninterrupted run — at any thread count, and
//! no matter how the work was split across kills.
//!
//! The manifest is plain serde data: persist it with
//! [`ChunkManifest::to_json`] / [`ChunkManifest::from_json`] wherever
//! the caller wants (the CLI writes it next to the report file). For
//! kill-resilience *during* a resume, [`resume_chunks_with`] runs the
//! missing chunks in bounded waves and hands the manifest to a persist
//! callback after each wave.

use crate::{derive_seed, parallel_map};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Progress record of a chunked trial run: geometry plus the outputs of
/// every completed chunk, keyed by chunk index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkManifest<T> {
    experiment_seed: u64,
    trials: usize,
    chunk: usize,
    /// Completed chunk index → outputs in trial order.
    completed: BTreeMap<usize, Vec<T>>,
}

impl<T> ChunkManifest<T> {
    /// An empty manifest for a run of `trials` trials in chunks of
    /// `chunk` (clamped to ≥ 1), seeded with `experiment_seed`.
    #[must_use]
    pub fn new(experiment_seed: u64, trials: usize, chunk: usize) -> Self {
        ChunkManifest {
            experiment_seed,
            trials,
            chunk: chunk.max(1),
            completed: BTreeMap::new(),
        }
    }

    /// The experiment seed this run derives every trial seed from.
    #[must_use]
    pub fn experiment_seed(&self) -> u64 {
        self.experiment_seed
    }

    /// Total number of trials in the run.
    #[must_use]
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Chunk size (trials per unit of work).
    #[must_use]
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Total number of chunks in the run.
    #[must_use]
    pub fn total_chunks(&self) -> usize {
        self.trials.div_ceil(self.chunk)
    }

    /// Number of chunks already completed.
    #[must_use]
    pub fn completed_chunks(&self) -> usize {
        self.completed.len()
    }

    /// Whether every chunk has completed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.completed.len() == self.total_chunks()
    }

    /// Indices of the chunks still to run, ascending.
    #[must_use]
    pub fn remaining_chunks(&self) -> Vec<usize> {
        (0..self.total_chunks())
            .filter(|c| !self.completed.contains_key(c))
            .collect()
    }

    /// The trial-index range `[start, end)` of chunk `c`.
    #[must_use]
    pub fn chunk_range(&self, c: usize) -> (usize, usize) {
        let start = c * self.chunk;
        (start, (start + self.chunk).min(self.trials))
    }

    /// The derived seeds of chunk `c`, in trial order.
    #[must_use]
    pub fn chunk_seeds(&self, c: usize) -> Vec<u64> {
        let (start, end) = self.chunk_range(c);
        (start..end)
            .map(|i| derive_seed(self.experiment_seed, i as u64))
            .collect()
    }

    /// Records chunk `c` as completed with `outputs` (one per trial).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index, an arity mismatch, or a chunk
    /// recorded twice — all three indicate a resume against the wrong
    /// manifest.
    pub fn record_chunk(&mut self, c: usize, outputs: Vec<T>) {
        assert!(c < self.total_chunks(), "chunk {c} out of range");
        let (start, end) = self.chunk_range(c);
        assert_eq!(
            outputs.len(),
            end - start,
            "chunk {c} must record one output per trial"
        );
        let previous = self.completed.insert(c, outputs);
        assert!(previous.is_none(), "chunk {c} recorded twice");
    }

    /// Whether this manifest belongs to the run described by
    /// `(experiment_seed, trials, chunk)` — the resume-safety check a
    /// loader performs before trusting a manifest found on disk.
    #[must_use]
    pub fn matches(&self, experiment_seed: u64, trials: usize, chunk: usize) -> bool {
        self.experiment_seed == experiment_seed
            && self.trials == trials
            && self.chunk == chunk.max(1)
    }

    /// Assembles the full output vector in trial order.
    ///
    /// # Panics
    ///
    /// Panics unless the run [`is_complete`](Self::is_complete).
    #[must_use]
    pub fn into_outputs(self) -> Vec<T> {
        assert!(
            self.is_complete(),
            "cannot assemble outputs: {} of {} chunks missing",
            self.total_chunks() - self.completed.len(),
            self.total_chunks()
        );
        // BTreeMap iterates keys ascending, so concatenation is in
        // trial order by construction.
        self.completed.into_values().flatten().collect()
    }
}

impl<T: Serialize> ChunkManifest<T> {
    /// Serializes the manifest to JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("manifest outputs must be serializable")
    }
}

impl<T: Deserialize> ChunkManifest<T> {
    /// Parses a manifest from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse/shape error message.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// Runs every missing chunk of `manifest` on `threads` workers and
/// records the results.
///
/// After this returns, `manifest.into_outputs()` is bit-identical to
/// what [`parallel_trial_chunks`](crate::parallel_trial_chunks) with the
/// same geometry and task would have produced in one uninterrupted run.
///
/// # Panics
///
/// Panics if `task` returns a different number of outputs than seeds.
pub fn resume_chunks<T, F>(manifest: &mut ChunkManifest<T>, threads: usize, task: F)
where
    T: Send,
    F: Fn(usize, &[u64]) -> Vec<T> + Sync,
{
    resume_chunks_with(manifest, threads, usize::MAX, task, |_| {});
}

/// [`resume_chunks`] with bounded checkpoint waves: missing chunks run
/// `wave` at a time (clamped to ≥ `threads` so workers stay busy), and
/// `persist` sees the manifest after each wave — so a kill loses at most
/// one wave of work.
///
/// # Panics
///
/// Panics if `task` returns a different number of outputs than seeds.
pub fn resume_chunks_with<T, F, P>(
    manifest: &mut ChunkManifest<T>,
    threads: usize,
    wave: usize,
    task: F,
    mut persist: P,
) where
    T: Send,
    F: Fn(usize, &[u64]) -> Vec<T> + Sync,
    P: FnMut(&ChunkManifest<T>),
{
    let missing = manifest.remaining_chunks();
    if missing.is_empty() {
        return;
    }
    let wave = wave.max(threads.max(1));
    for batch in missing.chunks(wave) {
        // Precompute each chunk's work description so the parallel
        // closure does not borrow the manifest (whose outputs need not
        // be `Sync`).
        let work: Vec<(usize, Vec<u64>)> = batch
            .iter()
            .map(|&c| (manifest.chunk_range(c).0, manifest.chunk_seeds(c)))
            .collect();
        let ran = parallel_map(batch.len(), threads, |k| {
            let (start, seeds) = &work[k];
            let values = task(*start, seeds);
            assert_eq!(
                values.len(),
                seeds.len(),
                "chunk task must return one output per trial"
            );
            values
        });
        for (k, values) in ran.into_iter().enumerate() {
            manifest.record_chunk(batch[k], values);
        }
        persist(manifest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel_trial_chunks;

    fn task(start: usize, seeds: &[u64]) -> Vec<(usize, u64)> {
        seeds
            .iter()
            .enumerate()
            .map(|(k, &seed)| (start + k, seed ^ 0xC0FFEE))
            .collect()
    }

    #[test]
    fn uninterrupted_resume_matches_parallel_trial_chunks() {
        let reference = parallel_trial_chunks(0x5EED, 103, 4, 8, task);
        for threads in [1, 2, 8] {
            let mut manifest = ChunkManifest::new(0x5EED, 103, 8);
            resume_chunks(&mut manifest, threads, task);
            assert!(manifest.is_complete());
            assert_eq!(manifest.into_outputs(), reference, "threads {threads}");
        }
    }

    #[test]
    fn killed_run_resumes_to_identical_outputs() {
        let reference = parallel_trial_chunks(0xDEAD, 50, 2, 7, task);
        // "Kill" after three chunks: only 0, 2, 5 completed.
        let mut manifest = ChunkManifest::new(0xDEAD, 50, 7);
        for c in [0usize, 2, 5] {
            let (start, _) = manifest.chunk_range(c);
            let seeds = manifest.chunk_seeds(c);
            manifest.record_chunk(c, task(start, &seeds));
        }
        // Round-trip through JSON, as a real kill/restart would.
        let revived = ChunkManifest::from_json(&manifest.to_json()).unwrap();
        assert!(revived.matches(0xDEAD, 50, 7));
        assert!(!revived.matches(0xDEAD, 50, 8));
        assert!(!revived.is_complete());
        assert_eq!(revived.remaining_chunks(), vec![1, 3, 4, 6, 7]);
        let mut revived = revived;
        resume_chunks(&mut revived, 4, task);
        assert_eq!(revived.into_outputs(), reference);
    }

    #[test]
    fn waves_persist_incrementally() {
        let mut manifest = ChunkManifest::new(0xA1, 64, 4); // 16 chunks
        let mut seen = Vec::new();
        resume_chunks_with(&mut manifest, 2, 4, task, |m| {
            seen.push(m.completed_chunks());
        });
        assert_eq!(seen, vec![4, 8, 12, 16], "one persist per wave");
        assert_eq!(
            manifest.into_outputs(),
            parallel_trial_chunks(0xA1, 64, 2, 4, task)
        );
    }

    #[test]
    fn resume_on_complete_manifest_is_a_no_op() {
        let mut manifest = ChunkManifest::new(0xB2, 10, 10);
        resume_chunks(&mut manifest, 2, task);
        let before = manifest.clone();
        resume_chunks(&mut manifest, 2, |_, _| panic!("nothing should run"));
        assert_eq!(manifest, before);
    }

    #[test]
    #[should_panic(expected = "recorded twice")]
    fn double_record_panics() {
        let mut manifest = ChunkManifest::new(0xC3, 8, 4);
        manifest.record_chunk(0, task(0, &manifest.chunk_seeds(0)));
        manifest.record_chunk(0, task(0, &manifest.chunk_seeds(0)));
    }

    #[test]
    #[should_panic(expected = "chunks missing")]
    fn assembling_an_incomplete_manifest_panics() {
        let manifest: ChunkManifest<u64> = ChunkManifest::new(0xD4, 8, 4);
        let _ = manifest.into_outputs();
    }
}
