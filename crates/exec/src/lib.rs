//! Deterministic parallel execution engine for trial fan-out.
//!
//! Every headline SegScope experiment is an embarrassingly parallel
//! sweep over independent seeded trials (1000 KASLR breaks per timer
//! setting, N sites × M visits of website traces, per-model DNN trace
//! collection, ...). This crate runs those sweeps on a configurable
//! number of worker threads under one hard contract:
//!
//! > **Bit-identical output at any thread count.**
//!
//! Two mechanisms make that hold:
//!
//! 1. **Per-task seed derivation.** A task never shares an RNG with its
//!    siblings: it derives its own seed from
//!    `(experiment_seed, task_index)` via [`derive_seed`], a
//!    SplitMix64-style mixer. The schedule (which worker runs which
//!    task, and when) therefore cannot influence any task's randomness.
//! 2. **Ordered reduction.** Workers pull chunks of task indices from a
//!    shared atomic cursor, but results are placed back into their
//!    task-index slot, so the returned `Vec` is always in task order —
//!    identical to what a serial loop would produce.
//!
//! Worker count resolution (see [`resolve_threads`]): an explicit
//! per-call override beats the `SEGSCOPE_THREADS` environment variable,
//! which beats `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};

mod checkpoint;

pub use checkpoint::{resume_chunks, resume_chunks_with, ChunkManifest};

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "SEGSCOPE_THREADS";

/// Base task index reserved for auxiliary seed streams.
///
/// Experiments that need extra deterministic randomness beyond their
/// per-trial seeds (cross-validation splits, model initialization, ...)
/// derive it as `derive_seed(experiment_seed, AUX_STREAM + k)`. No real
/// trial count reaches 2^48 tasks, so auxiliary streams can never
/// collide with trial seeds.
pub const AUX_STREAM: u64 = 1 << 48;

/// Derives the seed for task `task_index` of an experiment seeded with
/// `experiment_seed`.
///
/// SplitMix64-style finalizer over both inputs: adjacent experiment
/// seeds or task indices yield statistically unrelated streams, unlike
/// the `seed + i` / `seed ^ const` patterns this replaces (which
/// collide across experiments — experiment `s` task 1 equals
/// experiment `s+1` task 0).
#[must_use]
pub fn derive_seed(experiment_seed: u64, task_index: u64) -> u64 {
    let mut z = experiment_seed
        .rotate_left(25)
        .wrapping_add(task_index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resolves the worker count: `explicit` override, then
/// [`THREADS_ENV`], then the machine's available parallelism.
#[must_use]
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        if n > 0 {
            return n;
        }
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// How many tasks a worker claims per queue operation: small enough to
/// balance uneven task costs, large enough to amortize the atomic.
fn chunk_size(tasks: usize, threads: usize) -> usize {
    (tasks / (threads * 4)).max(1)
}

/// Runs `task(i)` for `i in 0..tasks` on `threads` workers and returns
/// the results in task order.
///
/// The output is bit-identical to the serial
/// `(0..tasks).map(task).collect()` provided `task` is a pure function
/// of its index (derive per-task randomness via [`derive_seed`]).
///
/// Panics in a task propagate after all workers have stopped pulling
/// work.
pub fn parallel_map<T, F>(tasks: usize, threads: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(tasks.max(1));
    if threads == 1 {
        return (0..tasks).map(task).collect();
    }
    let cursor = AtomicUsize::new(0);
    let chunk = chunk_size(tasks, threads);
    let task = &task;
    let cursor = &cursor;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= tasks {
                            return local;
                        }
                        let end = (start + chunk).min(tasks);
                        for i in start..end {
                            local.push((i, task(i)));
                        }
                    }
                })
            })
            .collect();
        let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
        let mut panicked = None;
        for worker in workers {
            match worker.join() {
                Ok(local) => {
                    for (i, value) in local {
                        slots[i] = Some(value);
                    }
                }
                Err(payload) => panicked = Some(payload),
            }
        }
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every task index was claimed exactly once"))
            .collect()
    })
}

/// [`parallel_map`] with the worker count resolved from the
/// environment ([`resolve_threads`] with no override).
pub fn parallel_map_auto<T, F>(tasks: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map(tasks, resolve_threads(None), task)
}

/// Seeded fan-out: runs `task(i, derive_seed(experiment_seed, i))` for
/// each trial index, in parallel, with ordered results.
pub fn parallel_trials<T, F>(experiment_seed: u64, trials: usize, threads: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    parallel_map(trials, threads, |i| {
        task(i, derive_seed(experiment_seed, i as u64))
    })
}

/// [`parallel_trials`] with the worker count resolved from the
/// environment.
pub fn parallel_trials_auto<T, F>(experiment_seed: u64, trials: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    parallel_trials(experiment_seed, trials, resolve_threads(None), task)
}

/// Seeded fan-out where a *chunk of consecutive trials* — not a single
/// trial — is the unit of work a worker claims: `task(start, seeds)`
/// receives the chunk's first trial index plus one derived seed per
/// trial, and returns one output per seed, in trial order.
///
/// This is the entry point for batched trial runners: a worker hands the
/// whole chunk to a lane batch (e.g. `segsim::MachineBatch`) that
/// recycles machines across the chunk's trials instead of rebuilding one
/// per trial. The determinism contract is unchanged from
/// [`parallel_trials`]: every trial's seed is
/// `derive_seed(experiment_seed, index)` and outputs come back in trial
/// order, so results are bit-identical at any thread count *and any
/// chunk size* — provided `task` derives each trial's output from its
/// seed alone (lane recycling must replay fresh-machine state exactly).
///
/// # Panics
///
/// Panics if `task` returns a different number of outputs than seeds it
/// was given.
pub fn parallel_trial_chunks<T, F>(
    experiment_seed: u64,
    trials: usize,
    threads: usize,
    chunk: usize,
    task: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &[u64]) -> Vec<T> + Sync,
{
    let chunk = chunk.max(1);
    let chunks = trials.div_ceil(chunk);
    let ran = parallel_map(chunks, threads, |c| {
        let start = c * chunk;
        let end = (start + chunk).min(trials);
        let seeds: Vec<u64> = (start..end)
            .map(|i| derive_seed(experiment_seed, i as u64))
            .collect();
        let values = task(start, &seeds);
        assert_eq!(
            values.len(),
            seeds.len(),
            "chunk task must return one output per trial"
        );
        values
    });
    ran.into_iter().flatten().collect()
}

/// [`parallel_trials`] with per-trial observability: each trial gets its
/// own private [`obs::TraceSink`] of `capacity` events, bracketed by
/// `TrialStart`/`TrialEnd` span events, and the per-trial sinks are
/// merged **in task order** into one returned sink (each trial's events
/// re-tagged with its trial index as the track).
///
/// Because trial sinks are private and merged by index — never by
/// completion order — the merged trace is byte-identical at any worker
/// count, the same contract [`parallel_map`] gives for results.
pub fn parallel_trials_traced<T, F>(
    experiment_seed: u64,
    trials: usize,
    threads: usize,
    capacity: usize,
    task: F,
) -> (Vec<T>, obs::TraceSink)
where
    T: Send,
    F: Fn(usize, u64, &mut obs::TraceSink) -> T + Sync,
{
    let ran = parallel_map(trials, threads, |i| {
        let mut sink = obs::TraceSink::with_capacity(capacity);
        sink.emit(0, obs::EventKind::TrialStart { index: i as u64 });
        let value = task(i, derive_seed(experiment_seed, i as u64), &mut sink);
        let end_ps = sink.events().last().map_or(0, |e| e.at_ps);
        sink.emit(end_ps, obs::EventKind::TrialEnd { index: i as u64 });
        (value, sink)
    });
    let mut merged = obs::TraceSink::with_capacity(capacity.saturating_mul(trials.max(1)));
    let mut values = Vec::with_capacity(trials);
    for (i, (value, sink)) in ran.into_iter().enumerate() {
        merged.absorb(&sink, i as u32);
        values.push(value);
    }
    (values, merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order() {
        for threads in [1, 2, 4, 8] {
            let out = parallel_map(1000, threads, |i| i * 3);
            assert_eq!(out, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_tiny_fan_outs_work() {
        assert_eq!(parallel_map(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 8, |i| i + 7), vec![7]);
        assert_eq!(parallel_map(3, 1, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn derived_seeds_do_not_collide_across_adjacent_experiments() {
        // The ad-hoc `seed + i` pattern this replaces has
        // derive(s, 1) == derive(s + 1, 0); the mixer must not.
        for s in 0..64u64 {
            for i in 0..64u64 {
                assert_ne!(derive_seed(s, i + 1), derive_seed(s + 1, i));
            }
        }
    }

    #[test]
    fn derived_seeds_are_unique_within_an_experiment() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_seed(0xE5EED, i)));
        }
    }

    #[test]
    fn explicit_thread_count_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
        assert!(resolve_threads(Some(0)) >= 1);
    }

    #[test]
    fn trials_pass_derived_seeds() {
        let out = parallel_trials(0xABCD, 16, 4, |i, seed| (i, seed));
        for (i, (idx, seed)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*seed, derive_seed(0xABCD, i as u64));
        }
    }

    #[test]
    fn chunked_trials_match_per_trial_fan_out_at_any_geometry() {
        let reference = parallel_trials(0xBA7C, 103, 1, |i, seed| (i, seed));
        for threads in [1, 2, 4, 8] {
            for chunk in [1, 4, 17, 64, 200] {
                let out = parallel_trial_chunks(0xBA7C, 103, threads, chunk, |start, seeds| {
                    seeds
                        .iter()
                        .enumerate()
                        .map(|(k, &seed)| (start + k, seed))
                        .collect()
                });
                assert_eq!(out, reference, "threads {threads} chunk {chunk}");
            }
        }
    }

    #[test]
    fn chunked_trials_handle_empty_fan_out() {
        let out = parallel_trial_chunks(0x0, 0, 4, 8, |_, seeds| seeds.to_vec());
        assert_eq!(out, Vec::<u64>::new());
    }

    #[test]
    #[should_panic(expected = "one output per trial")]
    fn chunk_arity_mismatch_panics() {
        let _ = parallel_trial_chunks(0x1, 8, 1, 4, |_, _| vec![0u64]);
    }

    #[test]
    #[should_panic(expected = "task 7 exploded")]
    fn worker_panics_propagate() {
        let _ = parallel_map(16, 4, |i| {
            assert!(i != 7, "task 7 exploded");
            i
        });
    }

    #[test]
    fn traced_trials_merge_in_task_order_at_any_thread_count() {
        let run = |threads| {
            parallel_trials_traced(0x7AC3, 9, threads, 64, |i, seed, sink| {
                sink.emit(
                    (i as u64 + 1) * 100,
                    obs::EventKind::ProbeSample {
                        segcnt: seed % 1000,
                        irq: obs::IrqClass::Timer,
                    },
                );
                sink.metrics.incr("trials", 1);
                seed
            })
        };
        let (ref_values, ref_sink) = run(1);
        assert_eq!(ref_sink.metrics.counter("trials"), 9);
        // 9 trials × (TrialStart + ProbeSample + TrialEnd).
        assert_eq!(ref_sink.len(), 27);
        for threads in [2, 4, 8] {
            let (values, sink) = run(threads);
            assert_eq!(values, ref_values);
            assert_eq!(sink, ref_sink, "trace differs at {threads} threads");
        }
        // Events are grouped by trial, tracks ascending.
        let tracks: Vec<u32> = ref_sink.events().iter().map(|e| e.track).collect();
        let mut sorted = tracks.clone();
        sorted.sort_unstable();
        assert_eq!(tracks, sorted);
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let reference = parallel_map(257, 1, |i| derive_seed(42, i as u64));
        for threads in [2, 3, 4, 8, 16] {
            assert_eq!(
                parallel_map(257, threads, |i| derive_seed(42, i as u64)),
                reference
            );
        }
    }
}
