//! Property-based determinism tests for the parallel experiment engine:
//! the worker count must be architecturally invisible in the results.

use exec::{derive_seed, parallel_map, parallel_trials};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Results are bit-identical at 1, 2, 4, and 8 workers for any task
    /// count and experiment seed.
    #[test]
    fn thread_count_is_invisible(tasks in 1usize..40, seed in 0u64..1_000_000) {
        let run = |threads: usize| {
            parallel_trials(seed, tasks, threads, |i, task_seed| {
                // Per-task work whose result depends only on the derived
                // seed and the task index — never on scheduling.
                let mut acc = task_seed ^ (i as u64);
                for _ in 0..=(i % 7) {
                    acc = acc.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
                }
                acc
            })
        };
        let reference = run(1);
        for threads in [2usize, 4, 8] {
            prop_assert_eq!(&run(threads), &reference);
        }
    }

    /// Derived per-task seeds never collide within an experiment.
    #[test]
    fn derived_seeds_are_distinct(seed in 0u64..1_000_000, n in 2usize..200) {
        let mut seeds: Vec<u64> = (0..n as u64).map(|i| derive_seed(seed, i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        prop_assert_eq!(seeds.len(), n);
    }

    /// `parallel_map` returns results in task order at any worker count.
    #[test]
    fn map_preserves_order(tasks in 1usize..50, threads in 1usize..9) {
        let out = parallel_map(tasks, threads, |i| i * i);
        let expected: Vec<usize> = (0..tasks).map(|i| i * i).collect();
        prop_assert_eq!(out, expected);
    }
}
