//! Deterministic sampling helpers built on `rand`.
//!
//! The workspace deliberately avoids a heavyweight statistics dependency;
//! the handful of distributions the simulator's noise models need (normal,
//! exponential, truncated/heavy-tail mixtures) are implemented here with
//! textbook methods. All samplers take an explicit RNG, so every experiment
//! is reproducible from a seed.

use rand::Rng;

/// Draws a standard-normal sample via the Box–Muller transform.
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let z = irq::dist::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws from `N(mean, std)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Draws from `N(mean, std)` truncated to `[lo, hi]` by rejection (falls
/// back to clamping after 64 rejected draws, which only triggers for
/// pathological parameterizations).
pub fn truncated_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    std: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    debug_assert!(lo <= hi);
    for _ in 0..64 {
        let x = normal(rng, mean, std);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    normal(rng, mean, std).clamp(lo, hi)
}

/// Draws from an exponential distribution with the given rate (events per
/// unit time). Returns the waiting time to the next event.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    -u.ln() / rate
}

/// Draws from a log-normal distribution parameterized by the *underlying*
/// normal's mean and standard deviation.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Draws from a two-component mixture: with probability `tail_prob` the
/// `tail` closure is sampled, otherwise the `body` closure.
///
/// Used for the paper's noise shapes: a tight body (e.g. the 1.0–1.5 µs
/// handler-cost cluster of Fig. 4) plus a rare heavy tail (the outliers that
/// defeat threshold-based interrupt detectors in Fig. 5).
pub fn mixture<R, B, T>(rng: &mut R, tail_prob: f64, mut body: B, mut tail: T) -> f64
where
    R: Rng + ?Sized,
    B: FnMut(&mut R) -> f64,
    T: FnMut(&mut R) -> f64,
{
    if rng.gen::<f64>() < tail_prob {
        tail(rng)
    } else {
        body(rng)
    }
}

/// Draws from a Poisson distribution with mean `lambda`.
///
/// Uses Knuth's method for small means and a clamped normal approximation
/// for large ones — plenty for the simulator's "how many rare events in N
/// trials" uses.
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "lambda must be finite and non-negative"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = normal(rng, lambda, lambda.sqrt());
        x.round().max(0.0) as u64
    }
}

/// Simple running-statistics accumulator (Welford's algorithm).
///
/// ```
/// let mut acc = irq::dist::RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 5.0);
/// assert!((acc.population_std() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (divides by `n`).
    #[must_use]
    pub fn population_std(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Sample standard deviation (divides by `n - 1`; 0 when `n < 2`).
    #[must_use]
    pub fn sample_std(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = RunningStats::new();
        acc.extend(iter);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xDECAF)
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = rng();
        let stats: RunningStats = (0..50_000).map(|_| normal(&mut r, 10.0, 3.0)).collect();
        assert!((stats.mean() - 10.0).abs() < 0.1, "mean {}", stats.mean());
        assert!(
            (stats.population_std() - 3.0).abs() < 0.1,
            "std {}",
            stats.population_std()
        );
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut r = rng();
        let stats: RunningStats = (0..50_000).map(|_| exponential(&mut r, 4.0)).collect();
        assert!((stats.mean() - 0.25).abs() < 0.01, "mean {}", stats.mean());
        assert!(stats.min() >= 0.0);
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x = truncated_normal(&mut r, 1.2, 0.3, 1.0, 1.5);
            assert!((1.0..=1.5).contains(&x), "{x} out of bounds");
        }
    }

    #[test]
    fn mixture_hits_both_components() {
        let mut r = rng();
        let mut tails = 0u32;
        for _ in 0..10_000 {
            let x = mixture(&mut r, 0.1, |_| 0.0, |_| 1.0);
            if x == 1.0 {
                tails += 1;
            }
        }
        // With p = 0.1, expect roughly 1000 tail draws.
        assert!((800..1200).contains(&tails), "tails = {tails}");
    }

    #[test]
    fn poisson_mean_and_edge_cases() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
        let stats: RunningStats = (0..20_000).map(|_| poisson(&mut r, 3.5) as f64).collect();
        assert!(
            (stats.mean() - 3.5).abs() < 0.1,
            "small-lambda mean {}",
            stats.mean()
        );
        let stats: RunningStats = (0..20_000).map(|_| poisson(&mut r, 200.0) as f64).collect();
        assert!(
            (stats.mean() - 200.0).abs() < 1.0,
            "large-lambda mean {}",
            stats.mean()
        );
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = rng();
        for _ in 0..1_000 {
            assert!(log_normal(&mut r, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn running_stats_sample_std() {
        let stats: RunningStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(stats.count(), 4);
        assert_eq!(stats.mean(), 2.5);
        let expected = (5.0f64 / 3.0).sqrt();
        assert!((stats.sample_std() - expected).abs() < 1e-12);
        assert_eq!(stats.min(), 1.0);
        assert_eq!(stats.max(), 4.0);
    }

    #[test]
    fn running_stats_empty_and_single() {
        let empty = RunningStats::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.population_std(), 0.0);
        let mut one = RunningStats::new();
        one.push(5.0);
        assert_eq!(one.sample_std(), 0.0);
        assert_eq!(one.population_std(), 0.0);
    }

    #[test]
    fn determinism_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
