//! The per-core interrupt fabric: an APIC-like combination of a periodic
//! timer, stochastic sources, and trace-driven device sources.

use crate::dist;
use crate::exit::{ExitClass, KernelExit};
use crate::fault::{FaultLog, FaultPlan, FaultedPop};
use crate::kind::InterruptKind;
use crate::time::Ps;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Source count at and below which the linear scan beats the calendar
/// heap.
///
/// Chosen from `BENCH_hotpath.json`: at the common 3-source machine
/// (timer + PMI + resched) the calendar measured 0.85x against the scan,
/// broke even in the low tens, and only cleared 2x beyond ~100 sources.
/// Eight leaves comfortable margin on both sides of the measured
/// crossover and matches the `sources > 8` boundary
/// `hotpath_report::validate()` uses to classify multi-source arms.
pub const FABRIC_CUTOVER_SOURCES: usize = 8;

/// Which arbitration strategy an [`InterruptFabric`] is running.
///
/// The fabric auto-selects per [`FabricImpl::auto_select`]: small fabrics
/// scan their source array linearly (better constant factor, no heap
/// maintenance), large fabrics keep the lazily-invalidated event-calendar
/// heap. The two are behaviourally identical — same delivery order, same
/// tie-breaks, same RNG-draw sequence — so selection never changes any
/// simulated outcome, only throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FabricImpl {
    /// O(sources) linear scan per refresh; no calendar maintenance.
    NaiveScan,
    /// Lazily-invalidated min-heap calendar; O(log sources) maintenance
    /// with an O(1) cached head.
    Calendar,
}

impl FabricImpl {
    /// The implementation a fabric with `source_count` sources runs:
    /// [`FabricImpl::NaiveScan`] at or below [`FABRIC_CUTOVER_SOURCES`],
    /// [`FabricImpl::Calendar`] above it.
    #[must_use]
    pub fn auto_select(source_count: usize) -> Self {
        if source_count <= FABRIC_CUTOVER_SOURCES {
            FabricImpl::NaiveScan
        } else {
            FabricImpl::Calendar
        }
    }
}

/// Identifies one source inside an [`InterruptFabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SourceId(usize);

impl SourceId {
    pub(crate) fn from_index(idx: usize) -> Self {
        SourceId(idx)
    }

    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// An interrupt scheduled for delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingInterrupt {
    /// Delivery instant.
    pub at: Ps,
    /// Kind of interrupt.
    pub kind: InterruptKind,
    /// The source that produced it (`None` for one-shot injections).
    pub source: Option<SourceId>,
    /// Exit class the delivery will be booked under. Fabric sources
    /// always produce [`ExitClass::Irq`]; one-shots carry whatever class
    /// they were injected with (an attacker driving exits into a victim
    /// injects [`ExitClass::EnclaveAex`] events).
    pub class: ExitClass,
}

impl PendingInterrupt {
    /// The pending delivery's `(kind, class)` coordinate.
    #[must_use]
    pub fn exit(&self) -> KernelExit {
        KernelExit {
            kind: self.kind,
            class: self.class,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum SourceModel {
    /// Strictly periodic with small Gaussian edge jitter (the APIC timer).
    Periodic {
        kind: InterruptKind,
        period: Ps,
        jitter_std: Ps,
        /// Nominal (jitter-free) time of the next edge.
        nominal_next: Ps,
        enabled: bool,
    },
    /// Poisson arrivals at a fixed rate.
    Poisson {
        kind: InterruptKind,
        rate_hz: f64,
        enabled: bool,
    },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct SourceState {
    pub(crate) model: SourceModel,
    pub(crate) next: Option<Ps>,
    /// Bumped every time `next` changes; calendar entries carry the
    /// generation they were scheduled under, so stale heap entries are
    /// recognised and discarded lazily.
    pub(crate) gen: u64,
}

impl SourceState {
    pub(crate) fn kind(&self) -> InterruptKind {
        match self.model {
            SourceModel::Periodic { kind, .. } | SourceModel::Poisson { kind, .. } => kind,
        }
    }
}

/// A per-core interrupt fabric: owns all interrupt sources and yields
/// deliveries in time order.
///
/// The fabric is *pull-based*: the machine asks for the next pending
/// interrupt and acknowledges it with [`InterruptFabric::pop`], at which
/// point the producing source schedules its subsequent arrival. One-shot
/// interrupts (device activity emitted by victim workload models) are
/// injected with [`InterruptFabric::inject`].
///
/// Internally the fabric is *adaptive* (see [`FabricImpl`]): at or below
/// [`FABRIC_CUTOVER_SOURCES`] sources it refreshes its cached head with a
/// linear scan of the source array (the heap constant factors lose at
/// small counts), above it it keeps an *event calendar* — a
/// lazily-invalidated min-heap of armed source arrivals. Either way the
/// cached merged head across sources and the injected one-shot heap makes
/// [`peek_next`](Self::peek_next) O(1). The pre-calendar implementation
/// survives as [`crate::naive::NaiveFabric`], the reference oracle the
/// differential tests (and the `bench_hotpath` baseline arm) compare
/// against.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InterruptFabric {
    sources: Vec<SourceState>,
    injected: BinaryHeap<Reverse<InjectedEvent>>,
    /// Min-heap of `(at, idx, gen)` arrivals. Entries whose `gen` no
    /// longer matches their source are stale and skipped on pop. Empty
    /// (and unmaintained) while `calendar_live` is false.
    calendar: BinaryHeap<Reverse<CalendarEntry>>,
    /// Cached earliest pending interrupt: the merged head of the sources
    /// (calendar head or scan minimum) and the injected heap, refreshed
    /// by every mutating call.
    next_event: Option<PendingInterrupt>,
    /// Whether the calendar heap is being maintained. Flips to true — once,
    /// permanently — when the source count first exceeds
    /// [`FABRIC_CUTOVER_SOURCES`]; sources are never removed, so a fabric
    /// never falls back to scanning.
    calendar_live: bool,
}

/// One armed source arrival in the calendar heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct CalendarEntry {
    at: Ps,
    /// Source index; the secondary key, so simultaneous arrivals pop in
    /// source order — exactly the tie the naive scan's `at < best.at`
    /// comparison resolves toward the lowest index.
    idx: usize,
    gen: u64,
}

impl Ord for CalendarEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.idx, self.gen).cmp(&(other.at, other.idx, other.gen))
    }
}

impl PartialOrd for CalendarEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A canonical, heap-free image of an [`InterruptFabric`] — see
/// [`InterruptFabric::snapshot`].
///
/// Because the fields are canonical (one-shots sorted in delivery order,
/// no derived heap state), `PartialEq` over two snapshots means "these
/// fabrics will deliver identical streams from here", which is what the
/// divergence bisector compares.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FabricSnapshot {
    sources: Vec<SourceState>,
    /// Undelivered one-shots, sorted in delivery order.
    injected: Vec<InjectedEvent>,
    calendar_live: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct InjectedEvent {
    pub(crate) at: Ps,
    pub(crate) kind: InterruptKind,
    pub(crate) class: ExitClass,
}

impl Ord for InjectedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // `class` is the last tie-break so same-instant injections keep
        // the pre-exit-class `(at, kind)` pop order whenever classes
        // agree (they always do in a defense-free run: everything is
        // `Irq`).
        (self.at, self.kind, self.class).cmp(&(other.at, other.kind, other.class))
    }
}

impl PartialOrd for InjectedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl InterruptFabric {
    /// An empty fabric with no sources.
    #[must_use]
    pub fn new() -> Self {
        InterruptFabric::default()
    }

    /// Adds the periodic APIC timer at `hz` ticks per second with Gaussian
    /// edge jitter, scheduling its first edge one period from time zero.
    ///
    /// Returns the source id so callers can later reprogram or disable it.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive.
    pub fn add_periodic_timer<R: Rng + ?Sized>(
        &mut self,
        hz: f64,
        jitter_std: Ps,
        rng: &mut R,
    ) -> SourceId {
        assert!(hz > 0.0, "timer frequency must be positive");
        let period = Ps::from_secs_f64(1.0 / hz);
        let id = SourceId(self.sources.len());
        self.sources.push(SourceState {
            model: SourceModel::Periodic {
                kind: InterruptKind::Timer,
                period,
                jitter_std,
                nominal_next: period,
                enabled: true,
            },
            next: None,
            gen: 0,
        });
        self.reschedule(id.0, Ps::ZERO, rng);
        self.maybe_activate_calendar();
        self.refresh_next();
        id
    }

    /// Adds a Poisson source of the given kind at `rate_hz` events/second,
    /// scheduling its first arrival from time zero.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not strictly positive.
    pub fn add_poisson<R: Rng + ?Sized>(
        &mut self,
        kind: InterruptKind,
        rate_hz: f64,
        rng: &mut R,
    ) -> SourceId {
        assert!(rate_hz > 0.0, "poisson rate must be positive");
        let id = SourceId(self.sources.len());
        self.sources.push(SourceState {
            model: SourceModel::Poisson {
                kind,
                rate_hz,
                enabled: true,
            },
            next: None,
            gen: 0,
        });
        self.reschedule(id.0, Ps::ZERO, rng);
        self.maybe_activate_calendar();
        self.refresh_next();
        id
    }

    /// The arbitration strategy currently active (see [`FabricImpl`]).
    #[must_use]
    pub fn active_impl(&self) -> FabricImpl {
        if self.calendar_live {
            FabricImpl::Calendar
        } else {
            FabricImpl::NaiveScan
        }
    }

    /// Switches to calendar maintenance once the source count crosses the
    /// cutover, seeding the heap from every armed source. One-way: adds
    /// only grow the source array, so the scan mode is never re-entered.
    fn maybe_activate_calendar(&mut self) {
        if self.calendar_live
            || FabricImpl::auto_select(self.sources.len()) == FabricImpl::NaiveScan
        {
            return;
        }
        debug_assert!(self.calendar.is_empty(), "scan mode maintains no calendar");
        for (idx, state) in self.sources.iter().enumerate() {
            if let Some(at) = state.next {
                self.calendar.push(Reverse(CalendarEntry {
                    at,
                    idx,
                    gen: state.gen,
                }));
            }
        }
        self.calendar_live = true;
    }

    /// Schedules a one-shot interrupt (device activity from a victim
    /// workload model), classified as an ordinary IRQ.
    #[inline]
    pub fn inject(&mut self, at: Ps, kind: InterruptKind) {
        self.inject_exit(at, kind, ExitClass::Irq);
    }

    /// Schedules a one-shot delivery under an explicit exit class — the
    /// offensive direction of the injection machinery: a Heckler-style
    /// attacker drives [`ExitClass::EnclaveAex`] exits into a victim.
    #[inline]
    pub fn inject_exit(&mut self, at: Ps, kind: InterruptKind, class: ExitClass) {
        self.injected
            .push(Reverse(InjectedEvent { at, kind, class }));
        // A strictly-later injection cannot displace the cached head; ties
        // at the head's instant can (injected events order by kind), so
        // anything else re-merges the heads.
        if self.next_event.is_none_or(|b| at <= b.at) {
            self.refresh_next();
        }
    }

    /// Schedules a batch of one-shot interrupts.
    pub fn inject_all<I: IntoIterator<Item = (Ps, InterruptKind)>>(&mut self, events: I) {
        for (at, kind) in events {
            self.inject(at, kind);
        }
    }

    /// Schedules a batch of one-shot deliveries with explicit classes.
    pub fn inject_exit_all<I: IntoIterator<Item = (Ps, InterruptKind, ExitClass)>>(
        &mut self,
        events: I,
    ) {
        for (at, kind, class) in events {
            self.inject_exit(at, kind, class);
        }
    }

    /// Enables or disables a source (models tickless mode for the timer).
    ///
    /// Disabling clears the pending arrival; re-enabling schedules the next
    /// arrival relative to `now`.
    pub fn set_enabled<R: Rng + ?Sized>(
        &mut self,
        id: SourceId,
        enabled: bool,
        now: Ps,
        rng: &mut R,
    ) {
        let state = &mut self.sources[id.0];
        match &mut state.model {
            SourceModel::Periodic {
                enabled: e,
                nominal_next,
                period,
                ..
            } => {
                *e = enabled;
                if enabled {
                    *nominal_next = now + *period;
                }
            }
            SourceModel::Poisson { enabled: e, .. } => *e = enabled,
        }
        if enabled {
            self.reschedule(id.0, now, rng);
        } else {
            state.next = None;
            state.gen += 1;
        }
        self.refresh_next();
    }

    /// Reprograms the periodic timer's frequency (the APIC HZ setting),
    /// effective from `now`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a periodic source or `hz` is not positive.
    pub fn set_timer_hz<R: Rng + ?Sized>(&mut self, id: SourceId, hz: f64, now: Ps, rng: &mut R) {
        assert!(hz > 0.0, "timer frequency must be positive");
        let state = &mut self.sources[id.0];
        match &mut state.model {
            SourceModel::Periodic {
                period,
                nominal_next,
                ..
            } => {
                *period = Ps::from_secs_f64(1.0 / hz);
                *nominal_next = now + *period;
            }
            SourceModel::Poisson { .. } => panic!("set_timer_hz on a non-periodic source"),
        }
        self.reschedule(id.0, now, rng);
        self.refresh_next();
    }

    /// The earliest pending interrupt across all sources and injections,
    /// without consuming it.
    ///
    /// O(1): returns the calendar's cached merged head.
    #[inline]
    #[must_use]
    pub fn peek_next(&self) -> Option<PendingInterrupt> {
        self.next_event
    }

    /// Consumes the earliest pending interrupt (which is the one
    /// [`peek_next`](Self::peek_next) reports) and schedules the producing
    /// source's next arrival.
    ///
    /// The consume path is fused: the cached head says exactly which queue
    /// to pop, so no re-scan or re-match of the winner is needed.
    #[inline]
    pub fn pop<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<PendingInterrupt> {
        let next = self.next_event?;
        match next.source {
            Some(SourceId(idx)) => {
                let state = &mut self.sources[idx];
                state.gen += 1;
                state.next = draw_next(&mut state.model, next.at, rng);
                let (gen, rearmed) = (state.gen, state.next);
                if self.calendar_live {
                    // `refresh_next` left the calendar head valid, and a
                    // valid head is the cached event itself — so the
                    // source's next arrival replaces it in place (one
                    // sift-down) instead of a pop + push (two sifts).
                    match rearmed {
                        Some(at) => {
                            if let Some(mut head) = self.calendar.peek_mut() {
                                *head = Reverse(CalendarEntry { at, idx, gen });
                            }
                        }
                        None => {
                            self.calendar.pop();
                        }
                    }
                }
            }
            None => {
                self.injected.pop();
            }
        }
        self.refresh_next();
        Some(next)
    }

    /// Consumes the earliest pending interrupt through a [`FaultPlan`]:
    /// the event may be dropped (never reaching the core) or spawn a
    /// ghost duplicate scheduled `duplicate_delay` later, with every
    /// injected fault counted in `log`.
    ///
    /// With a zeroed plan this is behaviourally identical to
    /// [`pop`](Self::pop) apart from the fault rolls consuming RNG draws;
    /// callers that want bit-identical RNG streams gate on
    /// [`FaultPlan::has_delivery_faults`] and call `pop` directly.
    pub fn pop_with_faults<R: Rng + ?Sized>(
        &mut self,
        plan: &FaultPlan,
        log: &mut FaultLog,
        rng: &mut R,
    ) -> Option<FaultedPop> {
        self.pop_with_faults_traced(plan, log, rng, None)
    }

    /// [`pop_with_faults`](Self::pop_with_faults) with observability: each
    /// fault decision (drop, ghost duplicate) is mirrored into `sink` as an
    /// `IrqDropped` / `IrqDuplicated` event. With `sink = None` this is the
    /// exact code path of `pop_with_faults` — the sink is consulted only
    /// *after* every RNG roll, so installing one never shifts the stream.
    pub fn pop_with_faults_traced<R: Rng + ?Sized>(
        &mut self,
        plan: &FaultPlan,
        log: &mut FaultLog,
        rng: &mut R,
        mut sink: Option<&mut obs::TraceSink>,
    ) -> Option<FaultedPop> {
        let next = self.pop(rng)?;
        if plan.drop_prob > 0.0 && rng.gen::<f64>() < plan.drop_prob {
            log.dropped += 1;
            if let Some(sink) = sink.as_mut() {
                sink.emit(
                    next.at.as_ps(),
                    obs::EventKind::IrqDropped {
                        irq: next.kind.into(),
                    },
                );
                sink.metrics.incr("irq.dropped", 1);
            }
            return Some(FaultedPop::Dropped(next));
        }
        if plan.duplicate_prob > 0.0 && rng.gen::<f64>() < plan.duplicate_prob {
            log.duplicated += 1;
            let ghost_at = next.at + plan.duplicate_delay;
            // The ghost keeps the original's class: a duplicated AEX is
            // another AEX, not a plain IRQ.
            self.inject_exit(ghost_at, next.kind, next.class);
            if let Some(sink) = sink.as_mut() {
                sink.emit(
                    next.at.as_ps(),
                    obs::EventKind::IrqDuplicated {
                        irq: next.kind.into(),
                        ghost_at_ps: ghost_at.as_ps(),
                    },
                );
                sink.metrics.incr("irq.duplicated", 1);
            }
        }
        Some(FaultedPop::Delivered(next))
    }

    /// Number of sources (not counting one-shot injections).
    #[must_use]
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Number of still-undelivered injected one-shots.
    #[must_use]
    pub fn injected_backlog(&self) -> usize {
        self.injected.len()
    }

    /// Captures the fabric's canonical state: source models with their
    /// armed arrivals, undelivered one-shots in delivery order, and the
    /// (one-way) calendar flag.
    ///
    /// The calendar heap and cached head are *derived* state — fully
    /// reconstructible from the sources — so they are deliberately left
    /// out: two behaviourally identical fabrics always produce equal
    /// snapshots even if their heap arrangements differ.
    #[must_use]
    pub fn snapshot(&self) -> FabricSnapshot {
        let mut injected: Vec<InjectedEvent> = self.injected.iter().map(|&Reverse(e)| e).collect();
        injected.sort_unstable();
        FabricSnapshot {
            sources: self.sources.clone(),
            injected,
            calendar_live: self.calendar_live,
        }
    }

    /// Rebuilds a fabric from a [`FabricSnapshot`], re-deriving the
    /// calendar heap and cached head. The result is restore-exact: it
    /// yields the same deliveries and consumes the same RNG draws as the
    /// fabric the snapshot was taken from.
    #[must_use]
    pub fn from_snapshot(snap: &FabricSnapshot) -> Self {
        let mut fabric = InterruptFabric {
            sources: snap.sources.clone(),
            injected: snap.injected.iter().copied().map(Reverse).collect(),
            calendar: BinaryHeap::new(),
            next_event: None,
            calendar_live: snap.calendar_live,
        };
        if fabric.calendar_live {
            for (idx, state) in fabric.sources.iter().enumerate() {
                if let Some(at) = state.next {
                    fabric.calendar.push(Reverse(CalendarEntry {
                        at,
                        idx,
                        gen: state.gen,
                    }));
                }
            }
        }
        fabric.refresh_next();
        fabric
    }

    /// Redraws source `idx`'s next arrival from `now`, bumping its
    /// generation and (in calendar mode, when armed) entering it into the
    /// calendar. The caller is responsible for
    /// [`refresh_next`](Self::refresh_next).
    fn reschedule<R: Rng + ?Sized>(&mut self, idx: usize, now: Ps, rng: &mut R) {
        let state = &mut self.sources[idx];
        state.gen += 1;
        state.next = draw_next(&mut state.model, now, rng);
        if self.calendar_live {
            if let Some(at) = state.next {
                self.calendar.push(Reverse(CalendarEntry {
                    at,
                    idx,
                    gen: state.gen,
                }));
            }
        }
    }

    /// Re-merges the best source arrival and the injected head into the
    /// cached `next_event`. In calendar mode the best arrival is the heap
    /// head (stale entries discarded on the way); in scan mode it is the
    /// linear minimum over the source array — the same first-wins `<`
    /// comparison [`crate::naive::NaiveFabric`] applies, so ties resolve
    /// toward the lowest source index in both modes.
    ///
    /// Postcondition (calendar mode): the calendar head, if any, is a live
    /// entry — its generation matches its source — so `pop` may consume it
    /// blindly.
    fn refresh_next(&mut self) {
        let best = if self.calendar_live {
            while let Some(Reverse(head)) = self.calendar.peek() {
                if self.sources[head.idx].gen == head.gen {
                    break;
                }
                self.calendar.pop();
            }
            self.calendar.peek().map(|&Reverse(e)| PendingInterrupt {
                at: e.at,
                kind: self.sources[e.idx].kind(),
                source: Some(SourceId(e.idx)),
                class: ExitClass::Irq,
            })
        } else {
            let mut best: Option<PendingInterrupt> = None;
            for (idx, state) in self.sources.iter().enumerate() {
                if let Some(at) = state.next {
                    if best.is_none_or(|b| at < b.at) {
                        best = Some(PendingInterrupt {
                            at,
                            kind: state.kind(),
                            source: Some(SourceId(idx)),
                            class: ExitClass::Irq,
                        });
                    }
                }
            }
            best
        };
        // An injected one-shot preempts the best source arrival only when
        // strictly earlier — the same tie-break the naive scan applies.
        self.next_event = match (best, self.injected.peek()) {
            (Some(b), Some(&Reverse(ev))) if ev.at < b.at => Some(PendingInterrupt {
                at: ev.at,
                kind: ev.kind,
                source: None,
                class: ev.class,
            }),
            (Some(b), _) => Some(b),
            (None, Some(&Reverse(ev))) => Some(PendingInterrupt {
                at: ev.at,
                kind: ev.kind,
                source: None,
                class: ev.class,
            }),
            (None, None) => None,
        };
    }

    /// The original O(sources) linear scan, kept as an in-crate reference
    /// oracle the calendar cache is asserted against.
    #[cfg(test)]
    fn scan_next(&self) -> Option<PendingInterrupt> {
        let mut best: Option<PendingInterrupt> = None;
        for (idx, state) in self.sources.iter().enumerate() {
            if let Some(at) = state.next {
                if best.is_none_or(|b| at < b.at) {
                    best = Some(PendingInterrupt {
                        at,
                        kind: state.kind(),
                        source: Some(SourceId(idx)),
                        class: ExitClass::Irq,
                    });
                }
            }
        }
        if let Some(Reverse(ev)) = self.injected.peek() {
            if best.is_none_or(|b| ev.at < b.at) {
                best = Some(PendingInterrupt {
                    at: ev.at,
                    kind: ev.kind,
                    source: None,
                    class: ev.class,
                });
            }
        }
        best
    }
}

/// Draws a source's next arrival after `now`. Shared by the calendar
/// fabric and [`crate::naive::NaiveFabric`] so both consume identical RNG
/// draws for identical op sequences.
pub(crate) fn draw_next<R: Rng + ?Sized>(
    model: &mut SourceModel,
    now: Ps,
    rng: &mut R,
) -> Option<Ps> {
    match model {
        SourceModel::Periodic {
            period,
            jitter_std,
            nominal_next,
            enabled,
            ..
        } => {
            if !*enabled {
                return None;
            }
            // Keep the nominal grid strictly advancing past `now` so a
            // long kernel stint cannot schedule edges in the past.
            while *nominal_next <= now {
                *nominal_next += *period;
            }
            let edge = *nominal_next;
            *nominal_next = edge + *period;
            let jitter_ps = dist::normal(rng, 0.0, jitter_std.as_ps() as f64);
            let at = if jitter_ps >= 0.0 {
                edge + Ps::from_ps(jitter_ps as u64)
            } else {
                edge.saturating_sub(Ps::from_ps((-jitter_ps) as u64))
            };
            Some(at.max(now + Ps::from_ps(1)))
        }
        SourceModel::Poisson {
            rate_hz, enabled, ..
        } => {
            if !*enabled {
                return None;
            }
            let wait_s = dist::exponential(rng, *rate_hz);
            Some(now + Ps::from_secs_f64(wait_s))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xFAB)
    }

    /// Drains the fabric until `horizon`, returning delivered interrupts.
    fn drain(
        fabric: &mut InterruptFabric,
        horizon: Ps,
        rng: &mut SmallRng,
    ) -> Vec<PendingInterrupt> {
        let mut out = Vec::new();
        while let Some(p) = fabric.peek_next() {
            if p.at > horizon {
                break;
            }
            out.push(fabric.pop(rng).unwrap());
        }
        out
    }

    #[test]
    fn periodic_timer_delivers_hz_ticks_per_second() {
        let mut r = rng();
        let mut fabric = InterruptFabric::new();
        fabric.add_periodic_timer(250.0, Ps::from_us(1), &mut r);
        let ticks = drain(&mut fabric, Ps::from_secs(2), &mut r);
        // Edge jitter can push the boundary tick across the horizon.
        assert!((499..=501).contains(&ticks.len()), "got {}", ticks.len());
        assert!(ticks.iter().all(|t| t.kind == InterruptKind::Timer));
        // Deliveries are time-ordered.
        assert!(ticks.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn poisson_rate_is_respected() {
        let mut r = rng();
        let mut fabric = InterruptFabric::new();
        fabric.add_poisson(InterruptKind::Resched, 100.0, &mut r);
        let events = drain(&mut fabric, Ps::from_secs(10), &mut r);
        // Expect ~1000 arrivals; allow generous tolerance.
        assert!((900..1100).contains(&events.len()), "got {}", events.len());
    }

    #[test]
    fn injections_interleave_in_time_order() {
        let mut r = rng();
        let mut fabric = InterruptFabric::new();
        fabric.add_periodic_timer(100.0, Ps::ZERO, &mut r);
        fabric.inject(Ps::from_ms(5), InterruptKind::Network);
        fabric.inject(Ps::from_ms(1), InterruptKind::Gpu);
        let events = drain(&mut fabric, Ps::from_ms(12), &mut r);
        let kinds: Vec<_> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                InterruptKind::Gpu,
                InterruptKind::Network,
                InterruptKind::Timer
            ]
        );
        assert_eq!(fabric.injected_backlog(), 0);
    }

    #[test]
    fn disabling_timer_stops_ticks() {
        let mut r = rng();
        let mut fabric = InterruptFabric::new();
        let timer = fabric.add_periodic_timer(1000.0, Ps::ZERO, &mut r);
        let before = drain(&mut fabric, Ps::from_ms(10), &mut r);
        assert!(!before.is_empty());
        fabric.set_enabled(timer, false, Ps::from_ms(10), &mut r);
        assert!(fabric.peek_next().is_none());
        // Re-enable: ticks resume relative to `now`.
        fabric.set_enabled(timer, true, Ps::from_ms(20), &mut r);
        let next = fabric.peek_next().unwrap();
        assert!(next.at > Ps::from_ms(20));
    }

    #[test]
    fn reprogramming_hz_changes_period() {
        let mut r = rng();
        let mut fabric = InterruptFabric::new();
        let timer = fabric.add_periodic_timer(100.0, Ps::ZERO, &mut r);
        drain(&mut fabric, Ps::from_secs(1), &mut r);
        fabric.set_timer_hz(timer, 1000.0, Ps::from_secs(1), &mut r);
        let fast = drain(&mut fabric, Ps::from_secs(2), &mut r);
        assert!((950..1050).contains(&fast.len()), "got {}", fast.len());
    }

    #[test]
    fn pop_on_empty_fabric_is_none() {
        let mut r = rng();
        let mut fabric = InterruptFabric::new();
        assert!(fabric.pop(&mut r).is_none());
        assert_eq!(fabric.source_count(), 0);
    }

    #[test]
    fn faulted_pop_with_inert_plan_matches_plain_pop() {
        let mut r1 = rng();
        let mut r2 = rng();
        let mut f1 = InterruptFabric::new();
        let mut f2 = InterruptFabric::new();
        f1.add_periodic_timer(250.0, Ps::from_us(1), &mut r1);
        f2.add_periodic_timer(250.0, Ps::from_us(1), &mut r2);
        let plan = FaultPlan::none();
        let mut log = FaultLog::default();
        for _ in 0..200 {
            let a = f1.pop(&mut r1).unwrap();
            let b = match f2.pop_with_faults(&plan, &mut log, &mut r2).unwrap() {
                FaultedPop::Delivered(p) => p,
                FaultedPop::Dropped(_) => panic!("inert plan dropped an interrupt"),
            };
            assert_eq!(a, b);
        }
        assert!(log.is_clean());
    }

    #[test]
    fn drop_prob_drops_roughly_that_fraction() {
        let mut r = rng();
        let mut fabric = InterruptFabric::new();
        fabric.add_periodic_timer(1000.0, Ps::ZERO, &mut r);
        let plan = FaultPlan::none().with_drop_prob(0.3);
        let mut log = FaultLog::default();
        let mut delivered = 0u64;
        for _ in 0..2000 {
            match fabric.pop_with_faults(&plan, &mut log, &mut r).unwrap() {
                FaultedPop::Delivered(_) => delivered += 1,
                FaultedPop::Dropped(_) => {}
            }
        }
        assert_eq!(delivered + log.dropped, 2000);
        assert!(
            (450..=750).contains(&log.dropped),
            "dropped {}",
            log.dropped
        );
    }

    #[test]
    fn duplicates_enqueue_ghost_events() {
        let mut r = rng();
        let mut fabric = InterruptFabric::new();
        fabric.inject(Ps::from_us(10), InterruptKind::Network);
        let plan = FaultPlan::none()
            .with_duplicate_prob(1.0)
            .with_duplicate_delay(Ps::from_us(5));
        let mut log = FaultLog::default();
        let first = match fabric.pop_with_faults(&plan, &mut log, &mut r).unwrap() {
            FaultedPop::Delivered(p) => p,
            FaultedPop::Dropped(_) => panic!("nothing should drop"),
        };
        assert_eq!(first.at, Ps::from_us(10));
        assert_eq!(log.duplicated, 1);
        // The ghost sits in the injected queue, 5 us after the original
        // (and would itself re-duplicate if popped through the same plan).
        assert_eq!(fabric.injected_backlog(), 1);
        let ghost = fabric.pop(&mut r).unwrap();
        assert_eq!(ghost.at, Ps::from_us(15));
        assert_eq!(ghost.kind, InterruptKind::Network);
    }

    #[test]
    fn traced_pop_mirrors_fault_decisions_without_shifting_rng() {
        let mut r1 = rng();
        let mut r2 = rng();
        let mut f1 = InterruptFabric::new();
        let mut f2 = InterruptFabric::new();
        f1.add_periodic_timer(1000.0, Ps::ZERO, &mut r1);
        f2.add_periodic_timer(1000.0, Ps::ZERO, &mut r2);
        let plan = FaultPlan::none()
            .with_drop_prob(0.25)
            .with_duplicate_prob(0.25)
            .with_duplicate_delay(Ps::from_us(3));
        let mut log1 = FaultLog::default();
        let mut log2 = FaultLog::default();
        let mut sink = obs::TraceSink::with_capacity(4096);
        for _ in 0..500 {
            let plain = f1.pop_with_faults(&plan, &mut log1, &mut r1).unwrap();
            let traced = f2
                .pop_with_faults_traced(&plan, &mut log2, &mut r2, Some(&mut sink))
                .unwrap();
            assert_eq!(plain, traced);
        }
        assert_eq!(log1, log2);
        assert_eq!(
            sink.count_class(obs::EventClass::IrqDropped) as u64,
            log2.dropped
        );
        assert_eq!(
            sink.count_class(obs::EventClass::IrqDuplicated) as u64,
            log2.duplicated
        );
        assert_eq!(sink.metrics.counter("irq.dropped"), log2.dropped);
        assert_eq!(sink.metrics.counter("irq.duplicated"), log2.duplicated);
    }

    #[test]
    fn calendar_cache_always_matches_linear_scan() {
        let mut r = rng();
        let mut fabric = InterruptFabric::new();
        let timer = fabric.add_periodic_timer(250.0, Ps::from_us(1), &mut r);
        fabric.add_poisson(InterruptKind::PerfMon, 40.0, &mut r);
        fabric.add_poisson(InterruptKind::Resched, 90.0, &mut r);
        assert_eq!(fabric.peek_next(), fabric.scan_next());
        for step in 0u32..2000 {
            match step % 7 {
                0 => fabric.inject(Ps::from_us(u64::from(step) * 13), InterruptKind::Network),
                1 => {
                    let now = fabric.peek_next().map_or(Ps::ZERO, |p| p.at);
                    fabric.set_enabled(timer, step % 14 == 1, now, &mut r);
                }
                2 => {
                    let now = fabric.peek_next().map_or(Ps::ZERO, |p| p.at);
                    if step % 14 != 1 {
                        fabric.set_timer_hz(
                            timer,
                            100.0 + f64::from(step % 5) * 250.0,
                            now,
                            &mut r,
                        );
                    }
                }
                _ => {
                    let _ = fabric.pop(&mut r);
                }
            }
            assert_eq!(fabric.peek_next(), fabric.scan_next(), "step {step}");
        }
    }

    #[test]
    fn simultaneous_injections_pop_in_kind_order() {
        // Two one-shots at the same instant: the injected heap orders by
        // (at, kind), and the cached head must agree with that ordering.
        let mut r = rng();
        let mut fabric = InterruptFabric::new();
        fabric.inject(Ps::from_us(10), InterruptKind::Network);
        fabric.inject(Ps::from_us(10), InterruptKind::Timer);
        assert_eq!(fabric.peek_next(), fabric.scan_next());
        let first = fabric.pop(&mut r).unwrap();
        let second = fabric.pop(&mut r).unwrap();
        assert_eq!(first.at, second.at);
        assert!(first.kind <= second.kind);
        assert!(fabric.pop(&mut r).is_none());
    }

    #[test]
    fn auto_select_pins_the_cutover_constant() {
        assert_eq!(
            FabricImpl::auto_select(FABRIC_CUTOVER_SOURCES),
            FabricImpl::NaiveScan,
            "at the cutover the scan still wins"
        );
        assert_eq!(
            FabricImpl::auto_select(FABRIC_CUTOVER_SOURCES + 1),
            FabricImpl::Calendar,
            "one past the cutover switches to the calendar"
        );
        assert_eq!(FabricImpl::auto_select(0), FabricImpl::NaiveScan);
        assert_eq!(FabricImpl::auto_select(3), FabricImpl::NaiveScan);
        assert_eq!(FabricImpl::auto_select(131), FabricImpl::Calendar);

        // A fabric tracks the selection as sources are added, one-way.
        let mut r = rng();
        let mut fabric = InterruptFabric::new();
        fabric.add_periodic_timer(250.0, Ps::from_us(1), &mut r);
        for _ in 0..FABRIC_CUTOVER_SOURCES - 1 {
            fabric.add_poisson(InterruptKind::Resched, 50.0, &mut r);
            assert_eq!(fabric.active_impl(), FabricImpl::NaiveScan);
        }
        fabric.add_poisson(InterruptKind::Network, 30.0, &mut r);
        assert_eq!(fabric.source_count(), FABRIC_CUTOVER_SOURCES + 1);
        assert_eq!(fabric.active_impl(), FabricImpl::Calendar);
    }

    #[test]
    fn cache_matches_linear_scan_in_calendar_mode() {
        // The op-soup oracle check again, this time with enough sources
        // that the adaptive fabric runs its calendar heap.
        let mut r = rng();
        let mut fabric = InterruptFabric::new();
        let timer = fabric.add_periodic_timer(250.0, Ps::from_us(1), &mut r);
        for i in 0..FABRIC_CUTOVER_SOURCES + 3 {
            fabric.add_poisson(InterruptKind::Network, 30.0 + 11.0 * i as f64, &mut r);
        }
        assert_eq!(fabric.active_impl(), FabricImpl::Calendar);
        for step in 0u32..2000 {
            match step % 7 {
                0 => fabric.inject(Ps::from_us(u64::from(step) * 13), InterruptKind::Gpu),
                1 => {
                    let now = fabric.peek_next().map_or(Ps::ZERO, |p| p.at);
                    fabric.set_enabled(timer, step % 14 == 1, now, &mut r);
                }
                2 => {
                    let now = fabric.peek_next().map_or(Ps::ZERO, |p| p.at);
                    if step % 14 != 1 {
                        fabric.set_timer_hz(
                            timer,
                            100.0 + f64::from(step % 5) * 250.0,
                            now,
                            &mut r,
                        );
                    }
                }
                _ => {
                    let _ = fabric.pop(&mut r);
                }
            }
            assert_eq!(fabric.peek_next(), fabric.scan_next(), "step {step}");
        }
    }

    /// Auto-selection must never change what gets delivered: the adaptive
    /// fabric and the always-scanning [`crate::naive::NaiveFabric`] must
    /// produce identical event streams *and* identical RNG positions from
    /// identical op sequences — below the cutover, above it, and across a
    /// mid-stream crossing.
    #[test]
    fn auto_select_never_changes_delivered_streams() {
        use crate::naive::NaiveFabric;
        for extra_sources in [0usize, 2, FABRIC_CUTOVER_SOURCES + 4] {
            let mut ra = SmallRng::seed_from_u64(0xADA7 + extra_sources as u64);
            let mut rb = ra.clone();
            let mut adaptive = InterruptFabric::new();
            let mut naive = NaiveFabric::new();
            let ta = adaptive.add_periodic_timer(250.0, Ps::from_us(1), &mut ra);
            let tb = naive.add_periodic_timer(250.0, Ps::from_us(1), &mut rb);
            for i in 0..extra_sources {
                let hz = 40.0 + 17.0 * i as f64;
                adaptive.add_poisson(InterruptKind::Network, hz, &mut ra);
                naive.add_poisson(InterruptKind::Network, hz, &mut rb);
            }
            let mut now = Ps::ZERO;
            for step in 0u32..1500 {
                match step % 11 {
                    0 => {
                        let at = now + Ps::from_us(u64::from(step % 40) * 7);
                        adaptive.inject(at, InterruptKind::Keyboard);
                        naive.inject(at, InterruptKind::Keyboard);
                    }
                    1 => {
                        let enabled = step % 22 == 1;
                        adaptive.set_enabled(ta, enabled, now, &mut ra);
                        naive.set_enabled(tb, enabled, now, &mut rb);
                    }
                    2 if step % 22 != 1 => {
                        let hz = 100.0 + f64::from(step % 7) * 150.0;
                        adaptive.set_timer_hz(ta, hz, now, &mut ra);
                        naive.set_timer_hz(tb, hz, now, &mut rb);
                    }
                    _ => {
                        assert_eq!(adaptive.peek_next(), naive.peek_next(), "step {step}");
                        let a = adaptive.pop(&mut ra);
                        let b = naive.pop(&mut rb);
                        assert_eq!(a, b, "step {step}");
                        if let Some(p) = a {
                            now = now.max(p.at);
                        }
                    }
                }
                // Mid-stream crossing: grow both fabrics past the cutover.
                if step == 700 && extra_sources == 2 {
                    for i in 0..FABRIC_CUTOVER_SOURCES {
                        let hz = 25.0 + 9.0 * i as f64;
                        adaptive.add_poisson(InterruptKind::Thermal, hz, &mut ra);
                        naive.add_poisson(InterruptKind::Thermal, hz, &mut rb);
                    }
                    assert_eq!(adaptive.active_impl(), FabricImpl::Calendar);
                }
            }
            // Identical final RNG positions: one more draw agrees.
            assert_eq!(ra.gen::<u64>(), rb.gen::<u64>());
        }
    }

    /// A restored fabric must pop the same stream, consume the same RNG
    /// draws, and snapshot back to an equal image — in both scan and
    /// calendar modes, with one-shots in flight.
    #[test]
    fn snapshot_restore_is_exact_in_both_modes() {
        for extra_sources in [0usize, FABRIC_CUTOVER_SOURCES + 3] {
            let mut r = SmallRng::seed_from_u64(0x5AAF + extra_sources as u64);
            let mut fabric = InterruptFabric::new();
            fabric.add_periodic_timer(250.0, Ps::from_us(1), &mut r);
            for i in 0..extra_sources {
                fabric.add_poisson(InterruptKind::Network, 40.0 + 13.0 * i as f64, &mut r);
            }
            for _ in 0..100 {
                fabric.pop(&mut r);
            }
            fabric.inject(Ps::from_secs(10), InterruptKind::Gpu);
            fabric.inject(Ps::from_secs(5), InterruptKind::Keyboard);

            let snap = fabric.snapshot();
            let mut restored = InterruptFabric::from_snapshot(&snap);
            let mut r2 = r.clone();
            assert_eq!(restored.snapshot(), snap, "snapshot round-trips");
            assert_eq!(restored.peek_next(), fabric.peek_next());
            assert_eq!(restored.active_impl(), fabric.active_impl());
            for step in 0..500 {
                assert_eq!(fabric.pop(&mut r), restored.pop(&mut r2), "step {step}");
            }
            assert_eq!(r.gen::<u64>(), r2.gen::<u64>(), "RNG positions agree");
        }
    }

    /// Snapshots survive the JSON wire format bit-for-bit, including the
    /// f64 Poisson rates.
    #[test]
    fn snapshot_serde_round_trip() {
        let mut r = rng();
        let mut fabric = InterruptFabric::new();
        fabric.add_periodic_timer(997.0, Ps::from_us(3), &mut r);
        fabric.add_poisson(InterruptKind::Resched, 123.456, &mut r);
        fabric.inject(Ps::from_us(77), InterruptKind::Network);
        let snap = fabric.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: FabricSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn timer_grid_survives_long_stalls() {
        // Even if nothing drains the fabric for a while, edges never fire
        // "in the past" relative to the pop time used as `now`.
        let mut r = rng();
        let mut fabric = InterruptFabric::new();
        fabric.add_periodic_timer(250.0, Ps::from_us(2), &mut r);
        let mut last = Ps::ZERO;
        for _ in 0..1000 {
            let ev = fabric.pop(&mut r).unwrap();
            assert!(ev.at >= last, "event at {} before previous {}", ev.at, last);
            last = ev.at;
        }
    }
}
