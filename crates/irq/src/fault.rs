//! Opt-in fault injection for the interrupt path.
//!
//! A [`FaultPlan`] describes adversarial deviations from the nominal
//! interrupt stream — the regimes AEX-Notify/Heckler-style attacks put a
//! victim in — split into two families with very different contracts:
//!
//! * **Delivery faults** (dropped, duplicated, coalesced interrupts)
//!   break the correspondence between *intended* and *observed*
//!   interrupts. SegScope's per-interrupt exactness cannot survive them,
//!   so consumers must *detect* them (via the [`FaultLog`] accounting)
//!   rather than report a wrong-but-confident count.
//! * **Timing faults** (jittered handler cost, clamped frequency steps,
//!   SMT-noise bursts) perturb *when* and *how long*, but every
//!   interrupt still reaches the core exactly once. SegScope's count
//!   exactness must hold unchanged under these.
//!
//! The plan is strictly opt-in: a machine without one draws the exact
//! same RNG sequence as before this module existed, so seeded golden
//! traces are unaffected.

use crate::time::Ps;
use serde::{Deserialize, Serialize};

/// An opt-in description of interrupt-path faults to inject.
///
/// All probabilities are per-event; a zeroed plan (the [`FaultPlan::none`]
/// default) injects nothing and is behaviourally identical to having no
/// plan at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that a popped interrupt is silently dropped before it
    /// reaches the core (lost wakeup / masked-window loss).
    pub drop_prob: f64,
    /// Probability that a delivered interrupt is re-delivered once more,
    /// `duplicate_delay` later (spurious re-raise).
    pub duplicate_prob: f64,
    /// How far after the original a duplicated interrupt lands.
    pub duplicate_delay: Ps,
    /// Interrupts arriving within this window after a kernel stint ends
    /// are pulled into the same stint (rate-limit style coalescing):
    /// several intended interrupts produce one observable return to user
    /// space. Zero disables coalescing.
    pub coalesce_window: Ps,
    /// Log-normal jitter on handler routine cost: each sampled cost is
    /// multiplied by `exp(N(0, handler_jitter_std))`. Zero disables.
    pub handler_jitter_std: f64,
    /// Clamp on how far one governor update may move the frequency, kHz.
    /// Models a sluggish/locked governor under thermal pressure.
    pub freq_step_clamp_khz: Option<u64>,
    /// Probability per guest operation that an SMT-noise burst starts.
    pub smt_burst_prob: f64,
    /// Cycle-cost multiplier applied while a burst is active.
    pub smt_burst_factor: f64,
    /// How many guest operations a burst lasts.
    pub smt_burst_ops: u32,
}

impl FaultPlan {
    /// A plan that injects nothing (behaviourally identical to no plan).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            duplicate_delay: Ps::from_us(50),
            coalesce_window: Ps::ZERO,
            handler_jitter_std: 0.0,
            freq_step_clamp_khz: None,
            smt_burst_prob: 0.0,
            smt_burst_factor: 1.0,
            smt_burst_ops: 0,
        }
    }

    /// A preset exercising every *timing* fault at once (handler jitter,
    /// frequency-step clamping, SMT bursts) with no delivery faults:
    /// SegScope's per-interrupt exactness must survive this unchanged.
    #[must_use]
    pub fn timing_storm() -> Self {
        FaultPlan {
            handler_jitter_std: 0.35,
            freq_step_clamp_khz: Some(100_000),
            smt_burst_prob: 0.002,
            smt_burst_factor: 1.6,
            smt_burst_ops: 64,
            ..FaultPlan::none()
        }
    }

    /// A preset exercising every *delivery* fault at once: drops,
    /// duplicates, and coalescing. Consumers must detect the damage.
    #[must_use]
    pub fn delivery_storm() -> Self {
        FaultPlan {
            drop_prob: 0.15,
            duplicate_prob: 0.08,
            coalesce_window: Ps::from_us(800),
            ..FaultPlan::none()
        }
    }

    /// Sets the drop probability (builder style).
    #[must_use]
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Sets the duplicate probability (builder style).
    #[must_use]
    pub fn with_duplicate_prob(mut self, p: f64) -> Self {
        self.duplicate_prob = p;
        self
    }

    /// Sets the duplicate re-delivery delay (builder style).
    #[must_use]
    pub fn with_duplicate_delay(mut self, delay: Ps) -> Self {
        self.duplicate_delay = delay;
        self
    }

    /// Sets the coalescing window (builder style).
    #[must_use]
    pub fn with_coalesce_window(mut self, window: Ps) -> Self {
        self.coalesce_window = window;
        self
    }

    /// Sets the handler-cost jitter (builder style).
    #[must_use]
    pub fn with_handler_jitter(mut self, std: f64) -> Self {
        self.handler_jitter_std = std;
        self
    }

    /// Sets the frequency-step clamp (builder style).
    #[must_use]
    pub fn with_freq_step_clamp(mut self, khz: Option<u64>) -> Self {
        self.freq_step_clamp_khz = khz;
        self
    }

    /// Configures SMT-noise bursts (builder style).
    #[must_use]
    pub fn with_smt_bursts(mut self, prob: f64, factor: f64, ops: u32) -> Self {
        self.smt_burst_prob = prob;
        self.smt_burst_factor = factor;
        self.smt_burst_ops = ops;
        self
    }

    /// Whether the plan can lose, multiply, or merge interrupts.
    #[must_use]
    pub fn has_delivery_faults(&self) -> bool {
        self.drop_prob > 0.0 || self.duplicate_prob > 0.0 || self.coalesce_window > Ps::ZERO
    }

    /// Whether the plan perturbs timing without touching delivery.
    #[must_use]
    pub fn has_timing_faults(&self) -> bool {
        self.handler_jitter_std > 0.0
            || self.freq_step_clamp_khz.is_some()
            || self.smt_burst_prob > 0.0
    }

    /// Timing faults only: every interrupt still arrives exactly once.
    #[must_use]
    pub fn is_timing_only(&self) -> bool {
        self.has_timing_faults() && !self.has_delivery_faults()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Counters of every fault actually injected during a run.
///
/// This is the *auditor's* view: simulation-side accounting (like
/// [`GroundTruth`](crate::GroundTruth)) that a conformance harness uses to
/// compute how many interrupts were intended versus observed. Attacker
/// code never reads it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultLog {
    /// Interrupts silently dropped before reaching the core.
    pub dropped: u64,
    /// Ghost re-deliveries injected (spurious interrupts added).
    pub duplicated: u64,
    /// Interrupts pulled into an earlier kernel stint by the coalescing
    /// window (delivered, but without their own return to user space).
    pub coalesced: u64,
    /// Handler-cost samples that had jitter applied.
    pub jittered: u64,
    /// SMT-noise bursts started.
    pub bursts: u64,
    /// Governor updates whose frequency step hit the clamp.
    pub clamped_steps: u64,
}

impl FaultLog {
    /// Total delivery faults (events that break intended↔observed
    /// correspondence).
    #[must_use]
    pub fn delivery_faults(&self) -> u64 {
        self.dropped + self.duplicated + self.coalesced
    }

    /// Total timing faults (events that only perturb timing).
    #[must_use]
    pub fn timing_faults(&self) -> u64 {
        self.jittered + self.bursts + self.clamped_steps
    }

    /// Whether no fault of any kind was injected.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.delivery_faults() == 0 && self.timing_faults() == 0
    }
}

/// Outcome of popping an interrupt through a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultedPop {
    /// The interrupt reaches the core (possibly after spawning a ghost
    /// duplicate scheduled for later).
    Delivered(crate::PendingInterrupt),
    /// The interrupt was consumed by the fault plan and never reaches the
    /// core.
    Dropped(crate::PendingInterrupt),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inert_and_default() {
        let p = FaultPlan::none();
        assert_eq!(p, FaultPlan::default());
        assert!(!p.has_delivery_faults());
        assert!(!p.has_timing_faults());
        assert!(!p.is_timing_only());
    }

    #[test]
    fn presets_classify_correctly() {
        let t = FaultPlan::timing_storm();
        assert!(t.is_timing_only());
        assert!(t.has_timing_faults() && !t.has_delivery_faults());
        let d = FaultPlan::delivery_storm();
        assert!(d.has_delivery_faults());
        assert!(!d.is_timing_only());
    }

    #[test]
    fn builders_compose() {
        let p = FaultPlan::none()
            .with_drop_prob(0.1)
            .with_duplicate_prob(0.05)
            .with_duplicate_delay(Ps::from_us(10))
            .with_coalesce_window(Ps::from_us(200))
            .with_handler_jitter(0.2)
            .with_freq_step_clamp(Some(50_000))
            .with_smt_bursts(0.01, 2.0, 16);
        assert_eq!(p.drop_prob, 0.1);
        assert_eq!(p.duplicate_delay, Ps::from_us(10));
        assert_eq!(p.coalesce_window, Ps::from_us(200));
        assert_eq!(p.freq_step_clamp_khz, Some(50_000));
        assert!(p.has_delivery_faults() && p.has_timing_faults());
    }

    #[test]
    fn log_accounting() {
        let mut log = FaultLog::default();
        assert!(log.is_clean());
        log.dropped = 2;
        log.jittered = 5;
        assert_eq!(log.delivery_faults(), 2);
        assert_eq!(log.timing_faults(), 5);
        assert!(!log.is_clean());
    }
}
