//! Interrupt-handler cost model: the time `w` an interrupt handler routine
//! steals from user space (paper Eq. 1, distribution of paper Fig. 4).

use crate::dist;
use crate::kind::InterruptKind;
use crate::time::Ps;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the handler-cost distribution for one interrupt kind.
///
/// The paper's eBPF measurement (1 M samples, Fig. 4) found every handler
/// completing under 6 µs with 90.7 % of samples in the 1.0–1.5 µs band.
/// We model that as a mixture: a tight truncated-normal *body* inside the
/// band, plus a rare wider *tail* capped at `cap`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HandlerCostParams {
    /// Mean of the body component, picoseconds.
    pub body_mean: Ps,
    /// Standard deviation of the body component, picoseconds.
    pub body_std: Ps,
    /// Lower truncation of the body component.
    pub body_lo: Ps,
    /// Upper truncation of the body component.
    pub body_hi: Ps,
    /// Probability a sample comes from the tail instead of the body.
    pub tail_prob: f64,
    /// Lower bound of the (uniform-log) tail.
    pub tail_lo: Ps,
    /// Hard cap on any sample (the paper observed no handler above 6 µs).
    pub cap: Ps,
}

impl HandlerCostParams {
    /// The Fig. 4 shape: body N(1.2 µs, 0.12 µs) truncated to [1.0, 1.5] µs
    /// sampled with probability ≈ 0.907, and a tail spread over
    /// [0.4, 6.0] µs.
    #[must_use]
    pub fn paper_default() -> Self {
        HandlerCostParams {
            body_mean: Ps::from_ns(1_200),
            body_std: Ps::from_ns(120),
            body_lo: Ps::from_ns(1_000),
            body_hi: Ps::from_ns(1_500),
            tail_prob: 0.093,
            tail_lo: Ps::from_ns(400),
            cap: Ps::from_ns(6_000),
        }
    }

    /// A cheaper, tighter handler (used for lightweight IPIs).
    #[must_use]
    pub fn light() -> Self {
        HandlerCostParams {
            body_mean: Ps::from_ns(800),
            body_std: Ps::from_ns(90),
            body_lo: Ps::from_ns(600),
            body_hi: Ps::from_ns(1_100),
            tail_prob: 0.05,
            tail_lo: Ps::from_ns(400),
            cap: Ps::from_ns(6_000),
        }
    }

    /// A heavier handler (device interrupts running softirq work).
    #[must_use]
    pub fn heavy() -> Self {
        HandlerCostParams {
            body_mean: Ps::from_ns(1_900),
            body_std: Ps::from_ns(300),
            body_lo: Ps::from_ns(1_200),
            body_hi: Ps::from_ns(2_800),
            tail_prob: 0.10,
            tail_lo: Ps::from_ns(800),
            cap: Ps::from_ns(6_000),
        }
    }

    /// Draws one handler cost.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Ps {
        let body_mean = self.body_mean.as_ns();
        let body_std = self.body_std.as_ns();
        let (lo, hi) = (self.body_lo.as_ns(), self.body_hi.as_ns());
        let tail_lo = self.tail_lo.as_ns();
        let cap = self.cap.as_ns();
        let ns = dist::mixture(
            rng,
            self.tail_prob,
            |r| dist::truncated_normal(r, body_mean, body_std, lo, hi),
            |r| {
                // Log-uniform over [tail_lo, cap]: most tail mass near the
                // low end, occasional samples brushing the cap.
                let u: f64 = r.gen();
                (tail_lo.ln() + u * (cap.ln() - tail_lo.ln())).exp()
            },
        );
        Ps::from_ps((ns.min(cap) * 1_000.0).round() as u64)
    }
}

impl Default for HandlerCostParams {
    fn default() -> Self {
        HandlerCostParams::paper_default()
    }
}

/// Per-kind handler cost model for a whole machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HandlerCostModel {
    timer: HandlerCostParams,
    resched: HandlerCostParams,
    perfmon: HandlerCostParams,
    device: HandlerCostParams,
    other: HandlerCostParams,
}

impl HandlerCostModel {
    /// The default model matching the paper's Fig. 4 measurement on the
    /// Lenovo Yangtian machine.
    #[must_use]
    pub fn paper_default() -> Self {
        HandlerCostModel {
            timer: HandlerCostParams::paper_default(),
            resched: HandlerCostParams::light(),
            perfmon: HandlerCostParams::light(),
            device: HandlerCostParams::heavy(),
            other: HandlerCostParams::paper_default(),
        }
    }

    /// Parameters used for one interrupt kind.
    #[must_use]
    pub fn params(&self, kind: InterruptKind) -> &HandlerCostParams {
        match kind {
            InterruptKind::Timer => &self.timer,
            InterruptKind::Resched | InterruptKind::CallFunction => &self.resched,
            InterruptKind::PerfMon => &self.perfmon,
            k if k.is_device() => &self.device,
            _ => &self.other,
        }
    }

    /// Overrides the parameters for one kind (builder style).
    #[must_use]
    pub fn with_params(mut self, kind: InterruptKind, params: HandlerCostParams) -> Self {
        match kind {
            InterruptKind::Timer => self.timer = params,
            InterruptKind::Resched | InterruptKind::CallFunction => self.resched = params,
            InterruptKind::PerfMon => self.perfmon = params,
            k if k.is_device() => self.device = params,
            _ => self.other = params,
        }
        self
    }

    /// Draws the cost of one handler invocation.
    pub fn sample<R: Rng + ?Sized>(&self, kind: InterruptKind, rng: &mut R) -> Ps {
        self.params(kind).sample(rng)
    }
}

impl Default for HandlerCostModel {
    fn default() -> Self {
        HandlerCostModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fig4_shape_holds() {
        // Reproduce the Fig. 4 claim: all samples < 6 µs, ~90 % in
        // [1.0, 1.5] µs.
        let params = HandlerCostParams::paper_default();
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let mut in_band = 0u32;
        for _ in 0..n {
            let w = params.sample(&mut rng);
            assert!(w <= Ps::from_ns(6_000), "handler cost {w} above 6us cap");
            assert!(w >= Ps::from_ns(300), "handler cost {w} implausibly small");
            if (Ps::from_ns(1_000)..=Ps::from_ns(1_500)).contains(&w) {
                in_band += 1;
            }
        }
        let frac = f64::from(in_band) / f64::from(n);
        assert!((0.88..0.94).contains(&frac), "in-band fraction {frac}");
    }

    #[test]
    fn per_kind_costs_are_ordered() {
        let model = HandlerCostModel::paper_default();
        let mut rng = SmallRng::seed_from_u64(5);
        let mean = |kind: InterruptKind, rng: &mut SmallRng| -> f64 {
            (0..20_000)
                .map(|_| model.sample(kind, rng).as_ns())
                .sum::<f64>()
                / 20_000.0
        };
        let resched = mean(InterruptKind::Resched, &mut rng);
        let timer = mean(InterruptKind::Timer, &mut rng);
        let device = mean(InterruptKind::Network, &mut rng);
        assert!(resched < timer, "resched {resched} >= timer {timer}");
        assert!(timer < device, "timer {timer} >= device {device}");
    }

    #[test]
    fn with_params_overrides_one_kind() {
        let model = HandlerCostModel::paper_default()
            .with_params(InterruptKind::Timer, HandlerCostParams::light());
        assert_eq!(
            *model.params(InterruptKind::Timer),
            HandlerCostParams::light()
        );
        assert_eq!(
            *model.params(InterruptKind::Other),
            HandlerCostParams::paper_default()
        );
    }

    #[test]
    fn sampling_is_deterministic() {
        let model = HandlerCostModel::paper_default();
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for kind in InterruptKind::ALL {
            assert_eq!(model.sample(kind, &mut a), model.sample(kind, &mut b));
        }
    }
}
