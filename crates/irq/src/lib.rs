//! Interrupt substrate for the SegScope reproduction.
//!
//! Models everything about interrupts that the paper's experiments depend
//! on, without modeling electrical details:
//!
//! * [`time`] — picosecond-resolution simulated time ([`Ps`]), the base
//!   clock unit shared by the whole workspace.
//! * [`dist`] — small deterministic sampling helpers (normal, exponential,
//!   mixtures) built on `rand`, used by every stochastic model.
//! * [`InterruptKind`] — the interrupt taxonomy the paper's eBPF analysis
//!   distinguishes (timer, rescheduling, performance-monitoring, devices…).
//! * [`ExitClass`]/[`KernelExit`] — the kernel-exit taxonomy layered above
//!   it: ordinary IRQ, enclave AEX, synthetic padding exit (room is left
//!   for syscalls/faults), so enclave attacks and countermeasures share
//!   one delivery pipeline.
//! * [`HandlerCostModel`] — the time an interrupt handler routine steals
//!   from user space (`w` in paper Eq. 1, distribution of paper Fig. 4).
//! * [`InterruptFabric`] — a per-core APIC-like fabric combining a periodic
//!   timer source, stochastic sources (rescheduling IPIs, PMIs), and
//!   trace-driven device sources (network/GPU bursts from victim activity).
//! * [`GroundTruth`] — an in-simulator recorder playing the role the paper
//!   assigns to eBPF: perfect knowledge of every delivered interrupt, used
//!   for calibration and accuracy accounting only, never by the attacker.
//!
//! # Example
//!
//! ```
//! use irq::{InterruptFabric, InterruptKind, Ps};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! // A 250 Hz APIC timer plus a 0.3/s performance-monitoring source.
//! let mut fabric = InterruptFabric::new();
//! fabric.add_periodic_timer(250.0, Ps::from_us(2), &mut rng);
//! fabric.add_poisson(InterruptKind::PerfMon, 0.3, &mut rng);
//!
//! let first = fabric.peek_next().expect("timer is armed");
//! assert!(first.at > Ps::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
mod exit;
mod fabric;
mod fault;
mod handler;
mod kind;
pub mod naive;
pub mod time;
mod trace;

pub use exit::{ExitClass, KernelExit};
pub use fabric::{
    FabricImpl, FabricSnapshot, InterruptFabric, PendingInterrupt, SourceId, FABRIC_CUTOVER_SOURCES,
};
pub use fault::{FaultLog, FaultPlan, FaultedPop};
pub use handler::{HandlerCostModel, HandlerCostParams};
pub use kind::InterruptKind;
pub use naive::NaiveFabric;
pub use time::Ps;
pub use trace::{GroundTruth, IrqRecord};
