//! The original linear-scan interrupt fabric, preserved verbatim.
//!
//! [`NaiveFabric`] is the pre-calendar implementation of
//! [`InterruptFabric`](crate::InterruptFabric): `peek_next` walks every
//! source on every call and `pop` re-matches the winner to reschedule it.
//! It is kept for two jobs:
//!
//! 1. **Reference oracle** — the differential tests drive generated op
//!    sequences through both fabrics and assert identical
//!    [`PendingInterrupt`] sequences *and* identical RNG positions (both
//!    implementations share the fabric's private `draw_next`, so they consume
//!    the same draws in the same order).
//! 2. **Baseline arm** — `bench_hotpath` measures delivered-interrupts/sec
//!    against it to quantify the calendar's win.
//!
//! It is *not* part of the simulator hot path; `segsim`-level code uses
//! the adaptive [`InterruptFabric`](crate::InterruptFabric) exclusively
//! (which below [`crate::FABRIC_CUTOVER_SOURCES`] sources runs the same
//! linear scan, with a cached O(1) head on top).

use crate::exit::ExitClass;
use crate::fabric::{draw_next, InjectedEvent, SourceModel, SourceState};
use crate::fault::{FaultLog, FaultPlan, FaultedPop};
use crate::kind::InterruptKind;
use crate::time::Ps;
use crate::{PendingInterrupt, SourceId};
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The pre-calendar fabric: O(sources) `peek_next`, re-matching `pop`.
///
/// Behaviourally identical to [`InterruptFabric`](crate::InterruptFabric)
/// — same tie-breaking, same RNG-draw order — just slower.
#[derive(Debug, Clone, Default)]
pub struct NaiveFabric {
    sources: Vec<SourceState>,
    injected: BinaryHeap<Reverse<InjectedEvent>>,
}

impl NaiveFabric {
    /// An empty fabric with no sources.
    #[must_use]
    pub fn new() -> Self {
        NaiveFabric::default()
    }

    /// Mirrors [`InterruptFabric::add_periodic_timer`](crate::InterruptFabric::add_periodic_timer).
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive.
    pub fn add_periodic_timer<R: Rng + ?Sized>(
        &mut self,
        hz: f64,
        jitter_std: Ps,
        rng: &mut R,
    ) -> SourceId {
        assert!(hz > 0.0, "timer frequency must be positive");
        let period = Ps::from_secs_f64(1.0 / hz);
        let id = SourceId::from_index(self.sources.len());
        let mut state = SourceState {
            model: SourceModel::Periodic {
                kind: InterruptKind::Timer,
                period,
                jitter_std,
                nominal_next: period,
                enabled: true,
            },
            next: None,
            gen: 0,
        };
        state.next = draw_next(&mut state.model, Ps::ZERO, rng);
        self.sources.push(state);
        id
    }

    /// Mirrors [`InterruptFabric::add_poisson`](crate::InterruptFabric::add_poisson).
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not strictly positive.
    pub fn add_poisson<R: Rng + ?Sized>(
        &mut self,
        kind: InterruptKind,
        rate_hz: f64,
        rng: &mut R,
    ) -> SourceId {
        assert!(rate_hz > 0.0, "poisson rate must be positive");
        let id = SourceId::from_index(self.sources.len());
        let mut state = SourceState {
            model: SourceModel::Poisson {
                kind,
                rate_hz,
                enabled: true,
            },
            next: None,
            gen: 0,
        };
        state.next = draw_next(&mut state.model, Ps::ZERO, rng);
        self.sources.push(state);
        id
    }

    /// Mirrors [`InterruptFabric::inject`](crate::InterruptFabric::inject).
    pub fn inject(&mut self, at: Ps, kind: InterruptKind) {
        self.inject_exit(at, kind, ExitClass::Irq);
    }

    /// Mirrors [`InterruptFabric::inject_exit`](crate::InterruptFabric::inject_exit).
    pub fn inject_exit(&mut self, at: Ps, kind: InterruptKind, class: ExitClass) {
        self.injected
            .push(Reverse(InjectedEvent { at, kind, class }));
    }

    /// Mirrors [`InterruptFabric::inject_all`](crate::InterruptFabric::inject_all).
    pub fn inject_all<I: IntoIterator<Item = (Ps, InterruptKind)>>(&mut self, events: I) {
        for (at, kind) in events {
            self.inject(at, kind);
        }
    }

    /// Mirrors [`InterruptFabric::set_enabled`](crate::InterruptFabric::set_enabled).
    pub fn set_enabled<R: Rng + ?Sized>(
        &mut self,
        id: SourceId,
        enabled: bool,
        now: Ps,
        rng: &mut R,
    ) {
        let state = &mut self.sources[id.index()];
        match &mut state.model {
            SourceModel::Periodic {
                enabled: e,
                nominal_next,
                period,
                ..
            } => {
                *e = enabled;
                if enabled {
                    *nominal_next = now + *period;
                }
            }
            SourceModel::Poisson { enabled: e, .. } => *e = enabled,
        }
        state.next = if enabled {
            draw_next(&mut state.model, now, rng)
        } else {
            None
        };
    }

    /// Mirrors [`InterruptFabric::set_timer_hz`](crate::InterruptFabric::set_timer_hz).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a periodic source or `hz` is not positive.
    pub fn set_timer_hz<R: Rng + ?Sized>(&mut self, id: SourceId, hz: f64, now: Ps, rng: &mut R) {
        assert!(hz > 0.0, "timer frequency must be positive");
        let state = &mut self.sources[id.index()];
        match &mut state.model {
            SourceModel::Periodic {
                period,
                nominal_next,
                ..
            } => {
                *period = Ps::from_secs_f64(1.0 / hz);
                *nominal_next = now + *period;
            }
            SourceModel::Poisson { .. } => panic!("set_timer_hz on a non-periodic source"),
        }
        state.next = draw_next(&mut state.model, now, rng);
    }

    /// The earliest pending interrupt, found by scanning every source on
    /// every call — the O(sources) cost the calendar removes.
    #[must_use]
    pub fn peek_next(&self) -> Option<PendingInterrupt> {
        let mut best: Option<PendingInterrupt> = None;
        for (idx, state) in self.sources.iter().enumerate() {
            if let Some(at) = state.next {
                if best.is_none_or(|b| at < b.at) {
                    best = Some(PendingInterrupt {
                        at,
                        kind: state.kind(),
                        class: ExitClass::Irq,
                        source: Some(SourceId::from_index(idx)),
                    });
                }
            }
        }
        if let Some(Reverse(ev)) = self.injected.peek() {
            if best.is_none_or(|b| ev.at < b.at) {
                best = Some(PendingInterrupt {
                    at: ev.at,
                    kind: ev.kind,
                    class: ev.class,
                    source: None,
                });
            }
        }
        best
    }

    /// Consumes the earliest pending interrupt, scanning once to find it
    /// and then re-matching the winner to reschedule it (the double scan
    /// the calendar's fused consume path eliminates).
    pub fn pop<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<PendingInterrupt> {
        let next = self.peek_next()?;
        match next.source {
            Some(id) => {
                let state = &mut self.sources[id.index()];
                state.next = draw_next(&mut state.model, next.at, rng);
            }
            None => {
                self.injected.pop();
            }
        }
        Some(next)
    }

    /// Mirrors [`InterruptFabric::pop_with_faults`](crate::InterruptFabric::pop_with_faults):
    /// same fault rolls in the same order, so the RNG stream stays aligned
    /// with the calendar fabric's.
    pub fn pop_with_faults<R: Rng + ?Sized>(
        &mut self,
        plan: &FaultPlan,
        log: &mut FaultLog,
        rng: &mut R,
    ) -> Option<FaultedPop> {
        let next = self.pop(rng)?;
        if plan.drop_prob > 0.0 && rng.gen::<f64>() < plan.drop_prob {
            log.dropped += 1;
            return Some(FaultedPop::Dropped(next));
        }
        if plan.duplicate_prob > 0.0 && rng.gen::<f64>() < plan.duplicate_prob {
            log.duplicated += 1;
            // Class-preserving: a duplicated AEX is another AEX.
            self.inject_exit(next.at + plan.duplicate_delay, next.kind, next.class);
        }
        Some(FaultedPop::Delivered(next))
    }

    /// Number of sources (not counting one-shot injections).
    #[must_use]
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Number of still-undelivered injected one-shots.
    #[must_use]
    pub fn injected_backlog(&self) -> usize {
        self.injected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn naive_delivers_time_ordered_events() {
        let mut r = SmallRng::seed_from_u64(0xFAB);
        let mut fabric = NaiveFabric::new();
        fabric.add_periodic_timer(250.0, Ps::from_us(1), &mut r);
        fabric.add_poisson(InterruptKind::Resched, 50.0, &mut r);
        fabric.inject(Ps::from_ms(3), InterruptKind::Network);
        let mut last = Ps::ZERO;
        for _ in 0..500 {
            let ev = fabric.pop(&mut r).unwrap();
            assert!(ev.at >= last);
            last = ev.at;
        }
        assert_eq!(fabric.source_count(), 2);
        assert_eq!(fabric.injected_backlog(), 0);
    }
}
