//! Simulated time: picosecond resolution, 64-bit range (~213 days).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, in picoseconds.
///
/// Picoseconds keep sub-cycle precision at multi-GHz frequencies (a 2.5 GHz
/// cycle is 400 ps) while `u64` still covers 2⁶⁴ ps ≈ 213 days of simulated
/// time — far beyond any experiment in the paper.
///
/// ```
/// use irq::Ps;
/// let tick = Ps::from_ms(4); // one 250 Hz timer period
/// assert_eq!(tick.as_ns(), 4_000_000.0);
/// assert_eq!(Ps::from_us(1) * 1000, Ps::from_ms(1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ps(u64);

impl Ps {
    /// Zero time.
    pub const ZERO: Ps = Ps(0);
    /// The largest representable instant (used as an "never" sentinel).
    pub const MAX: Ps = Ps(u64::MAX);

    /// Constructs from raw picoseconds.
    #[must_use]
    pub const fn from_ps(ps: u64) -> Self {
        Ps(ps)
    }

    /// Constructs from nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        Ps(ns * 1_000)
    }

    /// Constructs from microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        Ps(us * 1_000_000)
    }

    /// Constructs from milliseconds.
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        Ps(ms * 1_000_000_000)
    }

    /// Constructs from seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Ps(s * 1_000_000_000_000)
    }

    /// Constructs from a floating-point second count (rounds to nearest ps;
    /// negative inputs clamp to zero).
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        Ps((s.max(0.0) * 1e12).round() as u64)
    }

    /// Raw picosecond count.
    #[must_use]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds (lossy).
    #[must_use]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in microseconds (lossy).
    #[must_use]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in milliseconds (lossy).
    #[must_use]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value in seconds (lossy).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: `self - other`, or zero if `other` is later.
    #[must_use]
    pub fn saturating_sub(self, other: Ps) -> Ps {
        Ps(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    #[must_use]
    pub fn checked_add(self, other: Ps) -> Option<Ps> {
        self.0.checked_add(other.0).map(Ps)
    }

    /// Number of whole CPU cycles this span holds at `freq_khz`.
    ///
    /// Uses 128-bit intermediates so multi-second spans at multi-GHz
    /// frequencies do not overflow.
    #[must_use]
    pub fn cycles_at(self, freq_khz: u64) -> u64 {
        ((u128::from(self.0) * u128::from(freq_khz)) / 1_000_000_000u128) as u64
    }

    /// The span occupied by `cycles` CPU cycles at `freq_khz` (rounds up so
    /// a nonzero cycle count always consumes nonzero time).
    ///
    /// # Panics
    ///
    /// Panics if `freq_khz` is zero.
    #[must_use]
    pub fn from_cycles_at(cycles: u64, freq_khz: u64) -> Ps {
        assert!(freq_khz > 0, "frequency must be nonzero");
        let num = u128::from(cycles) * 1_000_000_000u128;
        let den = u128::from(freq_khz);
        Ps(num.div_ceil(den) as u64)
    }
}

impl Add for Ps {
    type Output = Ps;
    fn add(self, rhs: Ps) -> Ps {
        Ps(self.0 + rhs.0)
    }
}

impl AddAssign for Ps {
    fn add_assign(&mut self, rhs: Ps) {
        self.0 += rhs.0;
    }
}

impl Sub for Ps {
    type Output = Ps;
    fn sub(self, rhs: Ps) -> Ps {
        Ps(self.0 - rhs.0)
    }
}

impl SubAssign for Ps {
    fn sub_assign(&mut self, rhs: Ps) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ps {
    type Output = Ps;
    fn mul(self, rhs: u64) -> Ps {
        Ps(self.0 * rhs)
    }
}

impl Div<u64> for Ps {
    type Output = Ps;
    fn div(self, rhs: u64) -> Ps {
        Ps(self.0 / rhs)
    }
}

impl Sum for Ps {
    fn sum<I: Iterator<Item = Ps>>(iter: I) -> Ps {
        iter.fold(Ps::ZERO, Add::add)
    }
}

impl fmt::Display for Ps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms())
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us())
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns())
        } else {
            write!(f, "{ps}ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Ps::from_ns(1), Ps::from_ps(1_000));
        assert_eq!(Ps::from_us(1), Ps::from_ns(1_000));
        assert_eq!(Ps::from_ms(1), Ps::from_us(1_000));
        assert_eq!(Ps::from_secs(1), Ps::from_ms(1_000));
        assert_eq!(Ps::from_secs_f64(0.25), Ps::from_ms(250));
    }

    #[test]
    fn cycles_round_trip_at_2500mhz() {
        let khz = 2_500_000; // 2.5 GHz
        let one_cycle = Ps::from_cycles_at(1, khz);
        assert_eq!(one_cycle, Ps::from_ps(400));
        assert_eq!(one_cycle.cycles_at(khz), 1);
        // One second holds exactly 2.5e9 cycles.
        assert_eq!(Ps::from_secs(1).cycles_at(khz), 2_500_000_000);
    }

    #[test]
    fn from_cycles_rounds_up() {
        // 3 cycles at 3 GHz = 1000.0 ps exactly; 1 cycle = 333.33 ps -> 334.
        let khz = 3_000_000;
        assert_eq!(Ps::from_cycles_at(1, khz), Ps::from_ps(334));
        assert_eq!(Ps::from_cycles_at(3, khz), Ps::from_ps(1_000));
    }

    #[test]
    fn large_spans_do_not_overflow() {
        // 100 simulated seconds at 5 GHz.
        let khz = 5_000_000;
        let span = Ps::from_secs(100);
        assert_eq!(span.cycles_at(khz), 500_000_000_000);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Ps::from_ns(5).saturating_sub(Ps::from_ns(9)), Ps::ZERO);
        assert_eq!(
            Ps::from_ns(9).saturating_sub(Ps::from_ns(5)),
            Ps::from_ns(4)
        );
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(Ps::from_ps(12).to_string(), "12ps");
        assert_eq!(Ps::from_ns(1).to_string(), "1.000ns");
        assert_eq!(Ps::from_ms(4).to_string(), "4.000ms");
        assert_eq!(Ps::from_secs(10).to_string(), "10.000s");
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: Ps = [Ps::from_ns(1), Ps::from_ns(2), Ps::from_ns(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Ps::from_ns(6));
        assert_eq!(Ps::from_ns(10) / 4, Ps::from_ps(2_500));
        assert_eq!(Ps::from_ns(10) * 3, Ps::from_ns(30));
    }
}
