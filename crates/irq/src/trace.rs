//! Ground-truth interrupt trace: the simulator-internal analogue of the
//! paper's eBPF instrumentation.

use crate::exit::{ExitClass, KernelExit};
use crate::kind::InterruptKind;
use crate::time::Ps;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One delivered kernel exit, with perfect information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IrqRecord {
    /// Delivery instant.
    pub at: Ps,
    /// Kind of interrupt (for [`ExitClass::DefensePad`] exits this is
    /// the placeholder [`InterruptKind::Other`]).
    pub kind: InterruptKind,
    /// Time the handler routine took (`w` in paper Eq. 1).
    pub handler_cost: Ps,
    /// Which class of kernel exit the delivery was.
    pub class: ExitClass,
}

impl IrqRecord {
    /// The record's `(kind, class)` coordinate.
    #[must_use]
    pub fn exit(&self) -> KernelExit {
        KernelExit {
            kind: self.kind,
            class: self.class,
        }
    }
}

/// A recorder of every interrupt the simulated core delivered.
///
/// Plays the role eBPF plays in the paper: it gives experiments a perfect
/// baseline (e.g. the `10 × HZ + 3` count of Table II) and calibration data
/// (the detection thresholds of Section III-B). Attacker code never reads
/// it.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruth {
    records: Vec<IrqRecord>,
    enabled: bool,
}

impl GroundTruth {
    /// A recorder that starts enabled.
    #[must_use]
    pub fn new() -> Self {
        GroundTruth {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// Pauses or resumes recording (long experiments that do not need the
    /// trace can disable it to save memory).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the recorder is currently capturing.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one ordinary IRQ delivery (no-op while disabled).
    pub fn record(&mut self, at: Ps, kind: InterruptKind, handler_cost: Ps) {
        self.record_exit(at, KernelExit::irq(kind), handler_cost);
    }

    /// Records one classified kernel exit (no-op while disabled).
    pub fn record_exit(&mut self, at: Ps, exit: KernelExit, handler_cost: Ps) {
        if self.enabled {
            self.records.push(IrqRecord {
                at,
                kind: exit.kind,
                handler_cost,
                class: exit.class,
            });
        }
    }

    /// All records, in delivery order.
    #[must_use]
    pub fn records(&self) -> &[IrqRecord] {
        &self.records
    }

    /// Total number of recorded interrupts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drops all records.
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Number of interrupts delivered inside `[from, to)`.
    #[must_use]
    pub fn count_in(&self, from: Ps, to: Ps) -> usize {
        self.records
            .iter()
            .filter(|r| r.at >= from && r.at < to)
            .count()
    }

    /// Per-kind counts over the whole trace.
    #[must_use]
    pub fn count_by_kind(&self) -> BTreeMap<InterruptKind, usize> {
        let mut map = BTreeMap::new();
        for r in &self.records {
            *map.entry(r.kind).or_insert(0) += 1;
        }
        map
    }

    /// Returns `true` if any interrupt was delivered inside `[from, to)` —
    /// the primitive the paper uses to label measurements "interrupted"
    /// when calibrating baseline detectors.
    #[must_use]
    pub fn any_in(&self, from: Ps, to: Ps) -> bool {
        // Records are time-ordered; binary-search the window start.
        let start = self.records.partition_point(|r| r.at < from);
        self.records.get(start).is_some_and(|r| r.at < to)
    }

    /// Iterates over records of one kind.
    pub fn of_kind(&self, kind: InterruptKind) -> impl Iterator<Item = &IrqRecord> {
        self.records.iter().filter(move |r| r.kind == kind)
    }

    /// Iterates over records of one exit class.
    pub fn of_class(&self, class: ExitClass) -> impl Iterator<Item = &IrqRecord> {
        self.records.iter().filter(move |r| r.class == class)
    }

    /// Number of records of one exit class over the whole trace.
    #[must_use]
    pub fn count_class(&self, class: ExitClass) -> usize {
        self.of_class(class).count()
    }

    /// Number of records of one exit class inside `[from, to)`.
    #[must_use]
    pub fn count_class_in(&self, class: ExitClass, from: Ps, to: Ps) -> usize {
        self.records
            .iter()
            .filter(|r| r.class == class && r.at >= from && r.at < to)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> GroundTruth {
        let mut gt = GroundTruth::new();
        gt.record(Ps::from_ms(1), InterruptKind::Timer, Ps::from_us(1));
        gt.record(Ps::from_ms(2), InterruptKind::Resched, Ps::from_ns(800));
        gt.record(Ps::from_ms(5), InterruptKind::Timer, Ps::from_us(1));
        gt.record(Ps::from_ms(9), InterruptKind::Timer, Ps::from_us(1));
        gt
    }

    #[test]
    fn counting_and_windows() {
        let gt = sample_trace();
        assert_eq!(gt.len(), 4);
        assert_eq!(gt.count_in(Ps::from_ms(1), Ps::from_ms(5)), 2);
        assert_eq!(gt.count_in(Ps::from_ms(5), Ps::from_ms(10)), 2);
        assert!(gt.any_in(Ps::from_ms(4), Ps::from_ms(6)));
        assert!(!gt.any_in(Ps::from_ms(6), Ps::from_ms(9)));
    }

    #[test]
    fn per_kind_counts() {
        let gt = sample_trace();
        let counts = gt.count_by_kind();
        assert_eq!(counts[&InterruptKind::Timer], 3);
        assert_eq!(counts[&InterruptKind::Resched], 1);
        assert_eq!(gt.of_kind(InterruptKind::Timer).count(), 3);
    }

    #[test]
    fn disabling_pauses_capture() {
        let mut gt = GroundTruth::new();
        gt.record(Ps::from_ms(1), InterruptKind::Timer, Ps::ZERO);
        gt.set_enabled(false);
        gt.record(Ps::from_ms(2), InterruptKind::Timer, Ps::ZERO);
        assert_eq!(gt.len(), 1);
        gt.set_enabled(true);
        gt.record(Ps::from_ms(3), InterruptKind::Timer, Ps::ZERO);
        assert_eq!(gt.len(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut gt = sample_trace();
        assert!(!gt.is_empty());
        gt.clear();
        assert!(gt.is_empty());
    }

    #[test]
    fn exit_classes_are_recorded_and_countable() {
        let mut gt = GroundTruth::new();
        gt.record(Ps::from_ms(1), InterruptKind::Timer, Ps::from_us(1));
        gt.record_exit(
            Ps::from_ms(2),
            KernelExit::aex(InterruptKind::Timer),
            Ps::from_us(2),
        );
        gt.record_exit(Ps::from_ms(3), KernelExit::pad(), Ps::from_us(1));
        assert_eq!(gt.count_class(ExitClass::Irq), 1);
        assert_eq!(gt.count_class(ExitClass::EnclaveAex), 1);
        assert_eq!(gt.count_class(ExitClass::DefensePad), 1);
        assert_eq!(
            gt.count_class_in(ExitClass::EnclaveAex, Ps::from_ms(2), Ps::from_ms(3)),
            1
        );
        assert_eq!(
            gt.count_class_in(ExitClass::EnclaveAex, Ps::from_ms(3), Ps::from_ms(9)),
            0
        );
        // `record` is the `Irq`-classified shorthand.
        assert_eq!(gt.records()[0].class, ExitClass::Irq);
        assert_eq!(
            gt.records()[1].exit(),
            KernelExit::aex(InterruptKind::Timer)
        );
        // Per-kind counting still sees every class's underlying vector.
        assert_eq!(gt.count_by_kind()[&InterruptKind::Timer], 2);
        assert_eq!(gt.count_by_kind()[&InterruptKind::Other], 1);
    }
}
