//! Differential conformance: the event-calendar [`InterruptFabric`]
//! against the pre-calendar linear-scan [`NaiveFabric`] oracle, driven
//! by generated operation sequences (same style as the
//! `crates/conformance` op generator).
//!
//! Both fabrics consume identically seeded RNGs. After every op the
//! cached calendar head must equal the oracle's fresh scan, delivered
//! events must be bit-identical, and — the property that catches hidden
//! maintenance draws — both RNG streams must end at the same position.

use irq::time::Ps;
use irq::{FaultLog, FaultPlan, FaultedPop, InterruptFabric, InterruptKind, NaiveFabric};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const INJECT_KINDS: [InterruptKind; 4] = [
    InterruptKind::Network,
    InterruptKind::Gpu,
    InterruptKind::Keyboard,
    InterruptKind::Other,
];

/// One step of the interleaving, decoded from an opcode stream.
#[derive(Debug, Clone, Copy)]
enum Op {
    Pop,
    PopWithFaults,
    Inject { delta: Ps, kind: InterruptKind },
    SetEnabled { src: usize, enabled: bool },
    SetTimerHz { hz: f64 },
}

/// Number of sources the paired fabrics are built with (timer + three
/// Poisson devices).
const SOURCES: usize = 4;

/// Decodes raw opcodes into ops, drawing parameters from a dedicated
/// generator rng (so parameter choice never touches the fabric streams).
fn decode_ops(codes: &[u8], seed: u64) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed);
    codes
        .iter()
        .map(|code| match code % 8 {
            // Pops dominate so sequences actually advance time.
            0..=2 => Op::Pop,
            3 | 4 => Op::PopWithFaults,
            5 => Op::Inject {
                delta: Ps::from_us(rng.gen_range(0u64..2_000)),
                kind: INJECT_KINDS[rng.gen_range(0..INJECT_KINDS.len())],
            },
            6 => Op::SetEnabled {
                src: rng.gen_range(0..SOURCES),
                enabled: rng.gen::<bool>(),
            },
            _ => Op::SetTimerHz {
                hz: [250.0, 1000.0, 4000.0][rng.gen_range(0usize..3)],
            },
        })
        .collect()
}

/// Applies `ops` to a calendar fabric and a naive-scan oracle in
/// lockstep, asserting identical deliveries, identical cached-vs-scanned
/// heads, identical fault logs, and identical final RNG positions.
fn assert_differential(ops: &[Op], seed: u64) {
    let mut cal_rng = SmallRng::seed_from_u64(seed ^ 0xD1FF_5EED);
    let mut nai_rng = SmallRng::seed_from_u64(seed ^ 0xD1FF_5EED);
    let mut cal = InterruptFabric::new();
    let mut nai = NaiveFabric::new();
    let mut cal_ids = vec![cal.add_periodic_timer(1000.0, Ps::from_ns(500), &mut cal_rng)];
    let mut nai_ids = vec![nai.add_periodic_timer(1000.0, Ps::from_ns(500), &mut nai_rng)];
    for (kind, rate) in [
        (InterruptKind::PerfMon, 80.0),
        (InterruptKind::Resched, 200.0),
        (InterruptKind::Network, 500.0),
    ] {
        cal_ids.push(cal.add_poisson(kind, rate, &mut cal_rng));
        nai_ids.push(nai.add_poisson(kind, rate, &mut nai_rng));
    }
    let plan = FaultPlan {
        drop_prob: 0.25,
        duplicate_prob: 0.25,
        duplicate_delay: Ps::from_us(7),
        ..FaultPlan::none()
    };
    let mut cal_log = FaultLog::default();
    let mut nai_log = FaultLog::default();
    let mut now = Ps::ZERO;
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Pop => {
                let a = cal.pop(&mut cal_rng);
                let b = nai.pop(&mut nai_rng);
                assert_eq!(a, b, "pop diverged at step {step}");
                if let Some(ev) = a {
                    now = now.max(ev.at);
                }
            }
            Op::PopWithFaults => {
                let a = cal.pop_with_faults(&plan, &mut cal_log, &mut cal_rng);
                let b = nai.pop_with_faults(&plan, &mut nai_log, &mut nai_rng);
                assert_eq!(a, b, "pop_with_faults diverged at step {step}");
                if let Some(FaultedPop::Delivered(ev) | FaultedPop::Dropped(ev)) = a {
                    now = now.max(ev.at);
                }
            }
            Op::Inject { delta, kind } => {
                let at = now.checked_add(delta).unwrap_or(Ps::MAX);
                cal.inject(at, kind);
                nai.inject(at, kind);
            }
            Op::SetEnabled { src, enabled } => {
                cal.set_enabled(cal_ids[src], enabled, now, &mut cal_rng);
                nai.set_enabled(nai_ids[src], enabled, now, &mut nai_rng);
            }
            Op::SetTimerHz { hz } => {
                cal.set_timer_hz(cal_ids[0], hz, now, &mut cal_rng);
                nai.set_timer_hz(nai_ids[0], hz, now, &mut nai_rng);
            }
        }
        assert_eq!(
            cal.peek_next(),
            nai.peek_next(),
            "cached head diverged from the scan after step {step} ({op:?})"
        );
        assert_eq!(
            cal.injected_backlog(),
            nai.injected_backlog(),
            "injected backlog diverged after step {step}"
        );
    }
    assert_eq!(cal_log, nai_log, "fault logs diverged");
    assert_eq!(
        cal_rng.gen::<u64>(),
        nai_rng.gen::<u64>(),
        "RNG streams ended at different positions"
    );
}

/// Conformance-generator style: long fixed-seed opcode streams across
/// many seeds, so CI covers deep interleavings deterministically.
#[test]
fn generated_sequences_match_oracle() {
    for seed in 0..40u64 {
        let mut gen_rng = SmallRng::seed_from_u64(0xCA1E_0000 + seed);
        let codes: Vec<u8> = (0..300).map(|_| gen_rng.gen::<u8>()).collect();
        let ops = decode_ops(&codes, 0xDEC0_0000 + seed);
        assert_differential(&ops, seed);
    }
}

/// Same-instant injections interleaved with pops: exercises the
/// kind-ordered tie-break inside the injected heap and the cached-head
/// displacement rule.
#[test]
fn simultaneous_injection_storm_matches_oracle() {
    for seed in 0..10u64 {
        let mut ops = Vec::new();
        for i in 0..60usize {
            ops.push(Op::Inject {
                delta: Ps::from_us((i % 5) as u64 * 100),
                kind: INJECT_KINDS[i % INJECT_KINDS.len()],
            });
            ops.push(Op::Inject {
                delta: Ps::from_us((i % 5) as u64 * 100),
                kind: INJECT_KINDS[(i + 2) % INJECT_KINDS.len()],
            });
            ops.push(Op::Pop);
        }
        assert_differential(&ops, 0xF10D + seed);
    }
}

proptest! {
    /// Random interleavings of inject / pop / set_enabled / set_timer_hz
    /// / pop_with_faults keep the calendar fabric and the naive oracle in
    /// lockstep: identical deliveries and identical RNG positions.
    #[test]
    fn random_interleavings_match_oracle(
        codes in prop::collection::vec(0u8..=255, 1..150),
        seed in 0u64..100_000,
    ) {
        let ops = decode_ops(&codes, seed.wrapping_mul(0x9E37_79B9));
        assert_differential(&ops, seed);
    }
}
