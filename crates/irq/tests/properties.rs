//! Property-based tests for the interrupt substrate.

use irq::time::Ps;
use irq::{dist, HandlerCostParams, InterruptFabric, InterruptKind};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Ps unit conversions are consistent for any nanosecond count.
    #[test]
    fn ps_conversions_consistent(ns in 0u64..1_000_000_000_000) {
        let t = Ps::from_ns(ns);
        prop_assert_eq!(t.as_ps(), ns * 1_000);
        prop_assert!((t.as_ns() - ns as f64).abs() < 1e-3);
    }

    /// cycles ↔ time round trip: converting cycles to a span and back
    /// never loses more than one cycle (the span rounds up).
    #[test]
    fn cycles_round_trip(cycles in 1u64..10_000_000_000, khz in 100_000u64..6_000_000) {
        let span = Ps::from_cycles_at(cycles, khz);
        let back = span.cycles_at(khz);
        prop_assert!(back >= cycles, "span must cover the cycles: {back} < {cycles}");
        prop_assert!(back - cycles <= 1, "round-up error too large: {back} vs {cycles}");
    }

    /// The fabric delivers periodic ticks in nondecreasing time order for
    /// any frequency and seed.
    #[test]
    fn fabric_is_time_ordered(hz in 10.0f64..2000.0, seed in 0u64..100_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut fabric = InterruptFabric::new();
        fabric.add_periodic_timer(hz, Ps::from_ns(100), &mut rng);
        fabric.add_poisson(InterruptKind::Resched, 50.0, &mut rng);
        let mut last = Ps::ZERO;
        for _ in 0..200 {
            let ev = fabric.pop(&mut rng).expect("armed sources never run dry");
            prop_assert!(ev.at >= last);
            last = ev.at;
        }
    }

    /// Tick counts over a window match the programmed frequency within
    /// jitter tolerance.
    #[test]
    fn fabric_tick_rate(hz_idx in 0usize..4, seed in 0u64..100_000) {
        let hz = [50.0, 100.0, 250.0, 1000.0][hz_idx];
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut fabric = InterruptFabric::new();
        fabric.add_periodic_timer(hz, Ps::from_ns(100), &mut rng);
        let horizon = Ps::from_secs(2);
        let mut count = 0u32;
        while let Some(p) = fabric.peek_next() {
            if p.at > horizon {
                break;
            }
            fabric.pop(&mut rng);
            count += 1;
        }
        let expected = (hz * 2.0) as i64;
        prop_assert!((i64::from(count) - expected).abs() <= 2, "count {count} vs {expected}");
    }

    /// Handler costs always respect the cap and stay positive.
    #[test]
    fn handler_costs_bounded(seed in 0u64..100_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let params = HandlerCostParams::paper_default();
        for _ in 0..200 {
            let w = params.sample(&mut rng);
            prop_assert!(w > Ps::ZERO);
            prop_assert!(w <= params.cap);
        }
    }

    /// Poisson draws are nonnegative and concentrate near lambda.
    #[test]
    fn poisson_sanity(lambda in 0.0f64..500.0, seed in 0u64..100_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mean = (0..400).map(|_| dist::poisson(&mut rng, lambda) as f64).sum::<f64>() / 400.0;
        // 400 draws: mean within 5 sigma of lambda.
        let tol = 5.0 * (lambda / 400.0).sqrt().max(0.05);
        prop_assert!((mean - lambda).abs() <= tol.max(lambda * 0.2 + 0.5),
            "mean {mean} vs lambda {lambda}");
    }

    /// Injected one-shots are delivered exactly once each, in order.
    #[test]
    fn injections_delivered_once(times in prop::collection::vec(1u64..1_000_000, 1..30)) {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut fabric = InterruptFabric::new();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        fabric.inject_all(times.iter().map(|&us| (Ps::from_us(us), InterruptKind::Network)));
        let mut seen = Vec::new();
        while let Some(ev) = fabric.pop(&mut rng) {
            seen.push(ev.at);
        }
        prop_assert_eq!(seen.len(), times.len());
        let expected: Vec<Ps> = sorted.into_iter().map(Ps::from_us).collect();
        prop_assert_eq!(seen, expected);
    }
}
