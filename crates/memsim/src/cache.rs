//! A set-associative cache with LRU replacement.

use serde::{Deserialize, Serialize};

/// A set-associative cache indexed by physical line address.
///
/// Each set keeps its ways in MRU-first order; lookups move the hit line to
/// the front, insertions evict the LRU way. `clflush` removes a line from
/// this level (the hierarchy flushes all levels).
///
/// [`clear`](SetAssocCache::clear) is O(1): instead of walking every set it
/// bumps a cache-wide epoch, and a set whose stamp no longer matches is
/// treated as empty (and lazily re-stamped on its next touch). Batched
/// trial runners reset machines in place between trials, so whole-cache
/// invalidation sits on their hot path while individual sets mostly stay
/// cold.
///
/// ```
/// let mut cache = memsim::SetAssocCache::new(64, 8, 64);
/// let addr = 0x4000;
/// assert!(!cache.lookup(addr));
/// cache.insert(addr);
/// assert!(cache.lookup(addr));
/// cache.flush(addr);
/// assert!(!cache.lookup(addr));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetAssocCache {
    sets: Vec<Vec<u64>>,
    /// Per-set epoch stamp; `sets[i]` holds live lines only while
    /// `set_epochs[i] == epoch`.
    set_epochs: Vec<u64>,
    /// Cache-wide epoch, bumped by [`clear`](SetAssocCache::clear).
    epoch: u64,
    ways: usize,
    line_shift: u32,
    set_mask: u64,
    hits: u64,
    misses: u64,
}

impl PartialEq for SetAssocCache {
    /// Logical equality: same geometry, statistics, and *live* contents.
    /// Epoch bookkeeping and lazily-uncleared stale lines are
    /// representation details and do not participate.
    fn eq(&self, other: &Self) -> bool {
        self.ways == other.ways
            && self.line_shift == other.line_shift
            && self.set_mask == other.set_mask
            && self.hits == other.hits
            && self.misses == other.misses
            && self.sets.len() == other.sets.len()
            && (0..self.sets.len()).all(|s| self.live_lines(s) == other.live_lines(s))
    }
}

impl Eq for SetAssocCache {}

impl SetAssocCache {
    /// Creates a cache with `num_sets` sets of `ways` ways and
    /// `line_size`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics unless `num_sets` and `line_size` are nonzero powers of two
    /// and `ways` is nonzero.
    #[must_use]
    pub fn new(num_sets: usize, ways: usize, line_size: usize) -> Self {
        assert!(
            num_sets.is_power_of_two() && num_sets > 0,
            "sets must be a power of two"
        );
        assert!(
            line_size.is_power_of_two() && line_size > 0,
            "line size must be a power of two"
        );
        assert!(ways > 0, "cache must have at least one way");
        SetAssocCache {
            sets: vec![Vec::with_capacity(ways); num_sets],
            set_epochs: vec![0; num_sets],
            epoch: 0,
            ways,
            line_shift: line_size.trailing_zeros(),
            set_mask: (num_sets - 1) as u64,
            hits: 0,
            misses: 0,
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// The live lines of one set (empty when its stamp is stale).
    fn live_lines(&self, set: usize) -> &[u64] {
        if self.set_epochs[set] == self.epoch {
            &self.sets[set]
        } else {
            &[]
        }
    }

    /// Revives a lazily-cleared set: drops stale lines and re-stamps it to
    /// the current epoch, so mutating paths can work on the raw `Vec`.
    fn revive(&mut self, set: usize) {
        if self.set_epochs[set] != self.epoch {
            self.sets[set].clear();
            self.set_epochs[set] = self.epoch;
        }
    }

    /// Looks up `addr`; on a hit the line is promoted to MRU.
    pub fn lookup(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        self.revive(set);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            let hit = ways.remove(pos);
            ways.insert(0, hit);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Returns whether `addr` is cached *without* updating LRU state or
    /// statistics (a probe for tests and ground truth).
    #[must_use]
    pub fn peek(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        self.live_lines(self.set_of(line)).contains(&line)
    }

    /// Inserts the line containing `addr` at MRU, evicting the LRU way if
    /// the set is full. Returns the evicted line address, if any.
    pub fn insert(&mut self, addr: u64) -> Option<u64> {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        self.revive(set);
        let line_shift = self.line_shift;
        let ways_cap = self.ways;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            let hit = ways.remove(pos);
            ways.insert(0, hit);
            return None;
        }
        ways.insert(0, line);
        if ways.len() > ways_cap {
            ways.pop().map(|l| l << line_shift)
        } else {
            None
        }
    }

    /// Removes the line containing `addr` from this level. Returns whether
    /// it was present.
    pub fn flush(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        self.revive(set);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            ways.remove(pos);
            true
        } else {
            false
        }
    }

    /// Empties the whole cache and resets statistics.
    ///
    /// O(1): bumps the cache-wide epoch, invalidating every set's stamp at
    /// once; stale lines are dropped lazily when their set is next touched.
    pub fn clear(&mut self) {
        self.epoch += 1;
        self.hits = 0;
        self.misses = 0;
    }

    /// Collapses the lazy-clear representation into canonical form:
    /// stale sets are emptied and every epoch stamp resets to zero.
    ///
    /// Behaviour-preserving (logical contents, statistics, and every
    /// subsequent op outcome are unchanged), but afterwards two logically
    /// equal caches are *structurally* equal — which is what snapshots
    /// need so that serialized images are byte-comparable and free of
    /// stale-line payload.
    pub fn canonicalize(&mut self) {
        for set in 0..self.sets.len() {
            if self.set_epochs[set] != self.epoch {
                self.sets[set].clear();
            }
            self.set_epochs[set] = 0;
        }
        self.epoch = 0;
    }

    /// Number of lookups that hit.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that missed.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total lines currently resident.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        (0..self.sets.len()).map(|s| self.live_lines(s).len()).sum()
    }

    /// Cache capacity in lines.
    #[must_use]
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_miss_after_flush() {
        let mut c = SetAssocCache::new(16, 4, 64);
        assert!(!c.lookup(0x1000));
        c.insert(0x1000);
        assert!(c.lookup(0x1000));
        // Same line, different byte offset.
        assert!(c.lookup(0x103f));
        assert!(c.flush(0x1000));
        assert!(!c.lookup(0x1000));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = SetAssocCache::new(1, 2, 64);
        c.insert(0x0);
        c.insert(0x40);
        // Touch 0x0 so 0x40 becomes LRU.
        assert!(c.lookup(0x0));
        let evicted = c.insert(0x80);
        assert_eq!(evicted, Some(0x40));
        assert!(c.peek(0x0));
        assert!(!c.peek(0x40));
        assert!(c.peek(0x80));
    }

    #[test]
    fn reinserting_resident_line_evicts_nothing() {
        let mut c = SetAssocCache::new(1, 2, 64);
        c.insert(0x0);
        c.insert(0x40);
        assert_eq!(c.insert(0x0), None);
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = SetAssocCache::new(2, 1, 64);
        c.insert(0x00); // set 0
        c.insert(0x40); // set 1
        assert!(c.peek(0x00));
        assert!(c.peek(0x40));
        // New line in set 0 evicts only set 0's line.
        c.insert(0x80);
        assert!(!c.peek(0x00));
        assert!(c.peek(0x40));
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let mut c = SetAssocCache::new(1, 2, 64);
        c.insert(0x0);
        c.insert(0x40); // MRU = 0x40, LRU = 0x0
        assert!(c.peek(0x0)); // must not promote
        let evicted = c.insert(0x80);
        assert_eq!(evicted, Some(0x0));
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = SetAssocCache::new(4, 2, 64);
        c.insert(0x0);
        c.lookup(0x0);
        c.clear();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn lazy_clear_is_logically_indistinguishable_from_eager() {
        // A cleared cache must behave exactly like a fresh one even though
        // stale lines may still sit in lazily-uncleared sets.
        let mut cleared = SetAssocCache::new(8, 2, 64);
        for addr in (0..32u64).map(|i| i * 64) {
            cleared.insert(addr);
            cleared.lookup(addr);
        }
        cleared.clear();
        let fresh = SetAssocCache::new(8, 2, 64);
        assert_eq!(cleared, fresh, "logical equality ignores stale lines");
        assert_eq!(cleared.resident_lines(), 0);
        for addr in (0..32u64).map(|i| i * 64) {
            assert!(!cleared.peek(addr));
        }
        // Post-clear behaviour matches a fresh cache op for op.
        let mut fresh = fresh;
        for addr in [0x0u64, 0x40, 0x80, 0x200, 0x0, 0x80] {
            assert_eq!(cleared.lookup(addr), fresh.lookup(addr), "addr {addr:#x}");
            assert_eq!(cleared.insert(addr), fresh.insert(addr), "addr {addr:#x}");
        }
        assert_eq!(cleared.flush(0x40), fresh.flush(0x40));
        assert_eq!(cleared, fresh);
        // Repeated clears keep working (each bumps the epoch again).
        cleared.clear();
        fresh.clear();
        assert_eq!(cleared, fresh);
        assert_eq!(cleared.resident_lines(), 0);
    }

    #[test]
    fn canonicalize_preserves_behaviour_and_makes_equals_structural() {
        let mut worked = SetAssocCache::new(8, 2, 64);
        for addr in (0..32u64).map(|i| i * 64) {
            worked.insert(addr);
            worked.lookup(addr);
        }
        worked.clear();
        worked.insert(0x40); // revive one set post-clear
        let mut twin = worked.clone();
        worked.canonicalize();
        assert_eq!(worked, twin, "canonical form is logically identical");
        for addr in [0x0u64, 0x40, 0x80, 0x200, 0x0, 0x80] {
            assert_eq!(worked.lookup(addr), twin.lookup(addr), "addr {addr:#x}");
            assert_eq!(worked.insert(addr), twin.insert(addr), "addr {addr:#x}");
        }
        // Canonicalizing the twin too makes the representations converge.
        twin.canonicalize();
        let (a, b) = (
            serde_json::to_string(&worked).unwrap(),
            serde_json::to_string(&twin).unwrap(),
        );
        assert_eq!(a, b, "canonical snapshots are byte-identical");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _ = SetAssocCache::new(3, 2, 64);
    }

    #[test]
    fn capacity_accounting() {
        let c = SetAssocCache::new(8, 4, 64);
        assert_eq!(c.capacity_lines(), 32);
    }
}
