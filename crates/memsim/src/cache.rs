//! A set-associative cache with LRU replacement.

use serde::{Deserialize, Serialize};

/// A set-associative cache indexed by physical line address.
///
/// Each set keeps its ways in MRU-first order; lookups move the hit line to
/// the front, insertions evict the LRU way. `clflush` removes a line from
/// this level (the hierarchy flushes all levels).
///
/// ```
/// let mut cache = memsim::SetAssocCache::new(64, 8, 64);
/// let addr = 0x4000;
/// assert!(!cache.lookup(addr));
/// cache.insert(addr);
/// assert!(cache.lookup(addr));
/// cache.flush(addr);
/// assert!(!cache.lookup(addr));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetAssocCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    line_shift: u32,
    set_mask: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates a cache with `num_sets` sets of `ways` ways and
    /// `line_size`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics unless `num_sets` and `line_size` are nonzero powers of two
    /// and `ways` is nonzero.
    #[must_use]
    pub fn new(num_sets: usize, ways: usize, line_size: usize) -> Self {
        assert!(
            num_sets.is_power_of_two() && num_sets > 0,
            "sets must be a power of two"
        );
        assert!(
            line_size.is_power_of_two() && line_size > 0,
            "line size must be a power of two"
        );
        assert!(ways > 0, "cache must have at least one way");
        SetAssocCache {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            line_shift: line_size.trailing_zeros(),
            set_mask: (num_sets - 1) as u64,
            hits: 0,
            misses: 0,
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Looks up `addr`; on a hit the line is promoted to MRU.
    pub fn lookup(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            let hit = ways.remove(pos);
            ways.insert(0, hit);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Returns whether `addr` is cached *without* updating LRU state or
    /// statistics (a probe for tests and ground truth).
    #[must_use]
    pub fn peek(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        self.sets[self.set_of(line)].contains(&line)
    }

    /// Inserts the line containing `addr` at MRU, evicting the LRU way if
    /// the set is full. Returns the evicted line address, if any.
    pub fn insert(&mut self, addr: u64) -> Option<u64> {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        let line_shift = self.line_shift;
        let ways_cap = self.ways;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            let hit = ways.remove(pos);
            ways.insert(0, hit);
            return None;
        }
        ways.insert(0, line);
        if ways.len() > ways_cap {
            ways.pop().map(|l| l << line_shift)
        } else {
            None
        }
    }

    /// Removes the line containing `addr` from this level. Returns whether
    /// it was present.
    pub fn flush(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            ways.remove(pos);
            true
        } else {
            false
        }
    }

    /// Empties the whole cache and resets statistics.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of lookups that hit.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that missed.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total lines currently resident.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Cache capacity in lines.
    #[must_use]
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_miss_after_flush() {
        let mut c = SetAssocCache::new(16, 4, 64);
        assert!(!c.lookup(0x1000));
        c.insert(0x1000);
        assert!(c.lookup(0x1000));
        // Same line, different byte offset.
        assert!(c.lookup(0x103f));
        assert!(c.flush(0x1000));
        assert!(!c.lookup(0x1000));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = SetAssocCache::new(1, 2, 64);
        c.insert(0x0);
        c.insert(0x40);
        // Touch 0x0 so 0x40 becomes LRU.
        assert!(c.lookup(0x0));
        let evicted = c.insert(0x80);
        assert_eq!(evicted, Some(0x40));
        assert!(c.peek(0x0));
        assert!(!c.peek(0x40));
        assert!(c.peek(0x80));
    }

    #[test]
    fn reinserting_resident_line_evicts_nothing() {
        let mut c = SetAssocCache::new(1, 2, 64);
        c.insert(0x0);
        c.insert(0x40);
        assert_eq!(c.insert(0x0), None);
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = SetAssocCache::new(2, 1, 64);
        c.insert(0x00); // set 0
        c.insert(0x40); // set 1
        assert!(c.peek(0x00));
        assert!(c.peek(0x40));
        // New line in set 0 evicts only set 0's line.
        c.insert(0x80);
        assert!(!c.peek(0x00));
        assert!(c.peek(0x40));
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let mut c = SetAssocCache::new(1, 2, 64);
        c.insert(0x0);
        c.insert(0x40); // MRU = 0x40, LRU = 0x0
        assert!(c.peek(0x0)); // must not promote
        let evicted = c.insert(0x80);
        assert_eq!(evicted, Some(0x0));
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = SetAssocCache::new(4, 2, 64);
        c.insert(0x0);
        c.lookup(0x0);
        c.clear();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _ = SetAssocCache::new(3, 2, 64);
    }

    #[test]
    fn capacity_accounting() {
        let c = SetAssocCache::new(8, 4, 64);
        assert_eq!(c.capacity_lines(), 32);
    }
}
