//! The full cache hierarchy: L1/L2/LLC plus DRAM, with per-level latencies.

use crate::cache::SetAssocCache;
use serde::{Deserialize, Serialize};

/// Which level of the hierarchy served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CacheLevel {
    /// First-level data cache.
    L1,
    /// Unified second-level cache.
    L2,
    /// Last-level cache.
    Llc,
    /// Main memory.
    Dram,
}

/// The result of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessOutcome {
    /// Level that served the access.
    pub level: CacheLevel,
    /// Latency in CPU cycles.
    pub cycles: u64,
}

/// Geometry and latency configuration for [`MemoryHierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1: (sets, ways).
    pub l1: (usize, usize),
    /// L2: (sets, ways).
    pub l2: (usize, usize),
    /// LLC: (sets, ways).
    pub llc: (usize, usize),
    /// Line size in bytes (shared by all levels).
    pub line_size: usize,
    /// L1 hit latency, cycles.
    pub l1_cycles: u64,
    /// L2 hit latency, cycles.
    pub l2_cycles: u64,
    /// LLC hit latency, cycles.
    pub llc_cycles: u64,
    /// DRAM access latency, cycles.
    pub dram_cycles: u64,
}

impl HierarchyConfig {
    /// A typical client-CPU configuration: 32 KiB/8-way L1, 1 MiB/16-way
    /// L2, 12 MiB/12-way LLC, 64-byte lines, latencies 4/14/42/220 cycles.
    #[must_use]
    pub fn client_default() -> Self {
        HierarchyConfig {
            l1: (64, 8),
            l2: (1024, 16),
            llc: (16384, 12),
            line_size: 64,
            l1_cycles: 4,
            l2_cycles: 14,
            llc_cycles: 42,
            dram_cycles: 220,
        }
    }

    /// A reduced configuration for fast unit tests.
    #[must_use]
    pub fn tiny() -> Self {
        HierarchyConfig {
            l1: (4, 2),
            l2: (8, 2),
            llc: (16, 4),
            line_size: 64,
            l1_cycles: 4,
            l2_cycles: 14,
            llc_cycles: 42,
            dram_cycles: 220,
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::client_default()
    }
}

/// An inclusive three-level cache hierarchy backed by DRAM.
///
/// The model is deliberately simple — inclusive fills, no coherence
/// directory, no prefetchers — because the paper's attacks only observe
/// the hit/miss latency split and the effect of `clflush`.
///
/// ```
/// use memsim::{MemoryHierarchy, CacheLevel};
/// let mut mem = MemoryHierarchy::default();
/// let secret_line = 0xdead_c0de_u64 & !0x3f;
/// assert_eq!(mem.access(secret_line).level, CacheLevel::Dram);
/// assert_eq!(mem.access(secret_line).level, CacheLevel::L1);
/// mem.clflush(secret_line);
/// assert_eq!(mem.access(secret_line).level, CacheLevel::Dram);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1: SetAssocCache,
    l2: SetAssocCache,
    llc: SetAssocCache,
}

impl MemoryHierarchy {
    /// Builds a hierarchy from a configuration.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> Self {
        MemoryHierarchy {
            l1: SetAssocCache::new(config.l1.0, config.l1.1, config.line_size),
            l2: SetAssocCache::new(config.l2.0, config.l2.1, config.line_size),
            llc: SetAssocCache::new(config.llc.0, config.llc.1, config.line_size),
            config,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Performs a demand load of `addr`, filling all levels on the way in.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        if self.l1.lookup(addr) {
            return AccessOutcome {
                level: CacheLevel::L1,
                cycles: self.config.l1_cycles,
            };
        }
        if self.l2.lookup(addr) {
            self.l1.insert(addr);
            return AccessOutcome {
                level: CacheLevel::L2,
                cycles: self.config.l2_cycles,
            };
        }
        if self.llc.lookup(addr) {
            self.l2.insert(addr);
            self.l1.insert(addr);
            return AccessOutcome {
                level: CacheLevel::Llc,
                cycles: self.config.llc_cycles,
            };
        }
        self.fill(addr);
        AccessOutcome {
            level: CacheLevel::Dram,
            cycles: self.config.dram_cycles,
        }
    }

    /// A software prefetch: fills the line like a load but reports the
    /// pipeline-visible cost (prefetches retire quickly regardless of where
    /// the data was).
    pub fn prefetch(&mut self, addr: u64) -> AccessOutcome {
        let was_cached = self.peek_level(addr);
        match was_cached {
            Some(level) => {
                // Touch to update LRU.
                let _ = self.access(addr);
                AccessOutcome {
                    level,
                    cycles: self.config.l1_cycles,
                }
            }
            None => {
                self.fill(addr);
                AccessOutcome {
                    level: CacheLevel::Dram,
                    cycles: self.config.l1_cycles,
                }
            }
        }
    }

    /// Evicts the line containing `addr` from every level (`clflush`).
    /// Returns whether it was present anywhere.
    pub fn clflush(&mut self, addr: u64) -> bool {
        let a = self.l1.flush(addr);
        let b = self.l2.flush(addr);
        let c = self.llc.flush(addr);
        a || b || c
    }

    /// Returns the fastest level currently holding `addr`, without side
    /// effects (ground-truth probe).
    #[must_use]
    pub fn peek_level(&self, addr: u64) -> Option<CacheLevel> {
        if self.l1.peek(addr) {
            Some(CacheLevel::L1)
        } else if self.l2.peek(addr) {
            Some(CacheLevel::L2)
        } else if self.llc.peek(addr) {
            Some(CacheLevel::Llc)
        } else {
            None
        }
    }

    /// The latency a load of `addr` *would* observe right now, without
    /// performing it.
    #[must_use]
    pub fn peek_cycles(&self, addr: u64) -> u64 {
        match self.peek_level(addr) {
            Some(CacheLevel::L1) => self.config.l1_cycles,
            Some(CacheLevel::L2) => self.config.l2_cycles,
            Some(CacheLevel::Llc) => self.config.llc_cycles,
            Some(CacheLevel::Dram) | None => self.config.dram_cycles,
        }
    }

    /// Empties all levels.
    pub fn clear(&mut self) {
        self.l1.clear();
        self.l2.clear();
        self.llc.clear();
    }

    /// Collapses every level into canonical form (see
    /// [`SetAssocCache::canonicalize`]): behaviour-preserving, but
    /// logically equal hierarchies become structurally — and therefore
    /// serialization — equal.
    pub fn canonicalize(&mut self) {
        self.l1.canonicalize();
        self.l2.canonicalize();
        self.llc.canonicalize();
    }

    fn fill(&mut self, addr: u64) {
        self.llc.insert(addr);
        self.l2.insert(addr);
        self.l1.insert(addr);
    }
}

impl Default for MemoryHierarchy {
    fn default() -> Self {
        MemoryHierarchy::new(HierarchyConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_latency_split() {
        let mut mem = MemoryHierarchy::default();
        let cold = mem.access(0x10000);
        assert_eq!(cold.level, CacheLevel::Dram);
        let warm = mem.access(0x10000);
        assert_eq!(warm.level, CacheLevel::L1);
        assert!(
            cold.cycles > 5 * warm.cycles,
            "F+R needs a wide latency split"
        );
    }

    #[test]
    fn clflush_evicts_all_levels() {
        let mut mem = MemoryHierarchy::default();
        mem.access(0x2000);
        assert!(mem.peek_level(0x2000).is_some());
        assert!(mem.clflush(0x2000));
        assert_eq!(mem.peek_level(0x2000), None);
        assert!(!mem.clflush(0x2000), "double flush finds nothing");
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let cfg = HierarchyConfig::tiny();
        let mut mem = MemoryHierarchy::new(cfg);
        // Fill one L1 set (4 sets, 2 ways, 64B lines -> same set every 4 lines).
        let stride = 4 * 64;
        mem.access(0);
        mem.access(stride as u64);
        mem.access(2 * stride as u64); // evicts line 0 from L1
        let again = mem.access(0);
        assert_eq!(
            again.level,
            CacheLevel::L2,
            "should hit in L2 after L1 eviction"
        );
    }

    #[test]
    fn prefetch_installs_line_cheaply() {
        let mut mem = MemoryHierarchy::default();
        let out = mem.prefetch(0x3000);
        assert_eq!(out.cycles, mem.config().l1_cycles);
        assert_eq!(mem.peek_level(0x3000), Some(CacheLevel::L1));
        let warm = mem.access(0x3000);
        assert_eq!(warm.level, CacheLevel::L1);
    }

    #[test]
    fn peek_cycles_matches_access() {
        let mut mem = MemoryHierarchy::default();
        assert_eq!(mem.peek_cycles(0x4000), mem.config().dram_cycles);
        mem.access(0x4000);
        assert_eq!(mem.peek_cycles(0x4000), mem.config().l1_cycles);
    }

    #[test]
    fn clear_cools_everything() {
        let mut mem = MemoryHierarchy::default();
        mem.access(0x5000);
        mem.clear();
        assert_eq!(mem.peek_level(0x5000), None);
    }
}
