//! The KASLR'd kernel text layout and the mapped/unmapped probing
//! latency asymmetry (paper Section IV-E).

use crate::tlb::Tlb;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of possible kernel text base addresses on Linux/x86-64:
/// a 1 GiB region with 2 MiB alignment.
pub const KASLR_SLOTS: usize = 512;
/// Size of the randomization region in bytes (1 GiB).
pub const KASLR_REGION_BYTES: u64 = 1 << 30;
/// Alignment of the kernel text base (2 MiB).
pub const KASLR_ALIGN: u64 = 2 << 20;

/// Start of the kernel text mapping region in the simulated address space
/// (the canonical `__START_KERNEL_map` value).
pub const KASLR_REGION_START: u64 = 0xffff_ffff_8000_0000;

/// Size of the mapped kernel text in slots (the kernel image spans a few
/// 2 MiB slots starting at the base).
pub const KERNEL_TEXT_SLOTS: usize = 16;

/// Latency parameters for probing kernel addresses from user space.
///
/// Two probing methods exist (paper Figs. 10 and 11):
///
/// * **Direct access** always faults, but the page-walk the fault path
///   performs is shorter for *mapped* addresses (the walk finds a present
///   leaf quickly) than for unmapped ones, and a user-registered SIGSEGV
///   handler absorbs the fault.
/// * **Prefetch** never faults; prefetching a mapped address populates the
///   TLB so later probes are fast, while unmapped addresses walk the full
///   table every time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KaslrTiming {
    /// Cycles for a faulting access to a *mapped* kernel address.
    pub access_mapped: u64,
    /// Cycles for a faulting access to an *unmapped* kernel address.
    pub access_unmapped: u64,
    /// Cycles consumed by the user-space SIGSEGV handler round trip
    /// (paid on every direct access either way).
    pub segfault_handler: u64,
    /// Cycles for a prefetch whose translation hits the TLB.
    pub prefetch_tlb_hit: u64,
    /// Cycles for a prefetch of a mapped address missing the TLB
    /// (page walk finds a valid leaf and installs a translation).
    pub prefetch_mapped_miss: u64,
    /// Cycles for a prefetch of an unmapped address (full failed walk,
    /// nothing cached).
    pub prefetch_unmapped: u64,
}

impl KaslrTiming {
    /// Defaults in the ballpark of published prefetch-attack measurements.
    #[must_use]
    pub fn client_default() -> Self {
        KaslrTiming {
            access_mapped: 760,
            access_unmapped: 1010,
            segfault_handler: 2600,
            prefetch_tlb_hit: 38,
            prefetch_mapped_miss: 245,
            prefetch_unmapped: 410,
        }
    }
}

impl Default for KaslrTiming {
    fn default() -> Self {
        KaslrTiming::client_default()
    }
}

/// A randomized kernel text layout plus the TLB state a probing attacker
/// interacts with.
///
/// ```
/// use memsim::{KaslrLayout, KASLR_SLOTS};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
/// let layout = KaslrLayout::randomize(&mut rng);
/// assert!(layout.secret_slot() < KASLR_SLOTS);
/// assert!(layout.is_mapped(layout.slot_base(layout.secret_slot())));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KaslrLayout {
    secret_slot: usize,
    timing: KaslrTiming,
    tlb: Tlb,
}

impl KaslrLayout {
    /// Draws a fresh random base slot (what a reboot does).
    pub fn randomize<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let secret_slot = rng.gen_range(0..KASLR_SLOTS - KERNEL_TEXT_SLOTS);
        KaslrLayout::with_slot(secret_slot)
    }

    /// Places the kernel at a specific slot (for reproducible tests).
    ///
    /// # Panics
    ///
    /// Panics if the kernel image would extend past the region.
    #[must_use]
    pub fn with_slot(secret_slot: usize) -> Self {
        assert!(
            secret_slot + KERNEL_TEXT_SLOTS <= KASLR_SLOTS,
            "kernel image must fit in the randomization region"
        );
        KaslrLayout {
            secret_slot,
            timing: KaslrTiming::default(),
            tlb: Tlb::new(64),
        }
    }

    /// Overrides the timing model (builder style).
    #[must_use]
    pub fn with_timing(mut self, timing: KaslrTiming) -> Self {
        self.timing = timing;
        self
    }

    /// The slot index the kernel base was randomized to — the secret the
    /// attack recovers.
    #[must_use]
    pub fn secret_slot(&self) -> usize {
        self.secret_slot
    }

    /// The virtual address of slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= KASLR_SLOTS`.
    #[must_use]
    pub fn slot_base(&self, slot: usize) -> u64 {
        assert!(slot < KASLR_SLOTS, "slot {slot} out of range");
        KASLR_REGION_START + slot as u64 * KASLR_ALIGN
    }

    /// The randomized kernel text base address.
    #[must_use]
    pub fn text_base(&self) -> u64 {
        self.slot_base(self.secret_slot)
    }

    /// Whether `addr` falls inside the mapped kernel image.
    #[must_use]
    pub fn is_mapped(&self, addr: u64) -> bool {
        let base = self.text_base();
        let end = base + KERNEL_TEXT_SLOTS as u64 * KASLR_ALIGN;
        (base..end).contains(&addr)
    }

    /// The active timing model.
    #[must_use]
    pub fn timing(&self) -> &KaslrTiming {
        &self.timing
    }

    /// Simulates one *direct access* probe of `addr` from user space:
    /// the access faults, the registered SIGSEGV handler absorbs it, and
    /// the total cycle cost depends on whether the address was mapped.
    pub fn probe_access(&mut self, addr: u64) -> u64 {
        let walk = if self.is_mapped(addr) {
            // A mapped translation can also be TLB-resident from a prior
            // probe, making the fault path even shorter.
            if self.tlb.lookup(addr) {
                self.timing.access_mapped / 2
            } else {
                self.tlb.insert(addr);
                self.timing.access_mapped
            }
        } else {
            self.timing.access_unmapped
        };
        walk + self.timing.segfault_handler
    }

    /// Simulates one *prefetch* probe of `addr`: never faults; mapped
    /// addresses install a TLB translation making later probes cheap.
    pub fn probe_prefetch(&mut self, addr: u64) -> u64 {
        if self.is_mapped(addr) {
            if self.tlb.lookup(addr) {
                self.timing.prefetch_tlb_hit
            } else {
                self.tlb.insert(addr);
                self.timing.prefetch_mapped_miss
            }
        } else {
            self.timing.prefetch_unmapped
        }
    }

    /// Flushes the attacker-visible TLB state (what happens on a context
    /// switch between probe batches).
    pub fn flush_tlb(&mut self) {
        self.tlb.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn region_geometry() {
        assert_eq!(KASLR_SLOTS as u64 * KASLR_ALIGN, KASLR_REGION_BYTES);
        let layout = KaslrLayout::with_slot(0);
        assert_eq!(layout.slot_base(0), KASLR_REGION_START);
        assert_eq!(layout.slot_base(1) - layout.slot_base(0), KASLR_ALIGN);
    }

    #[test]
    fn mapped_window_spans_kernel_image() {
        let layout = KaslrLayout::with_slot(100);
        assert!(!layout.is_mapped(layout.slot_base(99)));
        assert!(layout.is_mapped(layout.slot_base(100)));
        assert!(layout.is_mapped(layout.slot_base(100 + KERNEL_TEXT_SLOTS - 1)));
        assert!(!layout.is_mapped(layout.slot_base(100 + KERNEL_TEXT_SLOTS)));
    }

    #[test]
    fn randomize_is_in_range_and_seed_deterministic() {
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        let la = KaslrLayout::randomize(&mut a);
        let lb = KaslrLayout::randomize(&mut b);
        assert_eq!(la.secret_slot(), lb.secret_slot());
        assert!(la.secret_slot() + KERNEL_TEXT_SLOTS <= KASLR_SLOTS);
    }

    #[test]
    fn access_probe_distinguishes_mapped() {
        let mut layout = KaslrLayout::with_slot(7);
        let mapped = layout.slot_base(7);
        let unmapped = layout.slot_base(300);
        layout.flush_tlb();
        let t_mapped = layout.probe_access(mapped);
        let t_unmapped = layout.probe_access(unmapped);
        assert!(
            t_mapped < t_unmapped,
            "mapped {t_mapped} should be faster than unmapped {t_unmapped}"
        );
    }

    #[test]
    fn repeated_prefetch_amplifies_difference() {
        let mut layout = KaslrLayout::with_slot(7);
        let mapped = layout.slot_base(7);
        let unmapped = layout.slot_base(300);
        let k = 1000u64;
        let total_mapped: u64 = (0..k).map(|_| layout.probe_prefetch(mapped)).sum();
        layout.flush_tlb();
        let total_unmapped: u64 = (0..k).map(|_| layout.probe_prefetch(unmapped)).sum();
        // Difference grows ~linearly with K.
        let per_probe_gap = layout.timing().prefetch_unmapped - layout.timing().prefetch_tlb_hit;
        let diff = total_unmapped - total_mapped;
        assert!(
            diff > (k - 10) * per_probe_gap * 9 / 10,
            "amplified diff {diff} too small"
        );
    }

    #[test]
    fn tlb_warmth_speeds_up_second_access_probe() {
        let mut layout = KaslrLayout::with_slot(12);
        let mapped = layout.slot_base(12);
        layout.flush_tlb();
        let cold = layout.probe_access(mapped);
        let warm = layout.probe_access(mapped);
        assert!(warm < cold);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_base_bounds_checked() {
        let layout = KaslrLayout::with_slot(0);
        let _ = layout.slot_base(KASLR_SLOTS);
    }
}
