//! Memory-hierarchy substrate for the SegScope reproduction.
//!
//! Provides the pieces of the memory system the paper's case studies
//! observe through timing:
//!
//! * [`SetAssocCache`] / [`MemoryHierarchy`] — set-associative L1/L2/LLC
//!   with LRU replacement, `clflush`, and per-level hit latencies. This is
//!   the substrate for Flush+Reload and the Spectre cache side effect
//!   (paper Section IV-F, Fig. 12).
//! * [`Tlb`] — a small TLB whose hit/miss behaviour produces the
//!   K-amplification effect when repeatedly probing one kernel address
//!   (paper Figs. 10 and 11).
//! * [`KaslrLayout`] / [`KaslrTiming`] — the randomized kernel text base
//!   (512 slots of 2 MiB within a 1 GiB region) and the access/prefetch
//!   latency asymmetry between mapped and unmapped slots that the
//!   SegScope-based timer measures to de-randomize it (paper Section IV-E,
//!   Tables VII and VIII).
//!
//! All latencies are expressed in CPU cycles; the machine simulator
//! converts them to time at the core's current frequency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod kaslr;
mod tlb;

pub use cache::SetAssocCache;
pub use hierarchy::{AccessOutcome, CacheLevel, HierarchyConfig, MemoryHierarchy};
pub use kaslr::{
    KaslrLayout, KaslrTiming, KASLR_ALIGN, KASLR_REGION_BYTES, KASLR_REGION_START, KASLR_SLOTS,
    KERNEL_TEXT_SLOTS,
};
pub use tlb::Tlb;
