//! A small fully-associative TLB with LRU replacement.

use serde::{Deserialize, Serialize};

/// A fully-associative translation lookaside buffer over 4 KiB pages.
///
/// Repeatedly probing one kernel address keeps its translation (for mapped
/// pages) resident here, so only the *first* of `K` probes pays the full
/// page-walk cost — while unmapped pages walk the page table every time.
/// This asymmetry is what lets the KASLR attacker amplify the mapped vs
/// unmapped timing difference by raising `K` (paper Figs. 10 and 11).
///
/// ```
/// let mut tlb = memsim::Tlb::new(4);
/// assert!(!tlb.lookup(0x1000));
/// tlb.insert(0x1000);
/// assert!(tlb.lookup(0x1234)); // same 4 KiB page
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tlb {
    entries: Vec<u64>,
    capacity: usize,
}

const PAGE_SHIFT: u32 = 12;

impl Tlb {
    /// Creates a TLB holding up to `capacity` page translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tlb must hold at least one entry");
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    fn page_of(addr: u64) -> u64 {
        addr >> PAGE_SHIFT
    }

    /// Looks up the translation for the page containing `addr`, promoting
    /// it to MRU on a hit.
    pub fn lookup(&mut self, addr: u64) -> bool {
        let page = Self::page_of(addr);
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            let hit = self.entries.remove(pos);
            self.entries.insert(0, hit);
            true
        } else {
            false
        }
    }

    /// Installs the translation for the page containing `addr` (MRU),
    /// evicting the LRU entry when full.
    pub fn insert(&mut self, addr: u64) {
        let page = Self::page_of(addr);
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            self.entries.remove(pos);
        }
        self.entries.insert(0, page);
        self.entries.truncate(self.capacity);
    }

    /// Checks residency without promoting.
    #[must_use]
    pub fn peek(&self, addr: u64) -> bool {
        self.entries.contains(&Self::page_of(addr))
    }

    /// Drops every translation (what a context switch with PCID disabled,
    /// or a TLB shootdown, does).
    pub fn flush_all(&mut self) {
        self.entries.clear();
    }

    /// Number of resident translations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the TLB holds no translations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_granularity() {
        let mut tlb = Tlb::new(8);
        tlb.insert(0x1000);
        assert!(tlb.lookup(0x1fff)); // same page
        assert!(!tlb.lookup(0x2000)); // next page
    }

    #[test]
    fn lru_eviction() {
        let mut tlb = Tlb::new(2);
        tlb.insert(0x1000);
        tlb.insert(0x2000);
        assert!(tlb.lookup(0x1000)); // promote page 1
        tlb.insert(0x3000); // evicts page 2
        assert!(tlb.peek(0x1000));
        assert!(!tlb.peek(0x2000));
        assert!(tlb.peek(0x3000));
    }

    #[test]
    fn reinsert_does_not_duplicate() {
        let mut tlb = Tlb::new(4);
        tlb.insert(0x1000);
        tlb.insert(0x1000);
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn flush_all_empties() {
        let mut tlb = Tlb::new(4);
        tlb.insert(0x1000);
        tlb.flush_all();
        assert!(tlb.is_empty());
        assert!(!tlb.lookup(0x1000));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = Tlb::new(0);
    }
}
