//! Property-based tests for the memory substrate.

use memsim::{HierarchyConfig, KaslrLayout, MemoryHierarchy, SetAssocCache, Tlb, KASLR_SLOTS};
use proptest::prelude::*;

proptest! {
    /// A line just inserted is always resident; flushing it always
    /// removes it — for any address.
    #[test]
    fn insert_lookup_flush(addr in any::<u64>()) {
        let mut cache = SetAssocCache::new(64, 8, 64);
        cache.insert(addr);
        prop_assert!(cache.peek(addr));
        prop_assert!(cache.lookup(addr));
        prop_assert!(cache.flush(addr));
        prop_assert!(!cache.peek(addr));
    }

    /// Residency never exceeds capacity, whatever the access pattern.
    #[test]
    fn capacity_invariant(addrs in prop::collection::vec(any::<u64>(), 1..500)) {
        let mut cache = SetAssocCache::new(16, 4, 64);
        for a in &addrs {
            cache.insert(*a);
            prop_assert!(cache.resident_lines() <= cache.capacity_lines());
        }
    }

    /// After an access, a repeat access hits at L1 with the L1 latency —
    /// the monotone warm-up every timing attack depends on.
    #[test]
    fn second_access_is_l1(addr in any::<u64>()) {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::client_default());
        let first = mem.access(addr);
        let second = mem.access(addr);
        prop_assert!(second.cycles <= first.cycles);
        prop_assert_eq!(second.cycles, mem.config().l1_cycles);
    }

    /// clflush fully cools a line: the next access pays DRAM latency.
    #[test]
    fn clflush_cools(addr in any::<u64>()) {
        let mut mem = MemoryHierarchy::default();
        mem.access(addr);
        mem.clflush(addr);
        prop_assert_eq!(mem.access(addr).cycles, mem.config().dram_cycles);
    }

    /// The TLB never reports a hit for a page never inserted.
    #[test]
    fn tlb_no_phantom_hits(pages in prop::collection::vec(0u64..1_000, 1..50)) {
        let mut tlb = Tlb::new(16);
        for &p in &pages {
            tlb.insert(p << 12);
        }
        for probe in 1_000u64..1_050 {
            let hit = tlb.peek(probe << 12);
            prop_assert!(!hit || pages.contains(&probe));
        }
    }

    /// KASLR: exactly KERNEL_TEXT_SLOTS slots are mapped, contiguous,
    /// starting at the secret.
    #[test]
    fn kaslr_mapped_window(slot in 0usize..(KASLR_SLOTS - memsim::KERNEL_TEXT_SLOTS)) {
        let layout = KaslrLayout::with_slot(slot);
        let mapped: Vec<usize> = (0..KASLR_SLOTS)
            .filter(|&s| layout.is_mapped(layout.slot_base(s)))
            .collect();
        prop_assert_eq!(mapped.len(), memsim::KERNEL_TEXT_SLOTS);
        prop_assert_eq!(mapped[0], slot);
        prop_assert!(mapped.windows(2).all(|w| w[1] == w[0] + 1));
    }

    /// Mapped probes are never slower than unmapped probes, under both
    /// methods, regardless of TLB state.
    #[test]
    fn mapped_is_never_slower(slot in 0usize..400, probes in 1usize..16) {
        let mut layout = KaslrLayout::with_slot(slot);
        let mapped = layout.slot_base(slot);
        let unmapped = layout.slot_base(450);
        for _ in 0..probes {
            let m = layout.probe_prefetch(mapped);
            let u = layout.probe_prefetch(unmapped);
            prop_assert!(m < u, "prefetch: mapped {m} !< unmapped {u}");
        }
        layout.flush_tlb();
        for _ in 0..probes {
            let m = layout.probe_access(mapped);
            let u = layout.probe_access(unmapped);
            prop_assert!(m < u, "access: mapped {m} !< unmapped {u}");
        }
    }
}
