//! Ready-made classifier heads: a many-to-one sequence classifier (the
//! website-fingerprinting LSTM) and a many-to-many sequence tagger (the
//! DNN-layer-segmentation BiLSTM).

use crate::dense::Dense;
use crate::loss::{argmax, softmax_cross_entropy_into, top_k};
use crate::lstm::{BiLstm, Lstm};
use crate::optim::AdamConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A labeled sequence for many-to-one classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeqExample {
    /// Per-timestep feature vectors.
    pub xs: Vec<Vec<f32>>,
    /// Class label.
    pub label: usize,
}

/// An LSTM → dense → softmax sequence classifier (many-to-one), the shape
/// of the paper's website-fingerprinting model (32 LSTM units).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeqClassifier {
    lstm: Lstm,
    head: Dense,
}

impl SeqClassifier {
    /// Creates a classifier with the given dimensions.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        input: usize,
        hidden: usize,
        classes: usize,
        rng: &mut R,
        adam: AdamConfig,
    ) -> Self {
        SeqClassifier {
            lstm: Lstm::new(input, hidden, rng, adam),
            head: Dense::new(hidden, classes, rng, adam),
        }
    }

    /// Number of output classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.head.output_dim()
    }

    /// The recurrent layer (read-only, for external inference engines).
    #[must_use]
    pub fn lstm(&self) -> &Lstm {
        &self.lstm
    }

    /// The output head (read-only, for external inference engines).
    #[must_use]
    pub fn head(&self) -> &Dense {
        &self.head
    }

    /// Class logits for one sequence.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence.
    #[must_use]
    pub fn logits(&self, xs: &[Vec<f32>]) -> Vec<f32> {
        assert!(!xs.is_empty(), "cannot classify an empty sequence");
        let trace = self.lstm.forward(xs);
        self.head.forward(trace.hidden(trace.len() - 1))
    }

    /// Predicted class.
    #[must_use]
    pub fn predict(&self, xs: &[Vec<f32>]) -> usize {
        argmax(&self.logits(xs))
    }

    /// Top-`k` predicted classes, best first.
    #[must_use]
    pub fn predict_top_k(&self, xs: &[Vec<f32>], k: usize) -> Vec<usize> {
        top_k(&self.logits(xs), k)
    }

    /// One SGD epoch over `examples` in the given order, with gradient
    /// application every `batch` examples. Returns the mean loss.
    pub fn train_epoch(&mut self, examples: &[SeqExample], batch: usize) -> f32 {
        let mut total = 0.0f32;
        let mut in_batch = 0usize;
        // Per-example scratch, allocated once per epoch.
        let mut logits = vec![0.0f32; self.head.output_dim()];
        let mut dlogits = vec![0.0f32; self.head.output_dim()];
        let mut dh_last = vec![0.0f32; self.lstm.hidden_dim()];
        for ex in examples {
            let trace = self.lstm.forward(&ex.xs);
            let last = trace.len() - 1;
            self.head.forward_into(trace.hidden(last), &mut logits);
            total += softmax_cross_entropy_into(&logits, ex.label, &mut dlogits);
            self.head
                .backward_into(trace.hidden(last), &dlogits, &mut dh_last);
            self.lstm.backward_last(&trace, &dh_last);
            in_batch += 1;
            if in_batch == batch {
                self.lstm.apply_grads(batch);
                self.head.apply_grads(batch);
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            self.lstm.apply_grads(in_batch);
            self.head.apply_grads(in_batch);
        }
        total / examples.len().max(1) as f32
    }

    /// Top-1 accuracy over a labeled set.
    #[must_use]
    pub fn accuracy(&self, examples: &[SeqExample]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let hits = examples
            .iter()
            .filter(|ex| self.predict(&ex.xs) == ex.label)
            .count();
        hits as f64 / examples.len() as f64
    }

    /// Top-`k` accuracy over a labeled set.
    #[must_use]
    pub fn top_k_accuracy(&self, examples: &[SeqExample], k: usize) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let hits = examples
            .iter()
            .filter(|ex| self.predict_top_k(&ex.xs, k).contains(&ex.label))
            .count();
        hits as f64 / examples.len() as f64
    }
}

/// A per-timestep labeled sequence for many-to-many tagging.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaggedExample {
    /// Per-timestep feature vectors.
    pub xs: Vec<Vec<f32>>,
    /// Per-timestep class labels (same length as `xs`).
    pub tags: Vec<usize>,
}

/// A BiLSTM → dense → softmax sequence tagger (many-to-many), the shape of
/// the paper's DNN-architecture-segmentation model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeqTagger {
    bilstm: BiLstm,
    head: Dense,
}

impl SeqTagger {
    /// Creates a tagger with the given dimensions.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        input: usize,
        hidden: usize,
        classes: usize,
        rng: &mut R,
        adam: AdamConfig,
    ) -> Self {
        SeqTagger {
            bilstm: BiLstm::new(input, hidden, rng, adam),
            head: Dense::new(2 * hidden, classes, rng, adam),
        }
    }

    /// Number of tag classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.head.output_dim()
    }

    /// Per-timestep predicted tags.
    #[must_use]
    pub fn predict(&self, xs: &[Vec<f32>]) -> Vec<usize> {
        let trace = self.bilstm.forward(xs);
        let mut features = vec![0.0f32; self.bilstm.output_dim()];
        let mut logits = vec![0.0f32; self.head.output_dim()];
        (0..trace.len())
            .map(|t| {
                trace.output_into(t, &mut features);
                self.head.forward_into(&features, &mut logits);
                argmax(&logits)
            })
            .collect()
    }

    /// One training epoch; returns the mean per-timestep loss.
    ///
    /// # Panics
    ///
    /// Panics if an example's `tags` length differs from its `xs` length.
    pub fn train_epoch(&mut self, examples: &[TaggedExample], batch: usize) -> f32 {
        let mut total = 0.0f32;
        let mut steps = 0usize;
        let mut in_batch = 0usize;
        let width = self.bilstm.output_dim();
        // Per-timestep scratch, allocated once per epoch; the flat
        // per-example gradient buffer is reused across examples too.
        let mut features = vec![0.0f32; width];
        let mut logits = vec![0.0f32; self.head.output_dim()];
        let mut dlogits = vec![0.0f32; self.head.output_dim()];
        let mut d_out = Vec::new();
        for ex in examples {
            assert_eq!(ex.xs.len(), ex.tags.len(), "tags must align with inputs");
            let trace = self.bilstm.forward(&ex.xs);
            d_out.clear();
            d_out.resize(trace.len() * width, 0.0f32);
            for t in 0..trace.len() {
                trace.output_into(t, &mut features);
                self.head.forward_into(&features, &mut logits);
                total += softmax_cross_entropy_into(&logits, ex.tags[t], &mut dlogits);
                steps += 1;
                self.head.backward_into(
                    &features,
                    &dlogits,
                    &mut d_out[t * width..(t + 1) * width],
                );
            }
            self.bilstm.backward_flat(&trace, &d_out);
            in_batch += 1;
            if in_batch == batch {
                self.bilstm.apply_grads(batch);
                self.head.apply_grads(batch * trace.len().max(1));
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            self.bilstm.apply_grads(in_batch);
            self.head.apply_grads(in_batch);
        }
        total / steps.max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Class c = constant level c/3 plus noise.
    fn toy_seq_data(rng: &mut SmallRng, n_per_class: usize) -> Vec<SeqExample> {
        let mut out = Vec::new();
        for label in 0..3usize {
            for _ in 0..n_per_class {
                let xs = (0..10)
                    .map(|_| vec![label as f32 / 3.0 + rng.gen_range(-0.05f32..0.05)])
                    .collect();
                out.push(SeqExample { xs, label });
            }
        }
        out
    }

    #[test]
    fn seq_classifier_learns_toy_classes() {
        let mut rng = SmallRng::seed_from_u64(11);
        let train = toy_seq_data(&mut rng, 20);
        let test = toy_seq_data(&mut rng, 10);
        let mut model = SeqClassifier::new(
            1,
            8,
            3,
            &mut rng,
            AdamConfig {
                lr: 0.02,
                ..AdamConfig::default()
            },
        );
        let initial = model.accuracy(&test);
        for _ in 0..15 {
            model.train_epoch(&train, 8);
        }
        let trained = model.accuracy(&test);
        assert!(trained > 0.9, "accuracy {initial} -> {trained}");
        assert!(model.top_k_accuracy(&test, 2) >= trained);
        assert_eq!(model.classes(), 3);
    }

    #[test]
    fn tagger_learns_level_segmentation() {
        // Tag = 0 where signal < 0.5, else 1.
        let mut rng = SmallRng::seed_from_u64(12);
        let make = |rng: &mut SmallRng| {
            let flip = rng.gen_range(3..7);
            let xs: Vec<Vec<f32>> = (0..10)
                .map(|t| vec![if t < flip { 0.1f32 } else { 0.9 } + rng.gen_range(-0.05f32..0.05)])
                .collect();
            let tags: Vec<usize> = (0..10).map(|t| usize::from(t >= flip)).collect();
            TaggedExample { xs, tags }
        };
        let train: Vec<_> = (0..40).map(|_| make(&mut rng)).collect();
        let test: Vec<_> = (0..10).map(|_| make(&mut rng)).collect();
        let mut model = SeqTagger::new(
            1,
            6,
            2,
            &mut rng,
            AdamConfig {
                lr: 0.02,
                ..AdamConfig::default()
            },
        );
        for _ in 0..12 {
            model.train_epoch(&train, 8);
        }
        let mut hits = 0usize;
        let mut total = 0usize;
        for ex in &test {
            let pred = model.predict(&ex.xs);
            hits += pred.iter().zip(&ex.tags).filter(|(p, t)| p == t).count();
            total += ex.tags.len();
        }
        let acc = hits as f64 / total as f64;
        assert!(acc > 0.9, "per-timestep accuracy {acc}");
        assert_eq!(model.classes(), 2);
    }

    #[test]
    fn training_loss_decreases() {
        let mut rng = SmallRng::seed_from_u64(13);
        let train = toy_seq_data(&mut rng, 15);
        let mut model = SeqClassifier::new(1, 6, 3, &mut rng, AdamConfig::default());
        let first = model.train_epoch(&train, 8);
        let mut last = first;
        for _ in 0..10 {
            last = model.train_epoch(&train, 8);
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let mut rng = SmallRng::seed_from_u64(14);
        let model = SeqClassifier::new(1, 4, 2, &mut rng, AdamConfig::default());
        let _ = model.logits(&[]);
    }
}
