//! Dataset utilities: standardization, pooling, shuffled splits, and
//! k-fold cross validation (the paper evaluates website fingerprinting
//! with 10-fold CV).

use rand::seq::SliceRandom;
use rand::Rng;

/// Average-pools a 1-D series down to `target_len` buckets (the trace
/// compression applied before feeding SegCnt traces to the LSTM).
///
/// ```
/// let pooled = nnet::average_pool(&[1.0, 3.0, 5.0, 7.0], 2);
/// assert_eq!(pooled, vec![2.0, 6.0]);
/// ```
#[must_use]
pub fn average_pool(series: &[f64], target_len: usize) -> Vec<f64> {
    if series.is_empty() || target_len == 0 {
        return Vec::new();
    }
    let n = series.len();
    let target = target_len.min(n);
    (0..target)
        .map(|b| {
            let lo = b * n / target;
            let hi = ((b + 1) * n / target).max(lo + 1);
            series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Standardizes a series to zero mean, unit variance (no-op std when the
/// series is constant).
#[must_use]
pub fn standardize(series: &[f64]) -> Vec<f64> {
    if series.is_empty() {
        return Vec::new();
    }
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    let var = series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / series.len() as f64;
    let std = var.sqrt().max(1e-12);
    series.iter().map(|x| (x - mean) / std).collect()
}

/// Converts an `f64` series into per-timestep single-feature `f32`
/// vectors for the sequence models.
#[must_use]
pub fn to_features(series: &[f64]) -> Vec<Vec<f32>> {
    series.iter().map(|&x| vec![x as f32]).collect()
}

/// Yields `(train_indices, test_indices)` for `k`-fold cross validation
/// over `n` items, after a seeded shuffle.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds `n`.
#[must_use]
pub fn k_fold_indices<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    rng: &mut R,
) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k > 0 && k <= n, "k must be in 1..=n");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    (0..k)
        .map(|fold| {
            let lo = fold * n / k;
            let hi = (fold + 1) * n / k;
            let test: Vec<usize> = idx[lo..hi].to_vec();
            let train: Vec<usize> = idx[..lo].iter().chain(&idx[hi..]).copied().collect();
            (train, test)
        })
        .collect()
}

/// A seeded shuffled train/test split: `test_fraction` of items go to the
/// test set.
#[must_use]
pub fn train_test_split<R: Rng + ?Sized>(
    n: usize,
    test_fraction: f64,
    rng: &mut R,
) -> (Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let test_n = ((n as f64 * test_fraction).round() as usize).min(n);
    let test = idx[..test_n].to_vec();
    let train = idx[test_n..].to_vec();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pooling_preserves_mean() {
        let series: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let pooled = average_pool(&series, 100);
        assert_eq!(pooled.len(), 100);
        let orig_mean = series.iter().sum::<f64>() / 1000.0;
        let pool_mean = pooled.iter().sum::<f64>() / 100.0;
        assert!((orig_mean - pool_mean).abs() < 1.0);
    }

    #[test]
    fn pooling_short_series() {
        assert_eq!(average_pool(&[1.0, 2.0], 10), vec![1.0, 2.0]);
        assert!(average_pool(&[], 5).is_empty());
        assert!(average_pool(&[1.0], 0).is_empty());
    }

    #[test]
    fn standardize_moments() {
        let s = standardize(&[1.0, 2.0, 3.0, 4.0]);
        let mean = s.iter().sum::<f64>() / 4.0;
        let var = s.iter().map(|x| x * x).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-9);
        // Constant series does not blow up.
        let c = standardize(&[5.0; 4]);
        assert!(c.iter().all(|x| x.abs() < 1e-6));
    }

    #[test]
    fn k_fold_partitions_everything() {
        let mut rng = SmallRng::seed_from_u64(1);
        let folds = k_fold_indices(103, 10, &mut rng);
        assert_eq!(folds.len(), 10);
        let mut all_test: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        all_test.sort_unstable();
        assert_eq!(all_test, (0..103).collect::<Vec<_>>());
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 103);
            assert!(test.iter().all(|i| !train.contains(i)));
        }
    }

    #[test]
    fn split_fractions() {
        let mut rng = SmallRng::seed_from_u64(2);
        let (train, test) = train_test_split(100, 0.2, &mut rng);
        assert_eq!(test.len(), 20);
        assert_eq!(train.len(), 80);
    }

    #[test]
    fn to_features_shape() {
        let f = to_features(&[1.0, 2.0]);
        assert_eq!(f, vec![vec![1.0f32], vec![2.0f32]]);
    }
}
