//! A fully-connected layer with folded-in bias.

use crate::mat::Mat;
use crate::optim::{Adam, AdamConfig};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense layer `y = W · [x, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    input: usize,
    output: usize,
    w: Mat,
    grad: Mat,
    adam: Adam,
}

impl Dense {
    /// Creates a Xavier-initialized dense layer.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        input: usize,
        output: usize,
        rng: &mut R,
        adam: AdamConfig,
    ) -> Self {
        let w = Mat::xavier(output, input + 1, rng);
        let len = w.as_slice().len();
        Dense {
            input,
            output,
            w,
            grad: Mat::zeros(output, input + 1),
            adam: Adam::new(len, adam),
        }
    }

    /// Input dimensionality.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Output dimensionality.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.output
    }

    /// The `output × (input + 1)` weight matrix (bias folded into the
    /// last column) — read-only access for external inference engines.
    #[must_use]
    pub fn weights(&self) -> &Mat {
        &self.w
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics on input dimension mismatch.
    #[must_use]
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.output];
        self.forward_into(x, &mut out);
        out
    }

    /// Allocation-free forward pass into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn forward_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.input, "dense input dimension");
        assert_eq!(out.len(), self.output, "dense output dimension");
        out.fill(0.0);
        self.w.matvec_bias_acc(x, out);
    }

    /// Backward pass: accumulates the weight gradient and returns the
    /// gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn backward(&mut self, x: &[f32], d_out: &[f32]) -> Vec<f32> {
        let mut dx = vec![0.0f32; self.input];
        self.backward_into(x, d_out, &mut dx);
        dx
    }

    /// Allocation-free backward pass: accumulates the weight gradient and
    /// writes the input gradient into `dx`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn backward_into(&mut self, x: &[f32], d_out: &[f32], dx: &mut [f32]) {
        assert_eq!(x.len(), self.input, "dense input dimension");
        assert_eq!(d_out.len(), self.output, "dense output-grad dimension");
        assert_eq!(dx.len(), self.input, "dense input-grad dimension");
        self.grad.outer_acc_bias(d_out, x, 1.0);
        dx.fill(0.0);
        self.w.matvec_t_narrow(d_out, dx);
    }

    /// Applies accumulated gradients (scaled by `1/batch`) with Adam.
    pub fn apply_grads(&mut self, batch: usize) {
        let scale = 1.0 / batch.max(1) as f32;
        for g in self.grad.as_mut_slice() {
            *g *= scale;
        }
        let mut flat = std::mem::replace(&mut self.grad, Mat::zeros(0, 0));
        self.adam.step(self.w.as_mut_slice(), flat.as_mut_slice());
        flat.fill_zero();
        self.grad = flat;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_bias() {
        let mut rng = SmallRng::seed_from_u64(1);
        let layer = Dense::new(3, 2, &mut rng, AdamConfig::default());
        let y = layer.forward(&[0.0, 0.0, 0.0]);
        assert_eq!(y.len(), 2);
        // With zero input, output equals the bias column.
        assert_eq!(y[0], layer.w.get(0, 3));
        assert_eq!(y[1], layer.w.get(1, 3));
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut layer = Dense::new(3, 2, &mut rng, AdamConfig::default());
        let x = [0.4f32, -0.2, 0.9];
        // Loss = sum(y).
        let d_out = [1.0f32, 1.0];
        let dx = layer.backward(&x, &d_out);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let up: f32 = layer.forward(&xp).iter().sum();
            xp[i] -= 2.0 * eps;
            let down: f32 = layer.forward(&xp).iter().sum();
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (dx[i] - numeric).abs() < 1e-2,
                "dx[{i}] {} vs {numeric}",
                dx[i]
            );
        }
    }

    #[test]
    fn learns_a_linear_map() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut layer = Dense::new(
            2,
            1,
            &mut rng,
            AdamConfig {
                lr: 0.05,
                ..AdamConfig::default()
            },
        );
        // Target: y = 2a - b + 0.5.
        let target = |a: f32, b: f32| 2.0 * a - b + 0.5;
        let data: Vec<(f32, f32)> = (0..16)
            .map(|i| ((i % 4) as f32 / 3.0, (i / 4) as f32 / 3.0))
            .collect();
        for _ in 0..400 {
            for &(a, b) in &data {
                let y = layer.forward(&[a, b])[0];
                let d = 2.0 * (y - target(a, b));
                layer.backward(&[a, b], &[d]);
            }
            layer.apply_grads(data.len());
        }
        for &(a, b) in &data {
            let y = layer.forward(&[a, b])[0];
            assert!((y - target(a, b)).abs() < 0.05, "y({a},{b}) = {y}");
        }
    }
}
