//! `nnet` — a minimal, dependency-free neural-network library for the
//! SegScope reproduction's classifiers.
//!
//! The paper trains two models on side-channel traces:
//!
//! * a **32-unit LSTM** sequence classifier for website fingerprinting
//!   (paper Table IV) — provided here as [`SeqClassifier`];
//! * a **BiLSTM** per-timestep segmenter that recovers DNN layer types
//!   from SegCnt traces (paper Table V) — provided as [`SeqTagger`].
//!
//! Rather than depending on a deep-learning framework, this crate
//! implements exactly what those models need: a row-major [`Mat`],
//! [`Dense`] and [`Lstm`]/[`BiLstm`] layers with full BPTT, softmax
//! cross-entropy, the [`Adam`] optimizer, dataset helpers
//! ([`average_pool`], [`k_fold_indices`], …), and the paper's metrics
//! (top-k accuracy, [`levenshtein_accuracy`] (LDA), [`segment_accuracy`]
//! (SA)). Gradients are verified against finite differences in the test
//! suite.
//!
//! # Example
//!
//! ```
//! use nnet::{AdamConfig, SeqClassifier, SeqExample};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
//! let mut model = SeqClassifier::new(1, 8, 2, &mut rng, AdamConfig::default());
//! let examples = vec![
//!     SeqExample { xs: vec![vec![0.0]; 5], label: 0 },
//!     SeqExample { xs: vec![vec![1.0]; 5], label: 1 },
//! ];
//! for _ in 0..20 { model.train_epoch(&examples, 2); }
//! assert_eq!(model.predict(&examples[1].xs), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classifier;
mod data;
mod dense;
mod loss;
mod lstm;
mod mat;
mod metrics;
mod optim;
pub mod reference;

pub use classifier::{SeqClassifier, SeqExample, SeqTagger, TaggedExample};
pub use data::{average_pool, k_fold_indices, standardize, to_features, train_test_split};
pub use dense::Dense;
pub use loss::{argmax, softmax, softmax_cross_entropy, softmax_cross_entropy_into, top_k};
pub use lstm::{BiLstm, BiLstmTrace, Lstm, LstmTrace};
pub use mat::Mat;
pub use metrics::{
    collapse_runs, levenshtein, levenshtein_accuracy, per_class_segment_accuracy, segment_accuracy,
    ConfusionMatrix,
};
pub use optim::{Adam, AdamConfig};
