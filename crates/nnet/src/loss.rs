//! Softmax cross-entropy.

/// Numerically-stable softmax.
///
/// ```
/// let p = nnet::softmax(&[1.0, 1.0]);
/// assert!((p[0] - 0.5).abs() < 1e-6);
/// ```
#[must_use]
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Cross-entropy loss of a softmax distribution against a class index,
/// together with the gradient w.r.t. the logits (`p - onehot`).
///
/// # Panics
///
/// Panics if `target` is out of range.
#[must_use]
pub fn softmax_cross_entropy(logits: &[f32], target: usize) -> (f32, Vec<f32>) {
    let mut grad = vec![0.0f32; logits.len()];
    let loss = softmax_cross_entropy_into(logits, target, &mut grad);
    (loss, grad)
}

/// Allocation-free [`softmax_cross_entropy`]: writes the logit gradient
/// into a caller-provided buffer and returns the loss.
///
/// # Panics
///
/// Panics if `target` is out of range or `grad` has the wrong length.
pub fn softmax_cross_entropy_into(logits: &[f32], target: usize, grad: &mut [f32]) -> f32 {
    assert!(target < logits.len(), "target class out of range");
    assert_eq!(grad.len(), logits.len(), "grad buffer length");
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (g, &l) in grad.iter_mut().zip(logits) {
        let e = (l - max).exp();
        *g = e;
        sum += e;
    }
    for g in grad.iter_mut() {
        *g /= sum;
    }
    let loss = -(grad[target].max(1e-12)).ln();
    grad[target] -= 1.0;
    loss
}

/// Index of the maximum logit (prediction).
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN logits"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

/// Indices of the `k` largest logits, best first.
#[must_use]
pub fn top_k(xs: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[b].partial_cmp(&xs[a]).expect("no NaN logits"));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0, 1000.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-6));
    }

    #[test]
    fn cross_entropy_gradient_shape() {
        let (loss, grad) = softmax_cross_entropy(&[2.0, 0.0, -1.0], 0);
        assert!(loss > 0.0);
        assert!(
            (grad.iter().sum::<f32>()).abs() < 1e-6,
            "softmax grad sums to 0"
        );
        assert!(grad[0] < 0.0, "target gradient pushes its logit up");
        assert!(grad[1] > 0.0 && grad[2] > 0.0);
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let (loss, _) = softmax_cross_entropy(&[100.0, 0.0], 0);
        assert!(loss < 1e-6);
    }

    #[test]
    fn argmax_and_top_k() {
        let xs = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(argmax(&xs), 1);
        assert_eq!(top_k(&xs, 3), vec![1, 3, 2]);
        assert_eq!(top_k(&xs, 10).len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        let _ = softmax_cross_entropy(&[0.0, 1.0], 5);
    }
}
