//! LSTM and bidirectional LSTM layers with truncated-free full BPTT.

use crate::mat::Mat;
use crate::optim::{Adam, AdamConfig};
use rand::Rng;
use serde::{Deserialize, Serialize};

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// A single-layer LSTM.
///
/// Gate layout in the stacked weight matrix is `[i, f, g, o]` over the
/// concatenated input `[x, h_prev, 1]` (the trailing 1 folds the bias in).
/// The forget-gate bias is initialized to +1, the standard trick for
/// stable early training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lstm {
    input: usize,
    hidden: usize,
    /// `4h × (input + hidden + 1)` stacked gate weights.
    w: Mat,
    grad: Mat,
    adam: Adam,
}

/// Cached activations of one forward pass (needed by BPTT).
///
/// All per-timestep state lives in flat stride-indexed buffers, so a
/// forward pass performs a fixed number of allocations regardless of
/// sequence length.
#[derive(Debug, Clone, Default)]
pub struct LstmTrace {
    xs: Vec<f32>,    // T × input
    hs: Vec<f32>,    // (T+1) × hidden: h_0 .. h_T (h_0 = zeros)
    cs: Vec<f32>,    // (T+1) × hidden: c_0 .. c_T
    gates: Vec<f32>, // T × 4·hidden, per step [i, f, g, o] post-nonlinearity
    input: usize,
    hidden: usize,
    steps: usize,
}

impl LstmTrace {
    /// Hidden state after step `t` (0-based step index).
    ///
    /// # Panics
    ///
    /// Panics when `t` is out of range.
    #[must_use]
    pub fn hidden(&self, t: usize) -> &[f32] {
        assert!(t < self.steps, "trace step out of range");
        &self.hs[(t + 1) * self.hidden..(t + 2) * self.hidden]
    }

    /// Number of timesteps traced.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps == 0
    }
}

/// Where [`Lstm::backward_impl`] reads each timestep's output gradient.
enum DhSrc<'a> {
    /// One gradient vector per timestep.
    PerStep(&'a [Vec<f32>]),
    /// Flat `T × hidden` buffer.
    Flat(&'a [f32]),
    /// Gradient only at the final timestep (many-to-one heads).
    LastOnly(&'a [f32]),
}

impl Lstm {
    /// Creates an LSTM with Xavier-initialized weights.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        input: usize,
        hidden: usize,
        rng: &mut R,
        adam: AdamConfig,
    ) -> Self {
        let cols = input + hidden + 1;
        let mut w = Mat::xavier(4 * hidden, cols, rng);
        // Forget-gate bias = +1.
        for r in hidden..2 * hidden {
            *w.get_mut(r, cols - 1) = 1.0;
        }
        let len = w.as_slice().len();
        Lstm {
            input,
            hidden,
            w,
            grad: Mat::zeros(4 * hidden, cols),
            adam: Adam::new(len, adam),
        }
    }

    /// Input dimensionality.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Hidden dimensionality.
    #[must_use]
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// The stacked `4h × (input + hidden + 1)` gate weight matrix
    /// (`[i, f, g, o]` row blocks, bias folded into the last column).
    ///
    /// Read-only access for inference engines that replicate the forward
    /// pass outside this struct (e.g. the streaming server in
    /// `crates/serve`, which must reproduce [`Lstm::forward`]
    /// bit-for-bit).
    #[must_use]
    pub fn weights(&self) -> &Mat {
        &self.w
    }

    /// Runs the layer over `xs`, returning the activation trace.
    ///
    /// # Panics
    ///
    /// Panics if any input vector has the wrong dimensionality.
    #[must_use]
    pub fn forward(&self, xs: &[Vec<f32>]) -> LstmTrace {
        self.forward_iter(xs.iter().map(Vec::as_slice))
    }

    /// Forward pass over an iterator of timestep slices (lets the reverse
    /// direction of [`BiLstm`] run without materializing a reversed copy).
    fn forward_iter<'a, I>(&self, xs: I) -> LstmTrace
    where
        I: ExactSizeIterator<Item = &'a [f32]>,
    {
        let h = self.hidden;
        let n = self.input;
        let steps = xs.len();
        let mut trace = LstmTrace {
            xs: Vec::with_capacity(steps * n),
            hs: vec![0.0f32; (steps + 1) * h],
            cs: vec![0.0f32; (steps + 1) * h],
            gates: vec![0.0f32; steps * 4 * h],
            input: n,
            hidden: h,
            steps,
        };
        // Step-to-step scratch, allocated once for the whole sequence.
        let mut concat = vec![0.0f32; n + h];
        let mut pre = vec![0.0f32; 4 * h];
        for (t, x) in xs.enumerate() {
            assert_eq!(x.len(), n, "lstm input dimension");
            trace.xs.extend_from_slice(x);
            concat[..n].copy_from_slice(x);
            concat[n..].copy_from_slice(&trace.hs[t * h..(t + 1) * h]);
            pre.fill(0.0);
            self.w.matvec_bias_acc(&concat, &mut pre);
            // One fused pass computes all four gates, the new cell state
            // and the new hidden state, writing straight into the flat
            // trace buffers.
            let gates = &mut trace.gates[t * 4 * h..(t + 1) * 4 * h];
            let (cs_head, cs_tail) = trace.cs.split_at_mut((t + 1) * h);
            let c_prev = &cs_head[t * h..];
            let c_new = &mut cs_tail[..h];
            let h_new = &mut trace.hs[(t + 1) * h..(t + 2) * h];
            for j in 0..h {
                let i_g = sigmoid(pre[j]);
                let f_g = sigmoid(pre[h + j]);
                let g_g = pre[2 * h + j].tanh();
                let o_g = sigmoid(pre[3 * h + j]);
                gates[j] = i_g;
                gates[h + j] = f_g;
                gates[2 * h + j] = g_g;
                gates[3 * h + j] = o_g;
                let cv = f_g * c_prev[j] + i_g * g_g;
                c_new[j] = cv;
                h_new[j] = o_g * cv.tanh();
            }
        }
        trace
    }

    /// Backpropagates through the traced sequence.
    ///
    /// `dh` holds the loss gradient w.r.t. each timestep's hidden output
    /// (zero vectors for unused steps). Gradients accumulate into the
    /// layer's internal buffer until [`Lstm::apply_grads`].
    ///
    /// # Panics
    ///
    /// Panics if `dh` does not match the trace length or hidden size.
    pub fn backward(&mut self, trace: &LstmTrace, dh: &[Vec<f32>]) {
        assert_eq!(dh.len(), trace.len(), "dh length");
        self.backward_impl(trace, DhSrc::PerStep(dh));
    }

    /// Backpropagates a gradient applied only at the final hidden state —
    /// the many-to-one classifier case — without materializing per-step
    /// zero gradient vectors.
    ///
    /// # Panics
    ///
    /// Panics if `dh_last` does not match the hidden size.
    pub fn backward_last(&mut self, trace: &LstmTrace, dh_last: &[f32]) {
        assert_eq!(dh_last.len(), self.hidden, "dh dimension");
        self.backward_impl(trace, DhSrc::LastOnly(dh_last));
    }

    /// Backpropagates per-timestep gradients given as one flat
    /// `trace.len() × hidden` buffer.
    ///
    /// # Panics
    ///
    /// Panics if `dh` does not match the trace length times hidden size.
    pub fn backward_flat(&mut self, trace: &LstmTrace, dh: &[f32]) {
        assert_eq!(dh.len(), trace.len() * self.hidden, "dh length");
        self.backward_impl(trace, DhSrc::Flat(dh));
    }

    fn backward_impl(&mut self, trace: &LstmTrace, src: DhSrc<'_>) {
        let h = self.hidden;
        let n = self.input;
        assert_eq!(trace.input, n, "trace from a different layer shape");
        assert_eq!(trace.hidden, h, "trace from a different layer shape");
        let steps = trace.len();
        // Scratch allocated once for the whole sequence.
        let mut dh_next = vec![0.0f32; h];
        let mut dc_next = vec![0.0f32; h];
        let mut concat = vec![0.0f32; n + h];
        let mut dpre = vec![0.0f32; 4 * h];
        let mut dconcat = vec![0.0f32; n + h];
        for t in (0..steps).rev() {
            let dh_t: Option<&[f32]> = match src {
                DhSrc::PerStep(v) => {
                    assert_eq!(v[t].len(), h, "dh dimension");
                    Some(&v[t])
                }
                DhSrc::Flat(d) => Some(&d[t * h..(t + 1) * h]),
                DhSrc::LastOnly(d) => (t + 1 == steps).then_some(d),
            };
            let c = &trace.cs[(t + 1) * h..(t + 2) * h];
            let c_prev = &trace.cs[t * h..(t + 1) * h];
            let gates = &trace.gates[t * 4 * h..(t + 1) * 4 * h];
            for j in 0..h {
                let dh_total = dh_t.map_or(0.0, |d| d[j]) + dh_next[j];
                let i_g = gates[j];
                let f_g = gates[h + j];
                let g_g = gates[2 * h + j];
                let o_g = gates[3 * h + j];
                let tc = c[j].tanh();
                let dc = dh_total * o_g * (1.0 - tc * tc) + dc_next[j];
                // Gate pre-activation gradients.
                dpre[j] = dc * g_g * i_g * (1.0 - i_g);
                dpre[h + j] = dc * c_prev[j] * f_g * (1.0 - f_g);
                dpre[2 * h + j] = dc * i_g * (1.0 - g_g * g_g);
                dpre[3 * h + j] = dh_total * tc * o_g * (1.0 - o_g);
                dc_next[j] = dc * f_g;
            }
            concat[..n].copy_from_slice(&trace.xs[t * n..(t + 1) * n]);
            concat[n..].copy_from_slice(&trace.hs[t * h..(t + 1) * h]);
            self.grad.outer_acc_bias(&dpre, &concat, 1.0);
            dconcat.fill(0.0);
            self.w.matvec_t_narrow(&dpre, &mut dconcat);
            dh_next.copy_from_slice(&dconcat[n..]);
        }
    }

    /// Applies accumulated gradients (scaled by `1/batch`) with Adam and
    /// clears the buffer.
    pub fn apply_grads(&mut self, batch: usize) {
        let scale = 1.0 / batch.max(1) as f32;
        for g in self.grad.as_mut_slice() {
            *g *= scale;
        }
        let grads = std::mem::replace(&mut self.grad, Mat::zeros(0, 0));
        let mut flat = grads;
        self.adam.step(self.w.as_mut_slice(), flat.as_mut_slice());
        flat.fill_zero();
        self.grad = flat;
    }
}

/// A bidirectional LSTM: forward and reverse passes concatenated per
/// timestep (output dimension `2 × hidden`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiLstm {
    fwd: Lstm,
    bwd: Lstm,
}

/// Cached activations of a bidirectional pass.
#[derive(Debug, Clone, Default)]
pub struct BiLstmTrace {
    fwd: LstmTrace,
    bwd: LstmTrace,
    len: usize,
}

impl BiLstmTrace {
    /// Concatenated `[h_fwd(t), h_bwd(t)]` output at timestep `t`.
    #[must_use]
    pub fn output(&self, t: usize) -> Vec<f32> {
        let mut out = self.fwd.hidden(t).to_vec();
        out.extend_from_slice(self.bwd.hidden(self.len - 1 - t));
        out
    }

    /// Writes the concatenated output at timestep `t` into `out`
    /// (allocation-free variant of [`BiLstmTrace::output`]).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` is not `2 × hidden` or `t` is out of range.
    pub fn output_into(&self, t: usize, out: &mut [f32]) {
        let f = self.fwd.hidden(t);
        let b = self.bwd.hidden(self.len - 1 - t);
        out[..f.len()].copy_from_slice(f);
        out[f.len()..].copy_from_slice(b);
    }

    /// Number of timesteps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl BiLstm {
    /// Creates a bidirectional LSTM.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        input: usize,
        hidden: usize,
        rng: &mut R,
        adam: AdamConfig,
    ) -> Self {
        BiLstm {
            fwd: Lstm::new(input, hidden, rng, adam),
            bwd: Lstm::new(input, hidden, rng, adam),
        }
    }

    /// Output dimensionality (`2 × hidden`).
    #[must_use]
    pub fn output_dim(&self) -> usize {
        2 * self.fwd.hidden_dim()
    }

    /// Runs both directions over `xs`.
    #[must_use]
    pub fn forward(&self, xs: &[Vec<f32>]) -> BiLstmTrace {
        BiLstmTrace {
            fwd: self.fwd.forward_iter(xs.iter().map(Vec::as_slice)),
            bwd: self.bwd.forward_iter(xs.iter().rev().map(Vec::as_slice)),
            len: xs.len(),
        }
    }

    /// Backpropagates per-timestep output gradients (`d_out[t]` has
    /// dimension `2 × hidden`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn backward(&mut self, trace: &BiLstmTrace, d_out: &[Vec<f32>]) {
        let h = self.fwd.hidden_dim();
        let steps = trace.len();
        assert_eq!(d_out.len(), steps, "d_out length");
        let mut dh_fwd = vec![0.0f32; steps * h];
        let mut dh_bwd = vec![0.0f32; steps * h];
        for (t, d) in d_out.iter().enumerate() {
            assert_eq!(d.len(), 2 * h, "d_out dimension");
            dh_fwd[t * h..(t + 1) * h].copy_from_slice(&d[..h]);
            let rt = steps - 1 - t;
            dh_bwd[rt * h..(rt + 1) * h].copy_from_slice(&d[h..]);
        }
        self.fwd.backward_flat(&trace.fwd, &dh_fwd);
        self.bwd.backward_flat(&trace.bwd, &dh_bwd);
    }

    /// Like [`BiLstm::backward`] with the output gradients in one flat
    /// `trace.len() × 2·hidden` buffer.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn backward_flat(&mut self, trace: &BiLstmTrace, d_out: &[f32]) {
        let h = self.fwd.hidden_dim();
        let steps = trace.len();
        assert_eq!(d_out.len(), steps * 2 * h, "d_out length");
        let mut dh_fwd = vec![0.0f32; steps * h];
        let mut dh_bwd = vec![0.0f32; steps * h];
        for (t, d) in d_out.chunks_exact(2 * h).enumerate() {
            dh_fwd[t * h..(t + 1) * h].copy_from_slice(&d[..h]);
            let rt = steps - 1 - t;
            dh_bwd[rt * h..(rt + 1) * h].copy_from_slice(&d[h..]);
        }
        self.fwd.backward_flat(&trace.fwd, &dh_fwd);
        self.bwd.backward_flat(&trace.bwd, &dh_bwd);
    }

    /// Applies accumulated gradients in both directions.
    pub fn apply_grads(&mut self, batch: usize) {
        self.fwd.apply_grads(batch);
        self.bwd.apply_grads(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let lstm = Lstm::new(3, 5, &mut rng, AdamConfig::default());
        let xs = vec![vec![0.1, 0.2, 0.3]; 7];
        let trace = lstm.forward(&xs);
        assert_eq!(trace.len(), 7);
        assert_eq!(trace.hidden(6).len(), 5);
        assert_eq!(lstm.input_dim(), 3);
        assert_eq!(lstm.hidden_dim(), 5);
    }

    #[test]
    fn hidden_states_are_bounded() {
        let mut rng = SmallRng::seed_from_u64(2);
        let lstm = Lstm::new(2, 4, &mut rng, AdamConfig::default());
        let xs: Vec<Vec<f32>> = (0..50).map(|i| vec![(i as f32).sin(), 1.0]).collect();
        let trace = lstm.forward(&xs);
        for t in 0..trace.len() {
            for &v in trace.hidden(t) {
                assert!(v.abs() <= 1.0, "lstm hidden out of tanh range: {v}");
            }
        }
    }

    /// Finite-difference check of the LSTM gradient on a tiny network.
    #[test]
    fn bptt_matches_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut lstm = Lstm::new(2, 3, &mut rng, AdamConfig::default());
        let xs = vec![vec![0.5, -0.3], vec![0.1, 0.9], vec![-0.7, 0.2]];
        // Loss = sum of final hidden state.
        let loss = |l: &Lstm| -> f32 { l.forward(&xs).hidden(2).iter().sum() };
        let trace = lstm.forward(&xs);
        let mut dh = vec![vec![0.0; 3]; 3];
        dh[2] = vec![1.0; 3];
        lstm.backward(&trace, &dh);
        // Compare a few analytic gradient entries to finite differences.
        let eps = 1e-3f32;
        for idx in [0usize, 7, 20, 41] {
            let analytic = lstm.grad.as_slice()[idx];
            let mut perturbed = lstm.clone();
            perturbed.w.as_mut_slice()[idx] += eps;
            let up = loss(&perturbed);
            perturbed.w.as_mut_slice()[idx] -= 2.0 * eps;
            let down = loss(&perturbed);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2,
                "grad[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn bilstm_output_concatenates_directions() {
        let mut rng = SmallRng::seed_from_u64(4);
        let bi = BiLstm::new(2, 3, &mut rng, AdamConfig::default());
        let xs = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let trace = bi.forward(&xs);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.output(0).len(), 6);
        assert_eq!(bi.output_dim(), 6);
        // The backward direction at t=0 saw the whole reversed sequence.
        let full_bwd = bi
            .bwd
            .forward(&[xs[2].clone(), xs[1].clone(), xs[0].clone()]);
        assert_eq!(&trace.output(0)[3..], full_bwd.hidden(2));
    }

    /// The optimized forward/backward must agree with the naive reference
    /// implementation (identical weights, same inputs) to float tolerance.
    #[test]
    fn optimized_path_matches_naive_reference() {
        use crate::reference::NaiveLstm;
        let mut rng_a = SmallRng::seed_from_u64(9);
        let mut rng_b = SmallRng::seed_from_u64(9);
        let mut fast = Lstm::new(3, 6, &mut rng_a, AdamConfig::default());
        let mut naive = NaiveLstm::new(3, 6, &mut rng_b, AdamConfig::default());
        let xs: Vec<Vec<f32>> = (0..12)
            .map(|t| (0..3).map(|k| ((t * 3 + k) as f32 * 0.37).sin()).collect())
            .collect();
        let ft = fast.forward(&xs);
        let nt = naive.forward(&xs);
        for t in 0..xs.len() {
            for (a, b) in ft.hidden(t).iter().zip(nt.hidden(t)) {
                assert!((a - b).abs() < 1e-5, "h[{t}]: {a} vs {b}");
            }
        }
        let mut dh = vec![vec![0.0f32; 6]; xs.len()];
        dh[xs.len() - 1] = vec![1.0; 6];
        fast.backward(&ft, &dh);
        naive.backward(&nt, &dh);
        for (i, (a, b)) in fast
            .grad
            .as_slice()
            .iter()
            .zip(naive.grad_slice())
            .enumerate()
        {
            assert!((a - b).abs() < 1e-4, "grad[{i}]: {a} vs {b}");
        }
        // backward_last is equivalent to a per-step dh that is zero
        // everywhere but the final step.
        let mut fast2 = {
            let mut rng = SmallRng::seed_from_u64(9);
            Lstm::new(3, 6, &mut rng, AdamConfig::default())
        };
        let ft2 = fast2.forward(&xs);
        fast2.backward_last(&ft2, &[1.0; 6]);
        assert_eq!(fast2.grad.as_slice(), fast.grad.as_slice());
    }

    #[test]
    fn training_reduces_loss_on_a_toy_task() {
        // Learn to output +1 on the last step for ascending sequences and
        // -1 for descending ones (squared loss on h_T[0]).
        let mut rng = SmallRng::seed_from_u64(5);
        let mut lstm = Lstm::new(
            1,
            4,
            &mut rng,
            AdamConfig {
                lr: 0.05,
                ..AdamConfig::default()
            },
        );
        let make = |up: bool| -> Vec<Vec<f32>> {
            (0..6)
                .map(|i| vec![if up { i as f32 } else { 5.0 - i as f32 } / 5.0])
                .collect()
        };
        let loss_of = |l: &Lstm| {
            let mut total = 0.0f32;
            for (xs, target) in [(make(true), 1.0f32), (make(false), -1.0f32)] {
                let out = l.forward(&xs).hidden(5)[0];
                total += (out - target) * (out - target);
            }
            total
        };
        let initial = loss_of(&lstm);
        for _ in 0..150 {
            for (xs, target) in [(make(true), 1.0f32), (make(false), -1.0f32)] {
                let trace = lstm.forward(&xs);
                let out = trace.hidden(5)[0];
                let mut dh = vec![vec![0.0; 4]; 6];
                dh[5][0] = 2.0 * (out - target);
                lstm.backward(&trace, &dh);
            }
            lstm.apply_grads(2);
        }
        let trained = loss_of(&lstm);
        assert!(
            trained < initial * 0.2,
            "loss did not drop: {initial} -> {trained}"
        );
    }
}
