//! LSTM and bidirectional LSTM layers with truncated-free full BPTT.

use crate::mat::Mat;
use crate::optim::{Adam, AdamConfig};
use rand::Rng;
use serde::{Deserialize, Serialize};

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// A single-layer LSTM.
///
/// Gate layout in the stacked weight matrix is `[i, f, g, o]` over the
/// concatenated input `[x, h_prev, 1]` (the trailing 1 folds the bias in).
/// The forget-gate bias is initialized to +1, the standard trick for
/// stable early training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lstm {
    input: usize,
    hidden: usize,
    /// `4h × (input + hidden + 1)` stacked gate weights.
    w: Mat,
    grad: Mat,
    adam: Adam,
}

/// Cached activations of one forward pass (needed by BPTT).
#[derive(Debug, Clone, Default)]
pub struct LstmTrace {
    xs: Vec<Vec<f32>>,
    hs: Vec<Vec<f32>>,    // h_0 .. h_T (h_0 = zeros)
    cs: Vec<Vec<f32>>,    // c_0 .. c_T
    gates: Vec<Vec<f32>>, // per step: [i, f, g, o] post-nonlinearity
}

impl LstmTrace {
    /// Hidden state after step `t` (0-based step index).
    #[must_use]
    pub fn hidden(&self, t: usize) -> &[f32] {
        &self.hs[t + 1]
    }

    /// Number of timesteps traced.
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

impl Lstm {
    /// Creates an LSTM with Xavier-initialized weights.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        input: usize,
        hidden: usize,
        rng: &mut R,
        adam: AdamConfig,
    ) -> Self {
        let cols = input + hidden + 1;
        let mut w = Mat::xavier(4 * hidden, cols, rng);
        // Forget-gate bias = +1.
        for r in hidden..2 * hidden {
            *w.get_mut(r, cols - 1) = 1.0;
        }
        let len = w.as_slice().len();
        Lstm {
            input,
            hidden,
            w,
            grad: Mat::zeros(4 * hidden, cols),
            adam: Adam::new(len, adam),
        }
    }

    /// Input dimensionality.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Hidden dimensionality.
    #[must_use]
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Runs the layer over `xs`, returning the activation trace.
    ///
    /// # Panics
    ///
    /// Panics if any input vector has the wrong dimensionality.
    #[must_use]
    pub fn forward(&self, xs: &[Vec<f32>]) -> LstmTrace {
        let h = self.hidden;
        let mut trace = LstmTrace {
            xs: xs.to_vec(),
            hs: vec![vec![0.0; h]],
            cs: vec![vec![0.0; h]],
            gates: Vec::with_capacity(xs.len()),
        };
        let mut concat = vec![0.0f32; self.input + h + 1];
        for x in xs {
            assert_eq!(x.len(), self.input, "lstm input dimension");
            let h_prev = trace.hs.last().expect("h_0 exists").clone();
            let c_prev = trace.cs.last().expect("c_0 exists").clone();
            concat[..self.input].copy_from_slice(x);
            concat[self.input..self.input + h].copy_from_slice(&h_prev);
            concat[self.input + h] = 1.0;
            let mut pre = vec![0.0f32; 4 * h];
            self.w.matvec_acc(&concat, &mut pre);
            let mut gates = vec![0.0f32; 4 * h];
            let mut c = vec![0.0f32; h];
            let mut hv = vec![0.0f32; h];
            for j in 0..h {
                let i_g = sigmoid(pre[j]);
                let f_g = sigmoid(pre[h + j]);
                let g_g = pre[2 * h + j].tanh();
                let o_g = sigmoid(pre[3 * h + j]);
                gates[j] = i_g;
                gates[h + j] = f_g;
                gates[2 * h + j] = g_g;
                gates[3 * h + j] = o_g;
                c[j] = f_g * c_prev[j] + i_g * g_g;
                hv[j] = o_g * c[j].tanh();
            }
            trace.gates.push(gates);
            trace.cs.push(c);
            trace.hs.push(hv);
        }
        trace
    }

    /// Backpropagates through the traced sequence.
    ///
    /// `dh` holds the loss gradient w.r.t. each timestep's hidden output
    /// (zero vectors for unused steps). Gradients accumulate into the
    /// layer's internal buffer until [`Lstm::apply_grads`].
    ///
    /// # Panics
    ///
    /// Panics if `dh` does not match the trace length or hidden size.
    pub fn backward(&mut self, trace: &LstmTrace, dh: &[Vec<f32>]) {
        let h = self.hidden;
        let steps = trace.len();
        assert_eq!(dh.len(), steps, "dh length");
        let mut dh_next = vec![0.0f32; h];
        let mut dc_next = vec![0.0f32; h];
        let mut concat = vec![0.0f32; self.input + h + 1];
        for t in (0..steps).rev() {
            assert_eq!(dh[t].len(), h, "dh dimension");
            let c = &trace.cs[t + 1];
            let c_prev = &trace.cs[t];
            let gates = &trace.gates[t];
            let mut dpre = vec![0.0f32; 4 * h];
            for j in 0..h {
                let dh_total = dh[t][j] + dh_next[j];
                let i_g = gates[j];
                let f_g = gates[h + j];
                let g_g = gates[2 * h + j];
                let o_g = gates[3 * h + j];
                let tc = c[j].tanh();
                let dc = dh_total * o_g * (1.0 - tc * tc) + dc_next[j];
                // Gate pre-activation gradients.
                dpre[j] = dc * g_g * i_g * (1.0 - i_g);
                dpre[h + j] = dc * c_prev[j] * f_g * (1.0 - f_g);
                dpre[2 * h + j] = dc * i_g * (1.0 - g_g * g_g);
                dpre[3 * h + j] = dh_total * tc * o_g * (1.0 - o_g);
                dc_next[j] = dc * f_g;
            }
            concat[..self.input].copy_from_slice(&trace.xs[t]);
            concat[self.input..self.input + h].copy_from_slice(&trace.hs[t]);
            concat[self.input + h] = 1.0;
            self.grad.outer_acc(&dpre, &concat, 1.0);
            let mut dconcat = vec![0.0f32; self.input + h + 1];
            self.w.matvec_t_acc(&dpre, &mut dconcat);
            dh_next.copy_from_slice(&dconcat[self.input..self.input + h]);
        }
    }

    /// Applies accumulated gradients (scaled by `1/batch`) with Adam and
    /// clears the buffer.
    pub fn apply_grads(&mut self, batch: usize) {
        let scale = 1.0 / batch.max(1) as f32;
        for g in self.grad.as_mut_slice() {
            *g *= scale;
        }
        let grads = std::mem::replace(&mut self.grad, Mat::zeros(0, 0));
        let mut flat = grads;
        self.adam.step(self.w.as_mut_slice(), flat.as_mut_slice());
        flat.fill_zero();
        self.grad = flat;
    }
}

/// A bidirectional LSTM: forward and reverse passes concatenated per
/// timestep (output dimension `2 × hidden`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiLstm {
    fwd: Lstm,
    bwd: Lstm,
}

/// Cached activations of a bidirectional pass.
#[derive(Debug, Clone, Default)]
pub struct BiLstmTrace {
    fwd: LstmTrace,
    bwd: LstmTrace,
    len: usize,
}

impl BiLstmTrace {
    /// Concatenated `[h_fwd(t), h_bwd(t)]` output at timestep `t`.
    #[must_use]
    pub fn output(&self, t: usize) -> Vec<f32> {
        let mut out = self.fwd.hidden(t).to_vec();
        out.extend_from_slice(self.bwd.hidden(self.len - 1 - t));
        out
    }

    /// Number of timesteps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl BiLstm {
    /// Creates a bidirectional LSTM.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        input: usize,
        hidden: usize,
        rng: &mut R,
        adam: AdamConfig,
    ) -> Self {
        BiLstm {
            fwd: Lstm::new(input, hidden, rng, adam),
            bwd: Lstm::new(input, hidden, rng, adam),
        }
    }

    /// Output dimensionality (`2 × hidden`).
    #[must_use]
    pub fn output_dim(&self) -> usize {
        2 * self.fwd.hidden_dim()
    }

    /// Runs both directions over `xs`.
    #[must_use]
    pub fn forward(&self, xs: &[Vec<f32>]) -> BiLstmTrace {
        let rev: Vec<Vec<f32>> = xs.iter().rev().cloned().collect();
        BiLstmTrace {
            fwd: self.fwd.forward(xs),
            bwd: self.bwd.forward(&rev),
            len: xs.len(),
        }
    }

    /// Backpropagates per-timestep output gradients (`d_out[t]` has
    /// dimension `2 × hidden`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn backward(&mut self, trace: &BiLstmTrace, d_out: &[Vec<f32>]) {
        let h = self.fwd.hidden_dim();
        assert_eq!(d_out.len(), trace.len(), "d_out length");
        let dh_fwd: Vec<Vec<f32>> = d_out.iter().map(|d| d[..h].to_vec()).collect();
        let dh_bwd: Vec<Vec<f32>> = d_out.iter().rev().map(|d| d[h..].to_vec()).collect();
        self.fwd.backward(&trace.fwd, &dh_fwd);
        self.bwd.backward(&trace.bwd, &dh_bwd);
    }

    /// Applies accumulated gradients in both directions.
    pub fn apply_grads(&mut self, batch: usize) {
        self.fwd.apply_grads(batch);
        self.bwd.apply_grads(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let lstm = Lstm::new(3, 5, &mut rng, AdamConfig::default());
        let xs = vec![vec![0.1, 0.2, 0.3]; 7];
        let trace = lstm.forward(&xs);
        assert_eq!(trace.len(), 7);
        assert_eq!(trace.hidden(6).len(), 5);
        assert_eq!(lstm.input_dim(), 3);
        assert_eq!(lstm.hidden_dim(), 5);
    }

    #[test]
    fn hidden_states_are_bounded() {
        let mut rng = SmallRng::seed_from_u64(2);
        let lstm = Lstm::new(2, 4, &mut rng, AdamConfig::default());
        let xs: Vec<Vec<f32>> = (0..50).map(|i| vec![(i as f32).sin(), 1.0]).collect();
        let trace = lstm.forward(&xs);
        for t in 0..trace.len() {
            for &v in trace.hidden(t) {
                assert!(v.abs() <= 1.0, "lstm hidden out of tanh range: {v}");
            }
        }
    }

    /// Finite-difference check of the LSTM gradient on a tiny network.
    #[test]
    fn bptt_matches_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut lstm = Lstm::new(2, 3, &mut rng, AdamConfig::default());
        let xs = vec![vec![0.5, -0.3], vec![0.1, 0.9], vec![-0.7, 0.2]];
        // Loss = sum of final hidden state.
        let loss = |l: &Lstm| -> f32 { l.forward(&xs).hidden(2).iter().sum() };
        let trace = lstm.forward(&xs);
        let mut dh = vec![vec![0.0; 3]; 3];
        dh[2] = vec![1.0; 3];
        lstm.backward(&trace, &dh);
        // Compare a few analytic gradient entries to finite differences.
        let eps = 1e-3f32;
        for idx in [0usize, 7, 20, 41] {
            let analytic = lstm.grad.as_slice()[idx];
            let mut perturbed = lstm.clone();
            perturbed.w.as_mut_slice()[idx] += eps;
            let up = loss(&perturbed);
            perturbed.w.as_mut_slice()[idx] -= 2.0 * eps;
            let down = loss(&perturbed);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2,
                "grad[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn bilstm_output_concatenates_directions() {
        let mut rng = SmallRng::seed_from_u64(4);
        let bi = BiLstm::new(2, 3, &mut rng, AdamConfig::default());
        let xs = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let trace = bi.forward(&xs);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.output(0).len(), 6);
        assert_eq!(bi.output_dim(), 6);
        // The backward direction at t=0 saw the whole reversed sequence.
        let full_bwd = bi
            .bwd
            .forward(&[xs[2].clone(), xs[1].clone(), xs[0].clone()]);
        assert_eq!(&trace.output(0)[3..], full_bwd.hidden(2));
    }

    #[test]
    fn training_reduces_loss_on_a_toy_task() {
        // Learn to output +1 on the last step for ascending sequences and
        // -1 for descending ones (squared loss on h_T[0]).
        let mut rng = SmallRng::seed_from_u64(5);
        let mut lstm = Lstm::new(
            1,
            4,
            &mut rng,
            AdamConfig {
                lr: 0.05,
                ..AdamConfig::default()
            },
        );
        let make = |up: bool| -> Vec<Vec<f32>> {
            (0..6)
                .map(|i| vec![if up { i as f32 } else { 5.0 - i as f32 } / 5.0])
                .collect()
        };
        let loss_of = |l: &Lstm| {
            let mut total = 0.0f32;
            for (xs, target) in [(make(true), 1.0f32), (make(false), -1.0f32)] {
                let out = l.forward(&xs).hidden(5)[0];
                total += (out - target) * (out - target);
            }
            total
        };
        let initial = loss_of(&lstm);
        for _ in 0..150 {
            for (xs, target) in [(make(true), 1.0f32), (make(false), -1.0f32)] {
                let trace = lstm.forward(&xs);
                let out = trace.hidden(5)[0];
                let mut dh = vec![vec![0.0; 4]; 6];
                dh[5][0] = 2.0 * (out - target);
                lstm.backward(&trace, &dh);
            }
            lstm.apply_grads(2);
        }
        let trained = loss_of(&lstm);
        assert!(
            trained < initial * 0.2,
            "loss did not drop: {initial} -> {trained}"
        );
    }
}
