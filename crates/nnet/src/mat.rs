//! A minimal row-major matrix for the classifier networks.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major `f32` matrix.
///
/// Only the operations the LSTM/dense layers need are provided; this is a
/// training substrate, not a linear-algebra library.
///
/// ```
/// let m = nnet::Mat::zeros(2, 3);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m.get(1, 2), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// An all-zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier/Glorot-uniform initialization.
    #[must_use]
    pub fn xavier<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat data buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data buffer (used by the optimizer).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `out += self * x` where `x.len() == cols` and `out.len() == rows`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec_acc(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec input length");
        assert_eq!(out.len(), self.rows, "matvec output length");
        #[allow(clippy::needless_range_loop)] // rows of two different buffers
        for r in 0..self.rows {
            let row = self.row(r);
            let mut acc = 0.0f32;
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            out[r] += acc;
        }
    }

    /// `out += selfᵀ * g` where `g.len() == rows` and `out.len() == cols`
    /// (backpropagating through a matvec).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec_t_acc(&self, g: &[f32], out: &mut [f32]) {
        assert_eq!(g.len(), self.rows, "matvec_t input length");
        assert_eq!(out.len(), self.cols, "matvec_t output length");
        #[allow(clippy::needless_range_loop)] // rows of two different buffers
        for r in 0..self.rows {
            let gr = g[r];
            if gr == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, w) in out.iter_mut().zip(row) {
                *o += gr * w;
            }
        }
    }

    /// `self += scale * g ⊗ x` (rank-1 gradient accumulation).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn outer_acc(&mut self, g: &[f32], x: &[f32], scale: f32) {
        assert_eq!(g.len(), self.rows, "outer rows");
        assert_eq!(x.len(), self.cols, "outer cols");
        #[allow(clippy::needless_range_loop)] // rows of two different buffers
        for r in 0..self.rows {
            let gr = g[r] * scale;
            if gr == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (w, xi) in row.iter_mut().zip(x) {
                *w += gr * xi;
            }
        }
    }

    /// Sets every element to zero (gradient reset).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn matvec_and_transpose_agree() {
        let mut m = Mat::zeros(2, 3);
        // [[1,2,3],[4,5,6]]
        for (i, v) in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0].iter().enumerate() {
            m.as_mut_slice()[i] = *v;
        }
        let x = [1.0, 0.0, -1.0];
        let mut y = [0.0; 2];
        m.matvec_acc(&x, &mut y);
        assert_eq!(y, [-2.0, -2.0]);
        let g = [1.0, 1.0];
        let mut gx = [0.0; 3];
        m.matvec_t_acc(&g, &mut gx);
        assert_eq!(gx, [5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_accumulates() {
        let mut m = Mat::zeros(2, 2);
        m.outer_acc(&[1.0, 2.0], &[3.0, 4.0], 0.5);
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
        m.fill_zero();
        assert_eq!(m.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn xavier_is_bounded_and_seeded() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let ma = Mat::xavier(8, 8, &mut a);
        let mb = Mat::xavier(8, 8, &mut b);
        assert_eq!(ma, mb);
        let bound = (6.0f32 / 16.0).sqrt();
        assert!(ma.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    #[should_panic(expected = "matvec input length")]
    fn dimension_mismatch_panics() {
        let m = Mat::zeros(2, 3);
        let mut out = [0.0; 2];
        m.matvec_acc(&[1.0; 4], &mut out);
    }
}
