//! A minimal row-major matrix for the classifier networks.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major `f32` matrix.
///
/// Only the operations the LSTM/dense layers need are provided; this is a
/// training substrate, not a linear-algebra library.
///
/// ```
/// let m = nnet::Mat::zeros(2, 3);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m.get(1, 2), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// An all-zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier/Glorot-uniform initialization.
    #[must_use]
    pub fn xavier<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat data buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data buffer (used by the optimizer).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `out += self * x` where `x.len() == cols` and `out.len() == rows`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec_acc(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec input length");
        assert_eq!(out.len(), self.rows, "matvec output length");
        if self.cols == 0 {
            return;
        }
        for (o, row) in out.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            *o += dot(row, x);
        }
    }

    /// `out += self * [x, 1]` where the matrix's last column is a folded-in
    /// bias (`x.len() + 1 == cols`, `out.len() == rows`).
    ///
    /// Lets layers with a `[x, h, 1]` input convention skip materializing
    /// the extended vector.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec_bias_acc(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len() + 1, self.cols, "matvec_bias input length");
        assert_eq!(out.len(), self.rows, "matvec_bias output length");
        for (o, row) in out.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            let (w, bias) = row.split_at(self.cols - 1);
            *o += dot(w, x) + bias[0];
        }
    }

    /// `out += selfᵀ * g` where `g.len() == rows` and `out.len() == cols`
    /// (backpropagating through a matvec).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec_t_acc(&self, g: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), self.cols, "matvec_t output length");
        self.matvec_t_narrow(g, out);
    }

    /// Like [`Mat::matvec_t_acc`] but accumulates only into the first
    /// `out.len()` columns (`out.len() <= cols`) — the common case of
    /// backpropagating past a folded-in bias column.
    ///
    /// Rows are processed in blocks of four so each `out` element is
    /// loaded and stored once per block instead of once per row.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec_t_narrow(&self, g: &[f32], out: &mut [f32]) {
        assert_eq!(g.len(), self.rows, "matvec_t input length");
        assert!(out.len() <= self.cols, "matvec_t output length");
        let cols = self.cols;
        if cols == 0 {
            return;
        }
        let blocks = self.rows / 4;
        for b in 0..blocks {
            let r = b * 4;
            let (g0, g1, g2, g3) = (g[r], g[r + 1], g[r + 2], g[r + 3]);
            if g0 == 0.0 && g1 == 0.0 && g2 == 0.0 && g3 == 0.0 {
                continue;
            }
            let block = &self.data[r * cols..(r + 4) * cols];
            let (r0, rest) = block.split_at(cols);
            let (r1, rest) = rest.split_at(cols);
            let (r2, r3) = rest.split_at(cols);
            for ((((o, w0), w1), w2), w3) in out.iter_mut().zip(r0).zip(r1).zip(r2).zip(r3) {
                *o += g0 * w0 + g1 * w1 + g2 * w2 + g3 * w3;
            }
        }
        for (r, &gr) in g.iter().enumerate().skip(blocks * 4) {
            if gr == 0.0 {
                continue;
            }
            let row = &self.data[r * cols..r * cols + out.len()];
            for (o, w) in out.iter_mut().zip(row) {
                *o += gr * w;
            }
        }
    }

    /// `self += scale * g ⊗ x` (rank-1 gradient accumulation).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn outer_acc(&mut self, g: &[f32], x: &[f32], scale: f32) {
        assert_eq!(g.len(), self.rows, "outer rows");
        assert_eq!(x.len(), self.cols, "outer cols");
        if self.cols == 0 {
            return;
        }
        for (row, &gv) in self.data.chunks_exact_mut(self.cols).zip(g) {
            let gr = gv * scale;
            if gr == 0.0 {
                continue;
            }
            for (w, xi) in row.iter_mut().zip(x) {
                *w += gr * xi;
            }
        }
    }

    /// `self += scale * g ⊗ [x, 1]` where the last column is a folded-in
    /// bias (`x.len() + 1 == cols`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn outer_acc_bias(&mut self, g: &[f32], x: &[f32], scale: f32) {
        assert_eq!(g.len(), self.rows, "outer rows");
        assert_eq!(x.len() + 1, self.cols, "outer cols");
        let cols = self.cols;
        for (row, &gv) in self.data.chunks_exact_mut(cols).zip(g) {
            let gr = gv * scale;
            if gr == 0.0 {
                continue;
            }
            let (w, bias) = row.split_at_mut(cols - 1);
            for (wi, xi) in w.iter_mut().zip(x) {
                *wi += gr * xi;
            }
            bias[0] += gr;
        }
    }

    /// Sets every element to zero (gradient reset).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Lane-batched [`Mat::matvec_bias_acc`]: `out[r * lanes + l] +=
    /// self.row(r) * [x_l, 1]` for every lane `l`, where `xs` holds the
    /// lane inputs feature-major (`xs[f * lanes + l]` is feature `f` of
    /// lane `l`, `xs.len() == (cols - 1) * lanes`).
    ///
    /// Each lane's result is **bit-identical** to the scalar
    /// `matvec_bias_acc` on that lane's input: the kernel keeps four
    /// per-lane accumulators over feature chunks of four plus a per-lane
    /// scalar tail, combined as `(a0 + a1) + (a2 + a3) + tail + bias` —
    /// the same operation order as the scalar `dot` — so the per-lane
    /// floating-point result does not depend on `lanes` or on which
    /// block of eight a lane lands in.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or when the matrix has no bias
    /// column (`cols == 0`).
    pub fn matvec_bias_acc_soa(&self, xs: &[f32], lanes: usize, out: &mut [f32]) {
        assert!(self.cols > 0, "matvec_bias_soa needs a bias column");
        let feat = self.cols - 1;
        assert_eq!(xs.len(), feat * lanes, "matvec_bias_soa input length");
        assert_eq!(
            out.len(),
            self.rows * lanes,
            "matvec_bias_soa output length"
        );
        if lanes == 0 {
            return;
        }
        const LANE_BLOCK: usize = 8;
        for (out_row, row) in out
            .chunks_exact_mut(lanes)
            .zip(self.data.chunks_exact(self.cols))
        {
            let (w, bias) = row.split_at(feat);
            let mut lane0 = 0;
            while lane0 < lanes {
                let width = (lanes - lane0).min(LANE_BLOCK);
                let mut acc = [[0.0f32; LANE_BLOCK]; 4];
                let mut tail = [0.0f32; LANE_BLOCK];
                let chunks = w.chunks_exact(4);
                let rem = chunks.remainder();
                let mut f = 0;
                for cw in chunks {
                    for (a, &wv) in cw.iter().enumerate() {
                        let base = (f + a) * lanes + lane0;
                        let xrow = &xs[base..base + width];
                        for (al, &xl) in acc[a][..width].iter_mut().zip(xrow) {
                            *al += wv * xl;
                        }
                    }
                    f += 4;
                }
                for (a, &wv) in rem.iter().enumerate() {
                    let base = (f + a) * lanes + lane0;
                    let xrow = &xs[base..base + width];
                    for (tl, &xl) in tail[..width].iter_mut().zip(xrow) {
                        *tl += wv * xl;
                    }
                }
                for (l, o) in out_row[lane0..lane0 + width].iter_mut().enumerate() {
                    *o += (acc[0][l] + acc[1][l]) + (acc[2][l] + acc[3][l]) + tail[l] + bias[0];
                }
                lane0 += width;
            }
        }
    }
}

/// Dot product with four independent accumulators, so the multiplies are
/// not serialized behind one add chain (and auto-vectorize cleanly).
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let chunks_a = a.chunks_exact(4);
    let chunks_b = b.chunks_exact(4);
    let rem_a = chunks_a.remainder();
    let rem_b = chunks_b.remainder();
    for (ca, cb) in chunks_a.zip(chunks_b) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = 0.0f32;
    for (xa, xb) in rem_a.iter().zip(rem_b) {
        tail += xa * xb;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn matvec_and_transpose_agree() {
        let mut m = Mat::zeros(2, 3);
        // [[1,2,3],[4,5,6]]
        for (i, v) in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0].iter().enumerate() {
            m.as_mut_slice()[i] = *v;
        }
        let x = [1.0, 0.0, -1.0];
        let mut y = [0.0; 2];
        m.matvec_acc(&x, &mut y);
        assert_eq!(y, [-2.0, -2.0]);
        let g = [1.0, 1.0];
        let mut gx = [0.0; 3];
        m.matvec_t_acc(&g, &mut gx);
        assert_eq!(gx, [5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_accumulates() {
        let mut m = Mat::zeros(2, 2);
        m.outer_acc(&[1.0, 2.0], &[3.0, 4.0], 0.5);
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
        m.fill_zero();
        assert_eq!(m.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn xavier_is_bounded_and_seeded() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let ma = Mat::xavier(8, 8, &mut a);
        let mb = Mat::xavier(8, 8, &mut b);
        assert_eq!(ma, mb);
        let bound = (6.0f32 / 16.0).sqrt();
        assert!(ma.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    #[should_panic(expected = "matvec input length")]
    fn dimension_mismatch_panics() {
        let m = Mat::zeros(2, 3);
        let mut out = [0.0; 2];
        m.matvec_acc(&[1.0; 4], &mut out);
    }

    /// The unrolled/blocked kernels must agree with naive loops on sizes
    /// that exercise both the 4-wide blocks and the scalar remainders.
    #[test]
    #[allow(clippy::needless_range_loop)] // the oracle loops are naive on purpose
    fn fast_kernels_match_naive_loops() {
        let mut rng = SmallRng::seed_from_u64(6);
        for (rows, cols) in [(1, 1), (3, 5), (4, 8), (7, 9), (12, 13), (16, 16)] {
            let m = Mat::xavier(rows, cols, &mut rng);
            let x: Vec<f32> = (0..cols).map(|i| (i as f32 * 0.7).sin()).collect();
            let g: Vec<f32> = (0..rows).map(|i| (i as f32 * 0.3).cos()).collect();

            let mut fast = vec![0.0f32; rows];
            m.matvec_acc(&x, &mut fast);
            for (r, &got) in fast.iter().enumerate() {
                let naive: f32 = m.row(r).iter().zip(&x).map(|(w, xi)| w * xi).sum();
                assert!((got - naive).abs() < 1e-5, "matvec[{r}]: {got} vs {naive}");
            }

            let mut bias_fast = vec![0.0f32; rows];
            m.matvec_bias_acc(&x[..cols - 1], &mut bias_fast);
            for (r, &got) in bias_fast.iter().enumerate() {
                let naive: f32 = m.row(r)[..cols - 1]
                    .iter()
                    .zip(&x[..cols - 1])
                    .map(|(w, xi)| w * xi)
                    .sum::<f32>()
                    + m.get(r, cols - 1);
                assert!((got - naive).abs() < 1e-5, "matvec_bias[{r}]");
            }

            let mut t_fast = vec![0.0f32; cols];
            m.matvec_t_acc(&g, &mut t_fast);
            for (c, &got) in t_fast.iter().enumerate() {
                let naive: f32 = (0..rows).map(|r| g[r] * m.get(r, c)).sum();
                assert!(
                    (got - naive).abs() < 1e-5,
                    "matvec_t[{c}]: {got} vs {naive}"
                );
            }

            let mut narrow = vec![0.0f32; cols - 1];
            m.matvec_t_narrow(&g, &mut narrow);
            assert_eq!(&narrow[..], &t_fast[..cols - 1]);

            let mut full = Mat::zeros(rows, cols);
            full.outer_acc(&g, &x, 0.5);
            let mut bias = Mat::zeros(rows, cols);
            bias.outer_acc_bias(&g, &x[..cols - 1], 0.5);
            for r in 0..rows {
                for c in 0..cols - 1 {
                    assert!((full.get(r, c) - 0.5 * g[r] * x[c]).abs() < 1e-6);
                    assert_eq!(bias.get(r, c), full.get(r, c), "outer_bias[{r},{c}]");
                }
                assert!((bias.get(r, cols - 1) - 0.5 * g[r]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn empty_matrix_kernels_are_noops() {
        let m = Mat::zeros(0, 0);
        m.matvec_acc(&[], &mut []);
        m.matvec_t_acc(&[], &mut []);
        let mut z = Mat::zeros(0, 0);
        z.outer_acc(&[], &[], 1.0);
    }

    /// The lane-batched SoA kernel must be **bit-identical** per lane to
    /// the scalar `matvec_bias_acc` — this is the contract the streaming
    /// engine's batch-parity guarantee rests on. Lane counts cover a
    /// single lane, an exact block, a partial last block (17 = 8+8+1),
    /// and many blocks; shapes cover non-multiple-of-4 rows and feature
    /// counts with and without a chunk remainder.
    #[test]
    fn soa_matvec_bias_is_bit_identical_per_lane() {
        let mut rng = SmallRng::seed_from_u64(11);
        for (rows, cols) in [(1, 2), (3, 5), (5, 9), (8, 12), (13, 6)] {
            let m = Mat::xavier(rows, cols, &mut rng);
            let feat = cols - 1;
            for lanes in [1usize, 4, 17, 64] {
                // Feature-major SoA inputs, one distinct vector per lane.
                let mut xs = vec![0.0f32; feat * lanes];
                for l in 0..lanes {
                    for f in 0..feat {
                        xs[f * lanes + l] = ((l * 31 + f * 7) as f32 * 0.13).sin();
                    }
                }
                let mut soa = vec![0.1f32; rows * lanes];
                m.matvec_bias_acc_soa(&xs, lanes, &mut soa);
                let mut x = vec![0.0f32; feat];
                for l in 0..lanes {
                    for (f, xi) in x.iter_mut().enumerate() {
                        *xi = xs[f * lanes + l];
                    }
                    let mut scalar = vec![0.1f32; rows];
                    m.matvec_bias_acc(&x, &mut scalar);
                    for (r, &want) in scalar.iter().enumerate() {
                        let got = soa[r * lanes + l];
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "lane {l}/{lanes} row {r} ({rows}x{cols}): {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    /// The 4-row-blocked transpose kernel at row counts that are *not*
    /// multiples of four, with zero-heavy gradient vectors so both the
    /// block-skip and the scalar-remainder paths run (the aligned-shape
    /// test above leaves the remainder loop mostly cold).
    #[test]
    fn blocked_transpose_kernel_handles_unaligned_row_counts() {
        let mut rng = SmallRng::seed_from_u64(23);
        for (rows, cols) in [(2, 3), (5, 6), (6, 4), (7, 1), (9, 3), (13, 7), (15, 5)] {
            let m = Mat::xavier(rows, cols, &mut rng);
            // Zero out a deterministic subset so the g0..g3-all-zero skip
            // and the gr == 0.0 remainder skip both trigger.
            let g: Vec<f32> = (0..rows)
                .map(|r| {
                    if r % 3 == 0 {
                        0.0
                    } else {
                        (r as f32 * 0.4).cos()
                    }
                })
                .collect();
            let mut fast = vec![0.0f32; cols];
            m.matvec_t_acc(&g, &mut fast);
            for (c, &got) in fast.iter().enumerate() {
                let naive: f32 = (0..rows).map(|r| g[r] * m.get(r, c)).sum();
                assert!(
                    (got - naive).abs() < 1e-5,
                    "matvec_t[{c}] at {rows}x{cols}: {got} vs {naive}"
                );
            }
            if cols > 1 {
                let mut narrow = vec![0.0f32; cols - 1];
                m.matvec_t_narrow(&g, &mut narrow);
                assert_eq!(&narrow[..], &fast[..cols - 1], "{rows}x{cols} narrow");
            }
        }
    }
}
