//! Evaluation metrics: top-k accuracy helpers, Levenshtein Distance
//! Accuracy (LDA), Segment Accuracy (SA) — the two metrics the paper
//! uses for DNN-architecture recovery (Table V) — and a mergeable
//! [`ConfusionMatrix`] for sharded streaming evaluation.

use serde::{Deserialize, Serialize};

/// A streaming confusion matrix: `count(truth, predicted)` tallies over
/// a fixed class count, built to **merge** — per-shard evaluation folds
/// combine with [`ConfusionMatrix::merge`], which is commutative and
/// associative with [`ConfusionMatrix::empty`] as identity, so a sharded
/// eval reduces to the same matrix in any fold order.
///
/// ```
/// let mut a = nnet::ConfusionMatrix::new(2);
/// a.record(0, 0);
/// a.record(1, 0);
/// let mut b = nnet::ConfusionMatrix::new(2);
/// b.record(1, 1);
/// a.merge(&b);
/// assert_eq!(a.total(), 3);
/// assert_eq!(a.correct(), 2);
/// assert_eq!(a.count(1, 0), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    /// Row-major `classes × classes` counts: `counts[truth * classes + predicted]`.
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// An all-zero matrix over `classes` classes.
    #[must_use]
    pub fn new(classes: usize) -> Self {
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// The merge identity: a zero-class matrix that adopts the class
    /// count of whatever it is first merged with.
    #[must_use]
    pub fn empty() -> Self {
        ConfusionMatrix::new(0)
    }

    /// Number of classes (0 for the [`ConfusionMatrix::empty`] identity).
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Tallies one `(truth, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics when either label is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.classes, "truth label out of range");
        assert!(predicted < self.classes, "predicted label out of range");
        self.counts[truth * self.classes + predicted] += 1;
    }

    /// The tally for `(truth, predicted)`.
    ///
    /// # Panics
    ///
    /// Panics when either label is out of range.
    #[must_use]
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        assert!(truth < self.classes, "truth label out of range");
        assert!(predicted < self.classes, "predicted label out of range");
        self.counts[truth * self.classes + predicted]
    }

    /// Total observations recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Observations on the diagonal (correct predictions).
    #[must_use]
    pub fn correct(&self) -> u64 {
        (0..self.classes)
            .map(|c| self.counts[c * self.classes + c])
            .sum()
    }

    /// Top-1 accuracy (`0.0` when nothing has been recorded, matching
    /// [`crate::SeqClassifier::accuracy`] on an empty set).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.correct() as f64 / total as f64
    }

    /// Adds `other`'s tallies into `self` (the MergeReport-style fold).
    ///
    /// A zero-class side acts as the identity: merging *into* an empty
    /// matrix adopts the other's shape, and merging an empty matrix in
    /// is a no-op — so per-shard folds seeded from
    /// [`ConfusionMatrix::empty`] commute regardless of which shard ran
    /// first.
    ///
    /// # Panics
    ///
    /// Panics when both sides are non-empty with different class counts.
    pub fn merge(&mut self, other: &Self) {
        if other.classes == 0 {
            return;
        }
        if self.classes == 0 {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.classes, other.classes,
            "cannot merge confusion matrices over different class counts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// Levenshtein (edit) distance between two label sequences.
///
/// ```
/// assert_eq!(nnet::levenshtein(&[1, 2, 3], &[1, 3]), 1);
/// assert_eq!(nnet::levenshtein(&[], &[1, 2]), 2);
/// ```
#[must_use]
pub fn levenshtein(a: &[usize], b: &[usize]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ai) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &bj) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ai != bj);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein Distance Accuracy: `1 - dist / max(len_a, len_b)` —
/// similarity between a predicted structure and the ground truth
/// (paper Section IV-C).
#[must_use]
pub fn levenshtein_accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    let denom = predicted.len().max(truth.len());
    if denom == 0 {
        return 1.0;
    }
    1.0 - levenshtein(predicted, truth) as f64 / denom as f64
}

/// Segment Accuracy: fraction of sampling points whose predicted tag
/// matches the ground-truth tag (paper Section IV-C).
///
/// # Panics
///
/// Panics if the sequences have different lengths.
#[must_use]
pub fn segment_accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(
        predicted.len(),
        truth.len(),
        "segment accuracy needs aligned sequences"
    );
    if truth.is_empty() {
        return 1.0;
    }
    let hits = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / truth.len() as f64
}

/// Per-class segment accuracy: for each class in `0..classes`, the
/// fraction of its ground-truth points predicted correctly (`None` for
/// classes absent from the truth).
#[must_use]
pub fn per_class_segment_accuracy(
    predicted: &[usize],
    truth: &[usize],
    classes: usize,
) -> Vec<Option<f64>> {
    let mut hits = vec![0usize; classes];
    let mut totals = vec![0usize; classes];
    for (&p, &t) in predicted.iter().zip(truth) {
        if t < classes {
            totals[t] += 1;
            hits[t] += usize::from(p == t);
        }
    }
    (0..classes)
        .map(|c| {
            if totals[c] == 0 {
                None
            } else {
                Some(hits[c] as f64 / totals[c] as f64)
            }
        })
        .collect()
}

/// Collapses consecutive duplicate tags into a layer *sequence*
/// (`[C,C,B,B,R,R,R]` → `[C,B,R]`), the representation LDA compares.
#[must_use]
pub fn collapse_runs(tags: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    for &t in tags {
        if out.last() != Some(&t) {
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_classics() {
        assert_eq!(levenshtein(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(levenshtein(&[1, 2, 3], &[2, 2, 3]), 1);
        assert_eq!(levenshtein(&[1, 2, 3, 4], &[1, 3, 4]), 1);
        assert_eq!(levenshtein(&[], &[]), 0);
        assert_eq!(levenshtein(&[7; 5], &[]), 5);
    }

    #[test]
    fn lda_bounds() {
        assert_eq!(levenshtein_accuracy(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(levenshtein_accuracy(&[], &[]), 1.0);
        let lda = levenshtein_accuracy(&[1, 1, 1], &[2, 2, 2]);
        assert_eq!(lda, 0.0);
    }

    #[test]
    fn sa_counts_matches() {
        assert_eq!(segment_accuracy(&[1, 2, 2, 3], &[1, 2, 3, 3]), 0.75);
        assert_eq!(segment_accuracy(&[], &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn sa_rejects_misaligned() {
        let _ = segment_accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn per_class_sa() {
        let truth = [0, 0, 1, 1, 2];
        let pred = [0, 1, 1, 1, 0];
        let per = per_class_segment_accuracy(&pred, &truth, 4);
        assert_eq!(per[0], Some(0.5));
        assert_eq!(per[1], Some(1.0));
        assert_eq!(per[2], Some(0.0));
        assert_eq!(per[3], None);
    }

    #[test]
    fn collapse() {
        assert_eq!(collapse_runs(&[1, 1, 2, 2, 2, 1]), vec![1, 2, 1]);
        assert_eq!(collapse_runs(&[]), Vec::<usize>::new());
    }

    #[test]
    fn confusion_matrix_tallies_and_scores() {
        let mut m = ConfusionMatrix::new(3);
        for (t, p) in [(0, 0), (0, 1), (1, 1), (2, 2), (2, 2)] {
            m.record(t, p);
        }
        assert_eq!(m.total(), 5);
        assert_eq!(m.correct(), 4);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(1, 0), 0);
        assert!((m.accuracy() - 0.8).abs() < 1e-12);
        assert_eq!(ConfusionMatrix::new(3).accuracy(), 0.0);
    }

    #[test]
    fn confusion_matrix_merge_is_commutative_with_empty_identity() {
        let mut a = ConfusionMatrix::new(2);
        a.record(0, 1);
        a.record(1, 1);
        let mut b = ConfusionMatrix::new(2);
        b.record(1, 0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Identity from either side, including shape adoption.
        let mut from_empty = ConfusionMatrix::empty();
        from_empty.merge(&a);
        assert_eq!(from_empty, a);
        let mut into_empty = a.clone();
        into_empty.merge(&ConfusionMatrix::empty());
        assert_eq!(into_empty, a);
    }

    #[test]
    #[should_panic(expected = "different class counts")]
    fn confusion_matrix_rejects_shape_mismatch() {
        let mut a = ConfusionMatrix::new(2);
        a.merge(&ConfusionMatrix::new(3));
    }
}
