//! Evaluation metrics: top-k accuracy helpers, Levenshtein Distance
//! Accuracy (LDA), and Segment Accuracy (SA) — the two metrics the paper
//! uses for DNN-architecture recovery (Table V).

/// Levenshtein (edit) distance between two label sequences.
///
/// ```
/// assert_eq!(nnet::levenshtein(&[1, 2, 3], &[1, 3]), 1);
/// assert_eq!(nnet::levenshtein(&[], &[1, 2]), 2);
/// ```
#[must_use]
pub fn levenshtein(a: &[usize], b: &[usize]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ai) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &bj) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ai != bj);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein Distance Accuracy: `1 - dist / max(len_a, len_b)` —
/// similarity between a predicted structure and the ground truth
/// (paper Section IV-C).
#[must_use]
pub fn levenshtein_accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    let denom = predicted.len().max(truth.len());
    if denom == 0 {
        return 1.0;
    }
    1.0 - levenshtein(predicted, truth) as f64 / denom as f64
}

/// Segment Accuracy: fraction of sampling points whose predicted tag
/// matches the ground-truth tag (paper Section IV-C).
///
/// # Panics
///
/// Panics if the sequences have different lengths.
#[must_use]
pub fn segment_accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(
        predicted.len(),
        truth.len(),
        "segment accuracy needs aligned sequences"
    );
    if truth.is_empty() {
        return 1.0;
    }
    let hits = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / truth.len() as f64
}

/// Per-class segment accuracy: for each class in `0..classes`, the
/// fraction of its ground-truth points predicted correctly (`None` for
/// classes absent from the truth).
#[must_use]
pub fn per_class_segment_accuracy(
    predicted: &[usize],
    truth: &[usize],
    classes: usize,
) -> Vec<Option<f64>> {
    let mut hits = vec![0usize; classes];
    let mut totals = vec![0usize; classes];
    for (&p, &t) in predicted.iter().zip(truth) {
        if t < classes {
            totals[t] += 1;
            hits[t] += usize::from(p == t);
        }
    }
    (0..classes)
        .map(|c| {
            if totals[c] == 0 {
                None
            } else {
                Some(hits[c] as f64 / totals[c] as f64)
            }
        })
        .collect()
}

/// Collapses consecutive duplicate tags into a layer *sequence*
/// (`[C,C,B,B,R,R,R]` → `[C,B,R]`), the representation LDA compares.
#[must_use]
pub fn collapse_runs(tags: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    for &t in tags {
        if out.last() != Some(&t) {
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_classics() {
        assert_eq!(levenshtein(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(levenshtein(&[1, 2, 3], &[2, 2, 3]), 1);
        assert_eq!(levenshtein(&[1, 2, 3, 4], &[1, 3, 4]), 1);
        assert_eq!(levenshtein(&[], &[]), 0);
        assert_eq!(levenshtein(&[7; 5], &[]), 5);
    }

    #[test]
    fn lda_bounds() {
        assert_eq!(levenshtein_accuracy(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(levenshtein_accuracy(&[], &[]), 1.0);
        let lda = levenshtein_accuracy(&[1, 1, 1], &[2, 2, 2]);
        assert_eq!(lda, 0.0);
    }

    #[test]
    fn sa_counts_matches() {
        assert_eq!(segment_accuracy(&[1, 2, 2, 3], &[1, 2, 3, 3]), 0.75);
        assert_eq!(segment_accuracy(&[], &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn sa_rejects_misaligned() {
        let _ = segment_accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn per_class_sa() {
        let truth = [0, 0, 1, 1, 2];
        let pred = [0, 1, 1, 1, 0];
        let per = per_class_segment_accuracy(&pred, &truth, 4);
        assert_eq!(per[0], Some(0.5));
        assert_eq!(per[1], Some(1.0));
        assert_eq!(per[2], Some(0.0));
        assert_eq!(per[3], None);
    }

    #[test]
    fn collapse() {
        assert_eq!(collapse_runs(&[1, 1, 2, 2, 2, 1]), vec![1, 2, 1]);
        assert_eq!(collapse_runs(&[]), Vec::<usize>::new());
    }
}
