//! The Adam optimizer.

use serde::{Deserialize, Serialize};

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    /// Gradient-norm clip applied before the update (0 disables).
    pub clip: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: 5.0,
        }
    }
}

/// Adam state for one parameter tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    config: AdamConfig,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates optimizer state for a tensor of `len` parameters.
    #[must_use]
    pub fn new(len: usize, config: AdamConfig) -> Self {
        Adam {
            config,
            m: vec![0.0; len],
            v: vec![0.0; len],
            t: 0,
        }
    }

    /// Applies one update: `params -= lr * m̂ / (sqrt(v̂) + eps)`.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` lengths differ from the state.
    pub fn step(&mut self, params: &mut [f32], grads: &mut [f32]) {
        assert_eq!(params.len(), self.m.len(), "param length");
        assert_eq!(grads.len(), self.m.len(), "grad length");
        self.t += 1;
        let c = self.config;
        if c.clip > 0.0 {
            let norm = grads.iter().map(|g| g * g).sum::<f32>().sqrt();
            if norm > c.clip {
                let scale = c.clip / norm;
                for g in grads.iter_mut() {
                    *g *= scale;
                }
            }
        }
        let bc1 = 1.0 - c.beta1.powi(self.t as i32);
        let bc2 = 1.0 - c.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = c.beta1 * self.m[i] + (1.0 - c.beta1) * g;
            self.v[i] = c.beta2 * self.v[i] + (1.0 - c.beta2) * g * g;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] -= c.lr * mhat / (vhat.sqrt() + c.eps);
        }
    }

    /// Number of steps taken.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_descends_a_quadratic() {
        // Minimize f(x) = (x - 3)^2 from x = 0.
        let mut x = vec![0.0f32];
        let mut adam = Adam::new(
            1,
            AdamConfig {
                lr: 0.1,
                ..AdamConfig::default()
            },
        );
        for _ in 0..500 {
            let mut g = vec![2.0 * (x[0] - 3.0)];
            adam.step(&mut x, &mut g);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut x = vec![0.0f32; 4];
        let mut adam = Adam::new(
            4,
            AdamConfig {
                lr: 1.0,
                clip: 1.0,
                ..AdamConfig::default()
            },
        );
        let mut g = vec![1000.0f32; 4];
        adam.step(&mut x, &mut g);
        // Post-clip gradient norm is 1; first Adam step magnitude ≈ lr.
        for v in &x {
            assert!(v.abs() <= 1.1, "update too large: {v}");
        }
    }

    #[test]
    #[should_panic(expected = "param length")]
    fn length_mismatch_panics() {
        let mut adam = Adam::new(2, AdamConfig::default());
        let mut p = vec![0.0f32; 3];
        let mut g = vec![0.0f32; 3];
        adam.step(&mut p, &mut g);
    }
}
