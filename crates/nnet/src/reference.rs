//! Unoptimized reference implementation of the LSTM hot path.
//!
//! [`NaiveLstm`] is the straightforward implementation the optimized
//! [`crate::Lstm`] replaced: naive scalar kernels, a `Vec<Vec<f32>>`
//! activation trace, and fresh allocations every timestep. It is kept so
//! the `perf_sim` benchmark can measure the optimization (old vs new
//! epoch time) and so tests can cross-check the fast kernels against a
//! simple oracle.
//!
//! Initialization draws the RNG in the same order as [`crate::Lstm::new`],
//! so a `NaiveLstm` and an `Lstm` built from equally-seeded RNGs start
//! from identical weights.

use crate::mat::Mat;
use crate::optim::{Adam, AdamConfig};
use rand::Rng;

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// `out += m * x`, one scalar multiply-add at a time.
fn matvec_acc_naive(m: &Mat, x: &[f32], out: &mut [f32]) {
    for (r, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for (w, xi) in m.row(r).iter().zip(x) {
            acc += w * xi;
        }
        *o += acc;
    }
}

/// `out += mᵀ * g`, row by row.
fn matvec_t_acc_naive(m: &Mat, g: &[f32], out: &mut [f32]) {
    for (r, &gr) in g.iter().enumerate() {
        if gr == 0.0 {
            continue;
        }
        for (o, w) in out.iter_mut().zip(m.row(r)) {
            *o += gr * w;
        }
    }
}

/// `m += scale * g ⊗ x`, element by element.
fn outer_acc_naive(m: &mut Mat, g: &[f32], x: &[f32], scale: f32) {
    for (r, &gv) in g.iter().enumerate() {
        let gr = gv * scale;
        if gr == 0.0 {
            continue;
        }
        for (c, xi) in x.iter().enumerate() {
            *m.get_mut(r, c) += gr * xi;
        }
    }
}

/// Activation trace of a [`NaiveLstm`] forward pass: one heap vector per
/// timestep per quantity.
#[derive(Debug, Clone, Default)]
pub struct NaiveTrace {
    xs: Vec<Vec<f32>>,
    hs: Vec<Vec<f32>>,    // h_0 .. h_T (h_0 = zeros)
    cs: Vec<Vec<f32>>,    // c_0 .. c_T
    gates: Vec<Vec<f32>>, // per step: [i, f, g, o] post-nonlinearity
}

impl NaiveTrace {
    /// Hidden state after step `t` (0-based step index).
    ///
    /// # Panics
    ///
    /// Panics when `t` is out of range.
    #[must_use]
    pub fn hidden(&self, t: usize) -> &[f32] {
        &self.hs[t + 1]
    }

    /// Number of timesteps traced.
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

/// The pre-optimization single-layer LSTM (see the module docs).
#[derive(Debug, Clone)]
pub struct NaiveLstm {
    input: usize,
    hidden: usize,
    w: Mat,
    grad: Mat,
    adam: Adam,
}

impl NaiveLstm {
    /// Creates an LSTM with Xavier-initialized weights, identical to
    /// [`crate::Lstm::new`] for the same RNG state.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        input: usize,
        hidden: usize,
        rng: &mut R,
        adam: AdamConfig,
    ) -> Self {
        let cols = input + hidden + 1;
        let mut w = Mat::xavier(4 * hidden, cols, rng);
        // Forget-gate bias = +1.
        for r in hidden..2 * hidden {
            *w.get_mut(r, cols - 1) = 1.0;
        }
        let len = w.as_slice().len();
        NaiveLstm {
            input,
            hidden,
            w,
            grad: Mat::zeros(4 * hidden, cols),
            adam: Adam::new(len, adam),
        }
    }

    /// Hidden dimensionality.
    #[must_use]
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Accumulated weight gradient (flat), for cross-checking against the
    /// optimized implementation.
    #[must_use]
    pub fn grad_slice(&self) -> &[f32] {
        self.grad.as_slice()
    }

    /// Runs the layer over `xs`, returning the activation trace.
    ///
    /// # Panics
    ///
    /// Panics if any input vector has the wrong dimensionality.
    #[must_use]
    pub fn forward(&self, xs: &[Vec<f32>]) -> NaiveTrace {
        let h = self.hidden;
        let mut trace = NaiveTrace {
            xs: xs.to_vec(),
            hs: vec![vec![0.0; h]],
            cs: vec![vec![0.0; h]],
            gates: Vec::with_capacity(xs.len()),
        };
        for x in xs {
            assert_eq!(x.len(), self.input, "lstm input dimension");
            let h_prev = trace.hs.last().expect("h_0 exists").clone();
            let c_prev = trace.cs.last().expect("c_0 exists").clone();
            let mut concat = vec![0.0f32; self.input + h + 1];
            concat[..self.input].copy_from_slice(x);
            concat[self.input..self.input + h].copy_from_slice(&h_prev);
            concat[self.input + h] = 1.0;
            let mut pre = vec![0.0f32; 4 * h];
            matvec_acc_naive(&self.w, &concat, &mut pre);
            let mut gates = vec![0.0f32; 4 * h];
            let mut c = vec![0.0f32; h];
            let mut hv = vec![0.0f32; h];
            for j in 0..h {
                let i_g = sigmoid(pre[j]);
                let f_g = sigmoid(pre[h + j]);
                let g_g = pre[2 * h + j].tanh();
                let o_g = sigmoid(pre[3 * h + j]);
                gates[j] = i_g;
                gates[h + j] = f_g;
                gates[2 * h + j] = g_g;
                gates[3 * h + j] = o_g;
                c[j] = f_g * c_prev[j] + i_g * g_g;
                hv[j] = o_g * c[j].tanh();
            }
            trace.gates.push(gates);
            trace.cs.push(c);
            trace.hs.push(hv);
        }
        trace
    }

    /// Backpropagates through the traced sequence (`dh` per timestep).
    ///
    /// # Panics
    ///
    /// Panics if `dh` does not match the trace length or hidden size.
    pub fn backward(&mut self, trace: &NaiveTrace, dh: &[Vec<f32>]) {
        let h = self.hidden;
        let steps = trace.len();
        assert_eq!(dh.len(), steps, "dh length");
        let mut dh_next = vec![0.0f32; h];
        let mut dc_next = vec![0.0f32; h];
        for t in (0..steps).rev() {
            assert_eq!(dh[t].len(), h, "dh dimension");
            let c = &trace.cs[t + 1];
            let c_prev = &trace.cs[t];
            let gates = &trace.gates[t];
            let mut dpre = vec![0.0f32; 4 * h];
            for j in 0..h {
                let dh_total = dh[t][j] + dh_next[j];
                let i_g = gates[j];
                let f_g = gates[h + j];
                let g_g = gates[2 * h + j];
                let o_g = gates[3 * h + j];
                let tc = c[j].tanh();
                let dc = dh_total * o_g * (1.0 - tc * tc) + dc_next[j];
                dpre[j] = dc * g_g * i_g * (1.0 - i_g);
                dpre[h + j] = dc * c_prev[j] * f_g * (1.0 - f_g);
                dpre[2 * h + j] = dc * i_g * (1.0 - g_g * g_g);
                dpre[3 * h + j] = dh_total * tc * o_g * (1.0 - o_g);
                dc_next[j] = dc * f_g;
            }
            let mut concat = vec![0.0f32; self.input + h + 1];
            concat[..self.input].copy_from_slice(&trace.xs[t]);
            concat[self.input..self.input + h].copy_from_slice(&trace.hs[t]);
            concat[self.input + h] = 1.0;
            outer_acc_naive(&mut self.grad, &dpre, &concat, 1.0);
            let mut dconcat = vec![0.0f32; self.input + h + 1];
            matvec_t_acc_naive(&self.w, &dpre, &mut dconcat);
            dh_next.copy_from_slice(&dconcat[self.input..self.input + h]);
        }
    }

    /// Applies accumulated gradients (scaled by `1/batch`) with Adam and
    /// clears the buffer.
    pub fn apply_grads(&mut self, batch: usize) {
        let scale = 1.0 / batch.max(1) as f32;
        for g in self.grad.as_mut_slice() {
            *g *= scale;
        }
        let mut flat = std::mem::replace(&mut self.grad, Mat::zeros(0, 0));
        self.adam.step(self.w.as_mut_slice(), flat.as_mut_slice());
        flat.fill_zero();
        self.grad = flat;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Differential check of the blocked [`Mat`] kernels against this
    /// module's naive scalar loops at row counts that are **not**
    /// multiples of four (the block width), so the remainder paths are
    /// exercised against the oracle and not just against themselves.
    #[test]
    fn blocked_kernels_match_naive_oracle_at_unaligned_rows() {
        let mut rng = SmallRng::seed_from_u64(41);
        for (rows, cols) in [(1, 4), (2, 7), (3, 3), (5, 8), (6, 2), (9, 5), (11, 11)] {
            let m = Mat::xavier(rows, cols, &mut rng);
            let x: Vec<f32> = (0..cols).map(|i| (i as f32 * 0.9).cos()).collect();
            let g: Vec<f32> = (0..rows)
                .map(|r| {
                    if r % 4 == 1 {
                        0.0
                    } else {
                        (r as f32 * 0.6).sin()
                    }
                })
                .collect();

            let mut fast = vec![0.0f32; rows];
            m.matvec_acc(&x, &mut fast);
            let mut naive = vec![0.0f32; rows];
            matvec_acc_naive(&m, &x, &mut naive);
            for (r, (&got, &want)) in fast.iter().zip(&naive).enumerate() {
                assert!(
                    (got - want).abs() < 1e-5,
                    "matvec[{r}] at {rows}x{cols}: {got} vs {want}"
                );
            }

            let mut t_fast = vec![0.0f32; cols];
            m.matvec_t_acc(&g, &mut t_fast);
            let mut t_naive = vec![0.0f32; cols];
            matvec_t_acc_naive(&m, &g, &mut t_naive);
            for (c, (&got, &want)) in t_fast.iter().zip(&t_naive).enumerate() {
                assert!(
                    (got - want).abs() < 1e-5,
                    "matvec_t[{c}] at {rows}x{cols}: {got} vs {want}"
                );
            }

            let mut fast_outer = Mat::zeros(rows, cols);
            fast_outer.outer_acc(&g, &x, 0.25);
            let mut naive_outer = Mat::zeros(rows, cols);
            outer_acc_naive(&mut naive_outer, &g, &x, 0.25);
            for r in 0..rows {
                for c in 0..cols {
                    let (got, want) = (fast_outer.get(r, c), naive_outer.get(r, c));
                    assert!(
                        (got - want).abs() < 1e-6,
                        "outer[{r},{c}] at {rows}x{cols}: {got} vs {want}"
                    );
                }
            }
        }
    }
}
