//! Order-sensitive digests over event streams.
//!
//! The record-and-replay driver and the divergence bisector need a cheap
//! "have these two runs agreed so far?" predicate at every snapshot
//! point. Comparing whole event vectors is O(events); a running 64-bit
//! digest folds each event in as it is recorded, so two prefixes compare
//! in O(1) and the first disagreeing digest brackets where to replay.
//!
//! The digest is FNV-1a over each event's canonical JSON encoding — the
//! same encoding the exporters and golden traces use, so equal digests
//! mean the serialized streams are byte-identical. FNV is *not*
//! cryptographic; this is a debugging aid, and any collision is caught
//! downstream by the event-by-event comparison the bisector finishes
//! with.

use crate::event::Event;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental, order-sensitive digest of an event stream.
///
/// ```
/// use obs::{EventDigest, EventKind, IrqClass};
///
/// let event = obs::Event { at_ps: 10, track: 0, kind: EventKind::ProbeSample {
///     segcnt: 3,
///     irq: IrqClass::Timer,
/// }};
/// let mut a = EventDigest::new();
/// a.update(&event);
/// let mut b = EventDigest::new();
/// b.update(&event);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventDigest {
    state: u64,
}

impl Default for EventDigest {
    fn default() -> Self {
        EventDigest::new()
    }
}

impl EventDigest {
    /// An empty digest (the FNV offset basis).
    #[must_use]
    pub fn new() -> Self {
        EventDigest { state: FNV_OFFSET }
    }

    /// Folds one event into the digest.
    pub fn update(&mut self, event: &Event) {
        let encoded =
            serde_json::to_string(event).expect("events contain only integers and unit variants");
        for byte in encoded.bytes() {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        // A terminator byte no JSON encoding contains, so event
        // boundaries cannot alias across concatenations.
        self.state ^= 0xFF;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// The digest of everything folded in so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Digests a whole event slice in order.
#[must_use]
pub fn digest_events(events: &[Event]) -> u64 {
    let mut digest = EventDigest::new();
    for event in events {
        digest.update(event);
    }
    digest.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, IrqClass};

    fn ev(at: u64, segcnt: u64) -> Event {
        Event {
            at_ps: at,
            track: 0,
            kind: EventKind::ProbeSample {
                segcnt,
                irq: IrqClass::Timer,
            },
        }
    }

    #[test]
    fn equal_streams_digest_equal() {
        let a = vec![ev(1, 0), ev(2, 1), ev(3, 0)];
        assert_eq!(digest_events(&a), digest_events(&a.clone()));
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = vec![ev(1, 0), ev(2, 1)];
        let b = vec![ev(2, 1), ev(1, 0)];
        assert_ne!(digest_events(&a), digest_events(&b));
    }

    #[test]
    fn single_field_change_changes_digest() {
        assert_ne!(digest_events(&[ev(1, 0)]), digest_events(&[ev(1, 1)]));
        assert_ne!(digest_events(&[ev(1, 0)]), digest_events(&[ev(2, 0)]));
    }

    #[test]
    fn boundary_cannot_alias() {
        // Same concatenated payload split differently must not collide:
        // the per-event terminator separates [a,b] from [a] then [b]
        // folded into a fresh digest resumed from the first.
        let mut one = EventDigest::new();
        one.update(&ev(1, 0));
        let mut two = one;
        two.update(&ev(2, 1));
        assert_ne!(one.finish(), two.finish());
    }

    #[test]
    fn incremental_matches_batch() {
        let events = vec![ev(1, 0), ev(5, 2), ev(9, 4)];
        let mut inc = EventDigest::new();
        for e in &events {
            inc.update(e);
        }
        assert_eq!(inc.finish(), digest_events(&events));
    }
}
