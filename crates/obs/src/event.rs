//! Typed simulation events.
//!
//! Every event is stamped with **simulated** picoseconds only — never
//! wall-clock time — so a trace is a pure function of `(config, seed)`
//! and is bit-reproducible across machines, reruns, and worker-thread
//! counts. Events are `Copy` so the ring buffer never allocates per
//! record.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Compact interrupt taxonomy mirror.
///
/// `obs` sits below every simulation crate, so it cannot name
/// `irq::InterruptKind`; the `irq` crate provides the lossless
/// `From<InterruptKind>` conversion instead. Variant order matches
/// `InterruptKind::ALL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IrqClass {
    /// Local APIC timer tick.
    Timer,
    /// Rescheduling IPI.
    Resched,
    /// Performance-monitoring interrupt.
    PerfMon,
    /// Network device interrupt.
    Network,
    /// Graphics device interrupt.
    Gpu,
    /// Keyboard/input device interrupt.
    Keyboard,
    /// Thermal event interrupt.
    Thermal,
    /// TLB-shootdown / call-function IPI.
    CallFunction,
    /// Anything else.
    Other,
}

impl IrqClass {
    /// Every class, in a stable order.
    pub const ALL: [IrqClass; 9] = [
        IrqClass::Timer,
        IrqClass::Resched,
        IrqClass::PerfMon,
        IrqClass::Network,
        IrqClass::Gpu,
        IrqClass::Keyboard,
        IrqClass::Thermal,
        IrqClass::CallFunction,
        IrqClass::Other,
    ];

    /// A short stable label (used by the exporters).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            IrqClass::Timer => "timer",
            IrqClass::Resched => "resched",
            IrqClass::PerfMon => "perfmon",
            IrqClass::Network => "network",
            IrqClass::Gpu => "gpu",
            IrqClass::Keyboard => "keyboard",
            IrqClass::Thermal => "thermal",
            IrqClass::CallFunction => "callfn",
            IrqClass::Other => "other",
        }
    }
}

impl fmt::Display for IrqClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which data-segment register a [`EventKind::SegClear`] touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SegRegId {
    /// DS.
    Ds,
    /// ES.
    Es,
    /// FS.
    Fs,
    /// GS.
    Gs,
}

impl SegRegId {
    /// Every register, in descriptor order.
    pub const ALL: [SegRegId; 4] = [SegRegId::Ds, SegRegId::Es, SegRegId::Fs, SegRegId::Gs];

    /// A short stable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SegRegId::Ds => "ds",
            SegRegId::Es => "es",
            SegRegId::Fs => "fs",
            SegRegId::Gs => "gs",
        }
    }
}

/// A *timing*-family fault injection (delivery faults have their own
/// dedicated event kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Log-normal jitter applied to one handler-cost sample.
    HandlerJitter,
    /// An SMT-noise burst started.
    SmtBurst,
    /// A governor update hit the frequency-step clamp.
    ClampedFreqStep,
}

impl FaultKind {
    /// A short stable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::HandlerJitter => "handler_jitter",
            FaultKind::SmtBurst => "smt_burst",
            FaultKind::ClampedFreqStep => "clamped_freq_step",
        }
    }
}

/// The payload of one trace event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// An interrupt reached the core and its handler ran.
    IrqDelivered {
        /// Interrupt class.
        irq: IrqClass,
        /// Handler routine cost (`w` in paper Eq. 1), ps.
        handler_cost_ps: u64,
    },
    /// The fault plan dropped an interrupt before it reached the core.
    IrqDropped {
        /// Interrupt class.
        irq: IrqClass,
    },
    /// An interrupt was merged into an earlier kernel stint by the fault
    /// plan's coalescing window (delivered, but no own return to user).
    IrqCoalesced {
        /// Interrupt class.
        irq: IrqClass,
    },
    /// The fault plan scheduled a ghost re-delivery of an interrupt.
    IrqDuplicated {
        /// Interrupt class.
        irq: IrqClass,
        /// When the ghost will land, ps.
        ghost_at_ps: u64,
    },
    /// Algorithm 1 scrubbed one data-segment register on a kernel→user
    /// return.
    SegClear {
        /// The scrubbed register.
        reg: SegRegId,
        /// `true` when cleared for holding a (non-zero) null selector —
        /// the SegScope marker path; `false` for the sensitive-descriptor
        /// path.
        null: bool,
    },
    /// A protected-mode return to user space completed (the IRET edge the
    /// probe observes).
    KernelReturn {
        /// How many registers the scrub cleared.
        cleared: u8,
        /// Total time spent away from user space, ps.
        kernel_span_ps: u64,
    },
    /// The DVFS governor moved the core frequency.
    FreqTransition {
        /// Previous frequency, kHz.
        from_khz: u64,
        /// New frequency, kHz.
        to_khz: u64,
    },
    /// The SegScope probe completed one interval measurement.
    ProbeSample {
        /// The attacker-visible SegCnt of the interval.
        segcnt: u64,
        /// Ground truth: the interrupt class that ended the interval.
        irq: IrqClass,
    },
    /// A timing-family fault was injected.
    FaultInjected {
        /// Which fault.
        fault: FaultKind,
    },
    /// A fan-out trial started (trial engine instrumentation).
    TrialStart {
        /// Task index within the experiment.
        index: u64,
    },
    /// A fan-out trial finished.
    TrialEnd {
        /// Task index within the experiment.
        index: u64,
    },
    /// An asynchronous enclave exit: an interrupt landed while the core
    /// was executing inside an enclave, forcing the AEX return path
    /// instead of an ordinary handler-and-resume (AEX-NStep's countable
    /// event).
    AexExit {
        /// The interrupt class that forced the exit.
        irq: IrqClass,
        /// Handler routine cost, ps.
        handler_cost_ps: u64,
    },
    /// The deterministic-padding defense inserted a synthetic kernel
    /// exit (not caused by any interrupt source).
    DefensePad {
        /// Total time spent away from user space for the pad, ps.
        kernel_span_ps: u64,
    },
    /// The QuanShield-style defense tore the enclave down on its first
    /// asynchronous exit.
    EnclaveDestroyed,
    /// The streaming inference engine classified a completed session
    /// (a `serve::StreamSession` emitted its verdict).
    ServeVerdict {
        /// The serving-side session identifier (lane the session ran in).
        session: u32,
        /// Predicted class index.
        class: u32,
        /// Timesteps the session consumed before the verdict.
        steps: u32,
    },
}

impl EventKind {
    /// The filterable class of this event.
    #[must_use]
    pub fn class(&self) -> EventClass {
        match self {
            EventKind::IrqDelivered { .. } => EventClass::IrqDelivered,
            EventKind::IrqDropped { .. } => EventClass::IrqDropped,
            EventKind::IrqCoalesced { .. } => EventClass::IrqCoalesced,
            EventKind::IrqDuplicated { .. } => EventClass::IrqDuplicated,
            EventKind::SegClear { .. } => EventClass::SegClear,
            EventKind::KernelReturn { .. } => EventClass::KernelReturn,
            EventKind::FreqTransition { .. } => EventClass::FreqTransition,
            EventKind::ProbeSample { .. } => EventClass::ProbeSample,
            EventKind::FaultInjected { .. } => EventClass::FaultInjected,
            EventKind::TrialStart { .. } => EventClass::TrialStart,
            EventKind::TrialEnd { .. } => EventClass::TrialEnd,
            EventKind::AexExit { .. } => EventClass::AexExit,
            EventKind::DefensePad { .. } => EventClass::DefensePad,
            EventKind::EnclaveDestroyed => EventClass::EnclaveDestroyed,
            EventKind::ServeVerdict { .. } => EventClass::ServeVerdict,
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulated time of the event, picoseconds. Never wall clock.
    pub at_ps: u64,
    /// Logical lane the event belongs to (0 for a standalone machine;
    /// the trial index when merged by the trial engine). Exporters map
    /// it to a display track.
    pub track: u32,
    /// The payload.
    pub kind: EventKind,
}

impl Event {
    /// An event on track 0.
    #[must_use]
    pub fn new(at_ps: u64, kind: EventKind) -> Self {
        Event {
            at_ps,
            track: 0,
            kind,
        }
    }

    /// The filterable class of this event.
    #[must_use]
    pub fn class(&self) -> EventClass {
        self.kind.class()
    }
}

/// The class tag of an [`EventKind`] variant (payload-free), used for
/// filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EventClass {
    /// [`EventKind::IrqDelivered`].
    IrqDelivered,
    /// [`EventKind::IrqDropped`].
    IrqDropped,
    /// [`EventKind::IrqCoalesced`].
    IrqCoalesced,
    /// [`EventKind::IrqDuplicated`].
    IrqDuplicated,
    /// [`EventKind::SegClear`].
    SegClear,
    /// [`EventKind::KernelReturn`].
    KernelReturn,
    /// [`EventKind::FreqTransition`].
    FreqTransition,
    /// [`EventKind::ProbeSample`].
    ProbeSample,
    /// [`EventKind::FaultInjected`].
    FaultInjected,
    /// [`EventKind::TrialStart`].
    TrialStart,
    /// [`EventKind::TrialEnd`].
    TrialEnd,
    /// [`EventKind::AexExit`].
    AexExit,
    /// [`EventKind::DefensePad`].
    DefensePad,
    /// [`EventKind::EnclaveDestroyed`].
    EnclaveDestroyed,
    /// [`EventKind::ServeVerdict`].
    ServeVerdict,
}

impl EventClass {
    /// Every class, in declaration order.
    pub const ALL: [EventClass; 15] = [
        EventClass::IrqDelivered,
        EventClass::IrqDropped,
        EventClass::IrqCoalesced,
        EventClass::IrqDuplicated,
        EventClass::SegClear,
        EventClass::KernelReturn,
        EventClass::FreqTransition,
        EventClass::ProbeSample,
        EventClass::FaultInjected,
        EventClass::TrialStart,
        EventClass::TrialEnd,
        EventClass::AexExit,
        EventClass::DefensePad,
        EventClass::EnclaveDestroyed,
        EventClass::ServeVerdict,
    ];

    fn bit(self) -> u16 {
        let index = EventClass::ALL
            .iter()
            .position(|&c| c == self)
            .expect("every class is in ALL");
        1 << index
    }

    /// A short stable label (the Chrome exporter's event name prefix).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventClass::IrqDelivered => "irq_delivered",
            EventClass::IrqDropped => "irq_dropped",
            EventClass::IrqCoalesced => "irq_coalesced",
            EventClass::IrqDuplicated => "irq_duplicated",
            EventClass::SegClear => "seg_clear",
            EventClass::KernelReturn => "kernel_return",
            EventClass::FreqTransition => "freq_transition",
            EventClass::ProbeSample => "probe_sample",
            EventClass::FaultInjected => "fault_injected",
            EventClass::TrialStart => "trial_start",
            EventClass::TrialEnd => "trial_end",
            EventClass::AexExit => "aex_exit",
            EventClass::DefensePad => "defense_pad",
            EventClass::EnclaveDestroyed => "enclave_destroyed",
            EventClass::ServeVerdict => "serve_verdict",
        }
    }
}

/// A set of [`EventClass`]es (a filter predicate over event kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassSet(u16);

impl ClassSet {
    /// The empty set.
    pub const EMPTY: ClassSet = ClassSet(0);

    /// The set of every class.
    pub const ALL: ClassSet = ClassSet((1 << 15) - 1);

    /// The set containing exactly `class`.
    #[must_use]
    pub fn of(class: EventClass) -> Self {
        ClassSet(class.bit())
    }

    /// This set plus `class` (builder style).
    #[must_use]
    pub fn with(self, class: EventClass) -> Self {
        ClassSet(self.0 | class.bit())
    }

    /// Whether `class` is in the set.
    #[must_use]
    pub fn contains(self, class: EventClass) -> bool {
        self.0 & class.bit() != 0
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl FromIterator<EventClass> for ClassSet {
    fn from_iter<I: IntoIterator<Item = EventClass>>(iter: I) -> Self {
        iter.into_iter().fold(ClassSet::EMPTY, ClassSet::with)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_set_membership() {
        let set = ClassSet::of(EventClass::IrqDelivered).with(EventClass::ProbeSample);
        assert!(set.contains(EventClass::IrqDelivered));
        assert!(set.contains(EventClass::ProbeSample));
        assert!(!set.contains(EventClass::SegClear));
        assert!(!set.is_empty());
        assert!(ClassSet::EMPTY.is_empty());
        for class in EventClass::ALL {
            assert!(ClassSet::ALL.contains(class));
        }
    }

    #[test]
    fn class_set_from_iterator() {
        let set: ClassSet = [EventClass::TrialStart, EventClass::TrialEnd]
            .into_iter()
            .collect();
        assert!(set.contains(EventClass::TrialStart));
        assert!(set.contains(EventClass::TrialEnd));
        assert!(!set.contains(EventClass::IrqDelivered));
    }

    #[test]
    fn every_kind_maps_to_its_class() {
        let kinds = [
            (
                EventKind::IrqDelivered {
                    irq: IrqClass::Timer,
                    handler_cost_ps: 1,
                },
                EventClass::IrqDelivered,
            ),
            (
                EventKind::IrqDropped {
                    irq: IrqClass::Network,
                },
                EventClass::IrqDropped,
            ),
            (
                EventKind::SegClear {
                    reg: SegRegId::Gs,
                    null: true,
                },
                EventClass::SegClear,
            ),
            (
                EventKind::FreqTransition {
                    from_khz: 1,
                    to_khz: 2,
                },
                EventClass::FreqTransition,
            ),
            (EventKind::TrialStart { index: 3 }, EventClass::TrialStart),
            (
                EventKind::AexExit {
                    irq: IrqClass::Timer,
                    handler_cost_ps: 7,
                },
                EventClass::AexExit,
            ),
            (
                EventKind::DefensePad { kernel_span_ps: 5 },
                EventClass::DefensePad,
            ),
            (EventKind::EnclaveDestroyed, EventClass::EnclaveDestroyed),
            (
                EventKind::ServeVerdict {
                    session: 2,
                    class: 1,
                    steps: 40,
                },
                EventClass::ServeVerdict,
            ),
        ];
        for (kind, class) in kinds {
            assert_eq!(kind.class(), class);
            assert_eq!(Event::new(9, kind).class(), class);
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = EventClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), EventClass::ALL.len());
        let mut irqs: Vec<_> = IrqClass::ALL.iter().map(|c| c.label()).collect();
        irqs.sort_unstable();
        irqs.dedup();
        assert_eq!(irqs.len(), IrqClass::ALL.len());
    }
}
