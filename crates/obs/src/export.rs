//! Trace exporters: Chrome `trace_event` JSON and compact JSON-lines.
//!
//! Both exporters are pure functions of the sink's contents and emit
//! deterministic bytes — field order is fixed, numbers are formatted
//! with integer math (no float printing), and map iteration follows
//! `BTreeMap` order. A trace exported twice from the same run is
//! byte-identical.

use crate::event::{Event, EventClass, EventKind};
use crate::ring::TraceSink;
use std::fmt::Write as _;

/// Appends a Chrome `ts`/`dur` value: picoseconds rendered as decimal
/// microseconds with six fractional digits, via integer math only.
fn push_us(out: &mut String, ps: u64) {
    let _ = write!(out, "{}.{:06}", ps / 1_000_000, ps % 1_000_000);
}

/// Minimal JSON string escaping for the label strings we emit (labels
/// are ASCII identifiers, but escape defensively anyway).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One Chrome event object. `dur_ps = None` emits an instant ("i") or
/// counter ("C") event depending on `phase`.
fn push_chrome_event(
    out: &mut String,
    name: &str,
    phase: char,
    at_ps: u64,
    dur_ps: Option<u64>,
    track: u32,
    args: &[(&str, String)],
) {
    out.push_str("{\"name\":");
    push_json_str(out, name);
    let _ = write!(out, ",\"ph\":\"{phase}\",\"ts\":");
    push_us(out, at_ps);
    if let Some(dur) = dur_ps {
        out.push_str(",\"dur\":");
        push_us(out, dur);
    }
    let _ = write!(out, ",\"pid\":1,\"tid\":{}", track + 1);
    if phase == 'i' {
        // Instant events need a scope; "t" = thread-scoped.
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"args\":{");
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, key);
        out.push(':');
        out.push_str(value);
    }
    out.push_str("}}");
}

fn quoted(s: &str) -> String {
    let mut out = String::new();
    push_json_str(&mut out, s);
    out
}

/// Renders one trace event as a Chrome `trace_event` object.
fn chrome_event(out: &mut String, event: &Event) {
    let name = event.class().label();
    let track = event.track;
    match event.kind {
        EventKind::IrqDelivered {
            irq,
            handler_cost_ps,
        } => {
            // Complete ("X") span covering the handler routine.
            push_chrome_event(
                out,
                name,
                'X',
                event.at_ps,
                Some(handler_cost_ps),
                track,
                &[("irq", quoted(irq.label()))],
            );
        }
        EventKind::KernelReturn {
            cleared,
            kernel_span_ps,
        } => {
            // Complete span for the whole kernel stint, ending at the
            // IRET edge the probe observes.
            push_chrome_event(
                out,
                name,
                'X',
                event.at_ps.saturating_sub(kernel_span_ps),
                Some(kernel_span_ps),
                track,
                &[("cleared", cleared.to_string())],
            );
        }
        EventKind::FreqTransition { from_khz, to_khz } => {
            // Counter ("C") event so Chrome draws the frequency curve.
            push_chrome_event(
                out,
                "freq_khz",
                'C',
                event.at_ps,
                None,
                track,
                &[
                    ("khz", to_khz.to_string()),
                    ("from_khz", from_khz.to_string()),
                ],
            );
        }
        EventKind::ProbeSample { segcnt, irq } => {
            push_chrome_event(
                out,
                name,
                'i',
                event.at_ps,
                None,
                track,
                &[("segcnt", segcnt.to_string()), ("irq", quoted(irq.label()))],
            );
        }
        EventKind::IrqDropped { irq } => {
            push_chrome_event(
                out,
                name,
                'i',
                event.at_ps,
                None,
                track,
                &[("irq", quoted(irq.label()))],
            );
        }
        EventKind::IrqCoalesced { irq } => {
            push_chrome_event(
                out,
                name,
                'i',
                event.at_ps,
                None,
                track,
                &[("irq", quoted(irq.label()))],
            );
        }
        EventKind::IrqDuplicated { irq, ghost_at_ps } => {
            let mut ghost = String::new();
            push_us(&mut ghost, ghost_at_ps);
            push_chrome_event(
                out,
                name,
                'i',
                event.at_ps,
                None,
                track,
                &[("irq", quoted(irq.label())), ("ghost_ts", ghost)],
            );
        }
        EventKind::SegClear { reg, null } => {
            push_chrome_event(
                out,
                name,
                'i',
                event.at_ps,
                None,
                track,
                &[
                    ("reg", quoted(reg.label())),
                    ("null", if null { "true".into() } else { "false".into() }),
                ],
            );
        }
        EventKind::FaultInjected { fault } => {
            push_chrome_event(
                out,
                name,
                'i',
                event.at_ps,
                None,
                track,
                &[("fault", quoted(fault.label()))],
            );
        }
        EventKind::TrialStart { index } => {
            push_chrome_event(
                out,
                name,
                'i',
                event.at_ps,
                None,
                track,
                &[("index", index.to_string())],
            );
        }
        EventKind::TrialEnd { index } => {
            push_chrome_event(
                out,
                name,
                'i',
                event.at_ps,
                None,
                track,
                &[("index", index.to_string())],
            );
        }
        EventKind::AexExit {
            irq,
            handler_cost_ps,
        } => {
            // Complete span like IrqDelivered — an AEX still runs the
            // handler — but under its own name so enclave exits stand
            // out on the timeline.
            push_chrome_event(
                out,
                name,
                'X',
                event.at_ps,
                Some(handler_cost_ps),
                track,
                &[("irq", quoted(irq.label()))],
            );
        }
        EventKind::DefensePad { kernel_span_ps } => {
            push_chrome_event(
                out,
                name,
                'X',
                event.at_ps.saturating_sub(kernel_span_ps),
                Some(kernel_span_ps),
                track,
                &[],
            );
        }
        EventKind::EnclaveDestroyed => {
            push_chrome_event(out, name, 'i', event.at_ps, None, track, &[]);
        }
        EventKind::ServeVerdict {
            session,
            class,
            steps,
        } => {
            push_chrome_event(
                out,
                name,
                'i',
                event.at_ps,
                None,
                track,
                &[
                    ("session", session.to_string()),
                    ("class", class.to_string()),
                    ("steps", steps.to_string()),
                ],
            );
        }
    }
}

/// Exports the sink as a Chrome `trace_event` JSON document loadable in
/// `about:tracing` / Perfetto. Counters and phase stats ride along in
/// `otherData`.
#[must_use]
pub fn chrome_trace(sink: &TraceSink) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let events = sink.events();
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        chrome_event(&mut out, event);
    }
    out.push_str("\n],\"otherData\":{");
    let _ = write!(
        out,
        "\"events_recorded\":{},\"events_dropped\":{}",
        sink.recorded(),
        sink.dropped()
    );
    for (name, value) in sink.metrics.counters() {
        out.push(',');
        push_json_str(&mut out, &format!("counter.{name}"));
        let _ = write!(out, ":{value}");
    }
    for (name, stats) in sink.metrics.phases() {
        out.push(',');
        push_json_str(&mut out, &format!("phase.{name}.calls"));
        let _ = write!(out, ":{}", stats.calls);
        out.push(',');
        push_json_str(&mut out, &format!("phase.{name}.total_ps"));
        let _ = write!(out, ":{}", stats.total_ps);
    }
    out.push_str("}}\n");
    out
}

/// Exports the retained events as compact JSON-lines (one serialized
/// [`Event`] per line).
#[must_use]
pub fn jsonl(sink: &TraceSink) -> String {
    let mut out = String::new();
    for event in sink.events() {
        out.push_str(&serde_json::to_string(&event).expect("events serialize"));
        out.push('\n');
    }
    out
}

/// Parses a JSON-lines dump back into events (the inverse of [`jsonl`]).
pub fn from_jsonl(text: &str) -> Result<Vec<Event>, serde_json::Error> {
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

/// Number of interrupt-delivery events in the rendered Chrome trace
/// (counts `"name":"irq_delivered"` objects). Lets checks against
/// `GroundTruth` work on the exported artifact itself.
#[must_use]
pub fn chrome_delivery_count(trace_json: &str) -> usize {
    let needle = format!("\"name\":\"{}\"", EventClass::IrqDelivered.label());
    trace_json.matches(&needle).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::IrqClass;

    fn sample_sink() -> TraceSink {
        let mut sink = TraceSink::with_capacity(16);
        sink.emit(
            1_500_000,
            EventKind::IrqDelivered {
                irq: IrqClass::Timer,
                handler_cost_ps: 2_000_000,
            },
        );
        sink.emit(
            4_000_000,
            EventKind::FreqTransition {
                from_khz: 1_800_000,
                to_khz: 2_200_000,
            },
        );
        sink.emit(
            5_250_000,
            EventKind::ProbeSample {
                segcnt: 2,
                irq: IrqClass::Keyboard,
            },
        );
        sink.metrics.incr("probe.samples", 1);
        sink.metrics.phase("probing", 0, 5_250_000);
        sink
    }

    #[test]
    fn chrome_trace_is_deterministic_and_structured() {
        let sink = sample_sink();
        let a = chrome_trace(&sink);
        let b = chrome_trace(&sink);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ph\":\"C\""));
        assert!(a.contains("\"ph\":\"i\""));
        assert!(a.contains("\"ts\":1.500000"));
        assert!(a.contains("\"dur\":2.000000"));
        assert!(a.contains("\"counter.probe.samples\":1"));
        assert!(a.contains("\"phase.probing.calls\":1"));
        assert_eq!(chrome_delivery_count(&a), 1);
    }

    #[test]
    fn jsonl_round_trips() {
        let sink = sample_sink();
        let dump = jsonl(&sink);
        assert_eq!(dump.lines().count(), 3);
        let back = from_jsonl(&dump).expect("jsonl parses");
        assert_eq!(back, sink.events());
    }

    #[test]
    fn us_formatting_uses_integer_math() {
        let mut s = String::new();
        push_us(&mut s, 0);
        assert_eq!(s, "0.000000");
        let mut s = String::new();
        push_us(&mut s, 1);
        assert_eq!(s, "0.000001");
        let mut s = String::new();
        push_us(&mut s, 123_456_789_012);
        assert_eq!(s, "123456.789012");
    }

    #[test]
    fn json_strings_escape_specials() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }
}
