//! Deterministic observability for the SegScope reproduction.
//!
//! Every simulation crate can stream typed [`Event`]s into a
//! [`TraceSink`] — a fixed-capacity ring buffer with an embedded
//! [`Metrics`] registry — and export the result as a Chrome
//! `trace_event` JSON document or a compact JSON-lines dump.
//!
//! # Determinism rules
//!
//! The whole layer is built around three invariants:
//!
//! 1. **Simulated time only.** Events carry [`Event::at_ps`] stamped
//!    from the simulation clock; nothing in this crate ever reads wall
//!    clock, so traces are a pure function of `(config, seed)`.
//! 2. **Zero overhead when disabled.** Instrumentation hooks upstream
//!    are `if let Some(sink)` branches on an `Option`; with no sink
//!    installed they consume no RNG draws and perturb no simulated
//!    timing, keeping every existing seed and golden trace bit-stable.
//! 3. **Bounded memory.** The ring overwrites its oldest event when
//!    full and counts the overwrite in [`TraceSink::dropped`], so
//!    arbitrarily long runs trace in constant space.
//!
//! # Example
//!
//! ```
//! use obs::{ClassSet, Event, EventClass, EventKind, IrqClass, TraceSink};
//!
//! let mut sink = TraceSink::with_capacity(1024);
//! sink.emit(1_000, EventKind::IrqDelivered {
//!     irq: IrqClass::Timer,
//!     handler_cost_ps: 500,
//! });
//! sink.emit(2_000, EventKind::ProbeSample { segcnt: 1, irq: IrqClass::Timer });
//! sink.metrics.incr("probe.samples", 1);
//!
//! let irqs = sink.filtered(ClassSet::of(EventClass::IrqDelivered), 0, u64::MAX);
//! assert_eq!(irqs.len(), 1);
//! let json = obs::export::chrome_trace(&sink);
//! assert!(json.contains("\"irq_delivered\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digest;
mod event;
pub mod export;
pub mod metrics;
mod ring;

pub use digest::{digest_events, EventDigest};
pub use event::{ClassSet, Event, EventClass, EventKind, FaultKind, IrqClass, SegRegId};
pub use metrics::{Histogram, Metrics, PhaseStats};
pub use ring::{TraceSink, DEFAULT_CAPACITY};
