//! Counter / histogram / phase-scope registry.
//!
//! Everything here is keyed by `&'static str`-style names stored as
//! `String`s in `BTreeMap`s, so iteration order — and therefore every
//! exporter's output — is deterministic. Phase durations are measured
//! in **simulated** picoseconds supplied by the caller; the registry
//! never consults a clock of its own.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Number of log2 buckets in a [`Histogram`] (covers the full `u64`
/// range: bucket `i` holds values `v` with `bit_width(v) == i`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A power-of-two histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// `buckets[i]` counts samples whose bit width is `i`
    /// (`buckets[0]` counts zeros).
    buckets: Vec<u64>,
    /// Total samples observed.
    count: u64,
    /// Sum of all samples (saturating).
    sum: u64,
    /// Smallest sample observed (`u64::MAX` when empty).
    min: u64,
    /// Largest sample observed (0 when empty).
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples observed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Integer mean, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// The raw bucket counts (`bucket[i]` = samples of bit width `i`).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Folds `other` into this histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Aggregate timing of one named phase (calibration, probing,
/// classification, …) across all its scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Times the phase ran.
    pub calls: u64,
    /// Total simulated time inside the phase, ps.
    pub total_ps: u64,
}

/// The registry: named counters, histograms, and phase stats.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    phases: BTreeMap<String, PhaseStats>,
}

impl Metrics {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Metrics {
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            phases: BTreeMap::new(),
        }
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn incr(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Current value of counter `name` (zero if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records `value` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .observe(value);
    }

    /// Histogram `name`, if any sample was ever observed.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Records one completed scope of phase `name` spanning
    /// `[start_ps, end_ps]` in simulated time. `end_ps < start_ps` is
    /// treated as a zero-length scope rather than a panic, so malformed
    /// spans can't poison a run.
    pub fn phase(&mut self, name: &str, start_ps: u64, end_ps: u64) {
        let entry = self.phases.entry(name.to_owned()).or_insert(PhaseStats {
            calls: 0,
            total_ps: 0,
        });
        entry.calls += 1;
        entry.total_ps += end_ps.saturating_sub(start_ps);
    }

    /// Stats for phase `name`, if it ever ran.
    #[must_use]
    pub fn phase_stats(&self, name: &str) -> Option<PhaseStats> {
        self.phases.get(name).copied()
    }

    /// All counters, name-ordered.
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All histograms, name-ordered.
    #[must_use]
    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }

    /// All phases, name-ordered.
    #[must_use]
    pub fn phases(&self) -> &BTreeMap<String, PhaseStats> {
        &self.phases
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.phases.is_empty()
    }

    /// Folds `other` into this registry (counters add, histograms and
    /// phases merge element-wise).
    pub fn merge(&mut self, other: &Metrics) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
        for (name, stats) in &other.phases {
            let entry = self.phases.entry(name.clone()).or_insert(PhaseStats {
                calls: 0,
                total_ps: 0,
            });
            entry.calls += stats.calls;
            entry.total_ps += stats.total_ps;
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_width() {
        let mut h = Histogram::new();
        h.observe(0); // bucket 0
        h.observe(1); // bucket 1
        h.observe(2); // bucket 2
        h.observe(3); // bucket 2
        h.observe(u64::MAX); // bucket 64
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[64], 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.sum(), u64::MAX); // saturated
    }

    #[test]
    fn empty_histogram_has_no_extremes() {
        let h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn counters_and_phases_accumulate() {
        let mut m = Metrics::new();
        m.incr("probe.samples", 3);
        m.incr("probe.samples", 2);
        assert_eq!(m.counter("probe.samples"), 5);
        assert_eq!(m.counter("missing"), 0);
        m.phase("calibrate", 100, 400);
        m.phase("calibrate", 1000, 1600);
        let stats = m.phase_stats("calibrate").unwrap();
        assert_eq!(stats.calls, 2);
        assert_eq!(stats.total_ps, 900);
        // Inverted span counts as zero length, not a panic.
        m.phase("calibrate", 50, 10);
        assert_eq!(m.phase_stats("calibrate").unwrap().total_ps, 900);
    }

    #[test]
    fn merge_folds_every_family() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.incr("c", 1);
        b.incr("c", 2);
        b.incr("only_b", 4);
        a.observe("h", 8);
        b.observe("h", 16);
        a.phase("p", 0, 10);
        b.phase("p", 0, 30);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("only_b"), 4);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 24);
        let p = a.phase_stats("p").unwrap();
        assert_eq!(p.calls, 2);
        assert_eq!(p.total_ps, 40);
    }
}
