//! The trace sink: a fixed-capacity ring buffer of [`Event`]s.
//!
//! Capacity is fixed at construction; once full, recording a new event
//! overwrites the oldest and bumps the `dropped` counter, so memory
//! stays bounded no matter how long a run traces (the
//! `SEGSCOPE_OBS_FULL=1` stress pass records 16M events into a much
//! smaller ring and asserts exactly this).

use crate::event::{ClassSet, Event, EventKind};
use crate::metrics::Metrics;
use serde::{Deserialize, Serialize};

/// Default ring capacity when none is given (events).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// A deterministic trace collector: a bounded event ring plus an
/// embedded [`Metrics`] registry.
///
/// Sinks never read wall-clock time; every timestamp comes from the
/// caller's simulated clock, so two runs with the same `(config, seed)`
/// fill a sink with identical bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSink {
    capacity: usize,
    /// Ring storage; grows up to `capacity` then wraps.
    buf: Vec<Event>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
    /// Total events ever offered to `record`.
    recorded: u64,
    /// Embedded counter/histogram/phase registry.
    pub metrics: Metrics,
}

impl TraceSink {
    /// A sink holding at most `capacity` events (`capacity` ≥ 1 is
    /// clamped up from 0).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceSink {
            capacity,
            buf: Vec::new(),
            head: 0,
            dropped: 0,
            recorded: 0,
            metrics: Metrics::new(),
        }
    }

    /// A sink with [`DEFAULT_CAPACITY`].
    #[must_use]
    pub fn new() -> Self {
        TraceSink::with_capacity(DEFAULT_CAPACITY)
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever offered (retained + dropped).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Records `event`, overwriting the oldest retained event when full.
    pub fn record(&mut self, event: Event) {
        self.recorded += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Records `kind` at `at_ps` on track 0.
    pub fn emit(&mut self, at_ps: u64, kind: EventKind) {
        self.record(Event::new(at_ps, kind));
    }

    /// Retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Retained events whose class is in `classes` and whose timestamp
    /// lies in `[from_ps, to_ps]`, oldest first.
    #[must_use]
    pub fn filtered(&self, classes: ClassSet, from_ps: u64, to_ps: u64) -> Vec<Event> {
        self.events()
            .into_iter()
            .filter(|e| classes.contains(e.class()) && e.at_ps >= from_ps && e.at_ps <= to_ps)
            .collect()
    }

    /// Number of retained events of exactly `class`.
    #[must_use]
    pub fn count_class(&self, class: crate::event::EventClass) -> usize {
        self.buf.iter().filter(|e| e.class() == class).count()
    }

    /// Drops every retained event and resets the drop counter; the
    /// metrics registry is left untouched.
    pub fn clear_events(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
        self.recorded = 0;
    }

    /// Appends every retained event of `other` (oldest first) onto this
    /// sink, re-tagging each with `track`, and merges its metrics. Used
    /// by the trial engine to fold per-trial sinks into one trace in
    /// deterministic task order.
    pub fn absorb(&mut self, other: &TraceSink, track: u32) {
        for mut event in other.events() {
            event.track = track;
            self.record(event);
        }
        self.dropped += other.dropped();
        self.metrics.merge(&other.metrics);
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventClass, IrqClass};

    fn tick(at: u64) -> Event {
        Event::new(
            at,
            EventKind::IrqDelivered {
                irq: IrqClass::Timer,
                handler_cost_ps: 10,
            },
        )
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut sink = TraceSink::with_capacity(3);
        for at in 0..5 {
            sink.record(tick(at));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        assert_eq!(sink.recorded(), 5);
        let ats: Vec<u64> = sink.events().iter().map(|e| e.at_ps).collect();
        assert_eq!(ats, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut sink = TraceSink::with_capacity(0);
        sink.record(tick(1));
        sink.record(tick(2));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.dropped(), 1);
        assert_eq!(sink.events()[0].at_ps, 2);
    }

    #[test]
    fn filtering_respects_class_and_window() {
        let mut sink = TraceSink::with_capacity(16);
        sink.emit(
            5,
            EventKind::IrqDelivered {
                irq: IrqClass::Timer,
                handler_cost_ps: 1,
            },
        );
        sink.emit(
            10,
            EventKind::ProbeSample {
                segcnt: 3,
                irq: IrqClass::Timer,
            },
        );
        sink.emit(
            15,
            EventKind::IrqDropped {
                irq: IrqClass::Network,
            },
        );
        let only_irq = sink.filtered(ClassSet::of(EventClass::IrqDelivered), 0, u64::MAX);
        assert_eq!(only_irq.len(), 1);
        assert_eq!(only_irq[0].at_ps, 5);
        let window = sink.filtered(ClassSet::ALL, 6, 14);
        assert_eq!(window.len(), 1);
        assert_eq!(window[0].at_ps, 10);
        assert!(sink.filtered(ClassSet::EMPTY, 0, u64::MAX).is_empty());
    }

    #[test]
    fn absorb_retags_and_accumulates_drops() {
        let mut a = TraceSink::with_capacity(8);
        let mut b = TraceSink::with_capacity(2);
        for at in 0..4 {
            b.record(tick(at));
        }
        b.metrics.incr("x", 2);
        a.absorb(&b, 7);
        assert_eq!(a.len(), 2);
        assert!(a.events().iter().all(|e| e.track == 7));
        assert_eq!(a.dropped(), 2);
        assert_eq!(a.metrics.counter("x"), 2);
    }

    #[test]
    fn clear_events_keeps_metrics() {
        let mut sink = TraceSink::with_capacity(4);
        sink.record(tick(1));
        sink.metrics.incr("kept", 1);
        sink.clear_events();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.metrics.counter("kept"), 1);
    }
}
