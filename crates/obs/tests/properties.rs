//! Ring-buffer property tests: the fixed-capacity ring must behave
//! exactly like an unbounded `Vec` truncated to its last `capacity`
//! elements — same retention order, same drop accounting, and filtering
//! must return exactly what a naive scan over that model returns.

use obs::{ClassSet, Event, EventClass, EventKind, IrqClass, TraceSink};
use proptest::prelude::*;

/// A deterministic event stream: the class cycles through all eleven
/// variants, the timestamp is the caller's.
fn event(at_ps: u64, i: u64) -> Event {
    let irq = IrqClass::ALL[(i % IrqClass::ALL.len() as u64) as usize];
    let kind = match i % 11 {
        0 => EventKind::IrqDelivered {
            irq,
            handler_cost_ps: i,
        },
        1 => EventKind::IrqDropped { irq },
        2 => EventKind::IrqCoalesced { irq },
        3 => EventKind::IrqDuplicated {
            irq,
            ghost_at_ps: at_ps + 1,
        },
        4 => EventKind::SegClear {
            reg: obs::SegRegId::Gs,
            null: i.is_multiple_of(2),
        },
        5 => EventKind::KernelReturn {
            cleared: (i % 4) as u8,
            kernel_span_ps: i,
        },
        6 => EventKind::FreqTransition {
            from_khz: i,
            to_khz: i + 1,
        },
        7 => EventKind::ProbeSample { segcnt: i, irq },
        8 => EventKind::FaultInjected {
            fault: obs::FaultKind::SmtBurst,
        },
        9 => EventKind::TrialStart { index: i },
        _ => EventKind::TrialEnd { index: i },
    };
    Event::new(at_ps, kind)
}

/// The naive model: every event ever recorded, in order.
fn model_tail(model: &[Event], capacity: usize) -> Vec<Event> {
    model[model.len().saturating_sub(capacity)..].to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Retention: the ring always holds exactly the newest `capacity`
    /// events, oldest first, and counts every overwrite.
    #[test]
    fn ring_retains_newest_in_order(
        capacity in 1usize..48,
        stamps in proptest::collection::vec(any::<u64>(), 0..160),
    ) {
        let mut sink = TraceSink::with_capacity(capacity);
        let mut model: Vec<Event> = Vec::new();
        for (i, &at) in stamps.iter().enumerate() {
            let e = event(at, i as u64);
            sink.record(e);
            model.push(e);
            // Invariants hold after every single record, not just at the
            // end — overwrite order is visible mid-stream.
            prop_assert_eq!(sink.events(), model_tail(&model, capacity));
            prop_assert_eq!(sink.len(), model.len().min(capacity));
        }
        prop_assert_eq!(sink.recorded(), model.len() as u64);
        prop_assert_eq!(
            sink.dropped(),
            model.len().saturating_sub(capacity) as u64
        );
    }

    /// Filtering by class set and inclusive time window returns exactly
    /// the events a naive scan over the retained tail returns.
    #[test]
    fn filtering_matches_naive_scan(
        capacity in 1usize..48,
        stamps in proptest::collection::vec(0u64..1000, 0..160),
        class_bits in 1u16..(1 << 11),
        from in 0u64..1000,
        width in 0u64..1000,
    ) {
        let classes = EventClass::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| class_bits & (1 << i) != 0)
            .fold(ClassSet::EMPTY, |set, (_, &c)| set.with(c));
        let to = from.saturating_add(width);
        let mut sink = TraceSink::with_capacity(capacity);
        let mut model: Vec<Event> = Vec::new();
        for (i, &at) in stamps.iter().enumerate() {
            let e = event(at, i as u64);
            sink.record(e);
            model.push(e);
        }
        let expected: Vec<Event> = model_tail(&model, capacity)
            .into_iter()
            .filter(|e| classes.contains(e.class()) && e.at_ps >= from && e.at_ps <= to)
            .collect();
        prop_assert_eq!(sink.filtered(classes, from, to), expected);
        // count_class agrees with a full-window single-class filter.
        for &class in &EventClass::ALL {
            prop_assert_eq!(
                sink.count_class(class),
                sink.filtered(ClassSet::of(class), 0, u64::MAX).len()
            );
        }
    }

    /// Merging sinks preserves order and accounting: absorb is equivalent
    /// to re-recording the other sink's retained events.
    #[test]
    fn absorb_matches_sequential_rerecord(
        cap_a in 1usize..32,
        cap_b in 1usize..32,
        count in 0usize..80,
        track in any::<u32>(),
    ) {
        let mut donor = TraceSink::with_capacity(cap_b);
        for i in 0..count {
            donor.record(event(i as u64 * 7, i as u64));
        }
        let mut merged = TraceSink::with_capacity(cap_a);
        let mut model = TraceSink::with_capacity(cap_a);
        merged.absorb(&donor, track);
        for mut e in donor.events() {
            e.track = track;
            model.record(e);
        }
        prop_assert_eq!(merged.events(), model.events());
        // The donor's own overflow carries over into the merged count.
        prop_assert_eq!(merged.dropped(), model.dropped() + donor.dropped());
    }
}
