//! Gated stress pass: a 16M-event trace must stay within the ring's
//! fixed memory bound, accounted for by the drop counter.
//!
//! Run with:
//!
//! ```sh
//! SEGSCOPE_OBS_FULL=1 cargo test -p obs --release -- --include-ignored
//! ```

use obs::{EventKind, IrqClass, TraceSink};

const STRESS_EVENTS: u64 = 16 * 1024 * 1024;
const CAPACITY: usize = 1 << 16;

#[test]
#[ignore = "stress pass; set SEGSCOPE_OBS_FULL=1 and run with --include-ignored"]
fn sixteen_million_events_stay_bounded() {
    if std::env::var("SEGSCOPE_OBS_FULL").as_deref() != Ok("1") {
        eprintln!("SEGSCOPE_OBS_FULL != 1; skipping stress pass");
        return;
    }
    let mut sink = TraceSink::with_capacity(CAPACITY);
    // A plausible probing event mix on a simulated 4 ms timer timeline;
    // timestamps are simulated picoseconds, strictly monotone.
    for i in 0..STRESS_EVENTS {
        let at_ps = i * 250_000;
        let kind = match i % 4 {
            0 => EventKind::IrqDelivered {
                irq: IrqClass::Timer,
                handler_cost_ps: 300_000,
            },
            1 => EventKind::SegClear {
                reg: obs::SegRegId::Gs,
                null: true,
            },
            2 => EventKind::KernelReturn {
                cleared: 1,
                kernel_span_ps: 300_000,
            },
            _ => EventKind::ProbeSample {
                segcnt: 1000 + i % 64,
                irq: IrqClass::Timer,
            },
        };
        sink.emit(at_ps, kind);
        sink.metrics.incr("stress.events", 1);
    }
    // Memory stays bounded at `capacity` events; everything beyond is
    // accounted for in the drop counter, not silently lost.
    assert_eq!(sink.len(), CAPACITY);
    assert_eq!(sink.recorded(), STRESS_EVENTS);
    assert_eq!(sink.dropped(), STRESS_EVENTS - CAPACITY as u64);
    assert_eq!(sink.metrics.counter("stress.events"), STRESS_EVENTS);
    // The retained tail is the newest `capacity` events, still in order.
    let events = sink.events();
    assert_eq!(
        events.first().expect("non-empty").at_ps,
        (STRESS_EVENTS - CAPACITY as u64) * 250_000
    );
    assert_eq!(
        events.last().expect("non-empty").at_ps,
        (STRESS_EVENTS - 1) * 250_000
    );
    assert!(events.windows(2).all(|w| w[0].at_ps <= w[1].at_ps));
}
