//! `scenario` — the one harness all nine SegScope case studies run on.
//!
//! Every headline experiment of the reproduction used to hand-roll the
//! same four pieces of glue: pick a [`segsim::MachineConfig`], derive
//! per-trial seeds, install the optional [`segsim::FaultPlan`] and
//! [`obs::TraceSink`], and fan the trials out over worker threads. This
//! crate folds that glue into one generic driver behind the
//! [`Scenario`] trait:
//!
//! * [`Scenario::build_machine`] constructs the trial's machine (config
//!   selection, seeding, layout/fault wiring) — and nothing else;
//! * [`Scenario::run_trial`] runs the attack on that machine;
//! * [`Scenario::summarize`] reduces the ordered trial outputs into a
//!   JSON-able report.
//!
//! The driver [`run_scenario`] supplies everything between: seed
//! derivation via [`exec::derive_seed`], the fault-plan override, trace
//! sinks, and the deterministic fan-out — chunked
//! [`exec::parallel_trial_chunks`] through [`Scenario::run_batch`] for
//! untraced runs (so lane-recycling scenarios amortize machine
//! construction per worker), [`exec::parallel_trials_traced`] for traced
//! ones. The determinism contract is inherited wholesale:
//!
//! > **Bit-identical outputs, summaries, and merged traces at any
//! > worker count.**
//!
//! [`DynScenario`] erases the associated types so scenarios can live in
//! a [`Registry`] and be driven by name from the `segscope` CLI with
//! JSON-encoded params.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod merge;

pub use merge::{MergeReport, RunTotals};

use segsim::{FaultLog, FaultPlan, Machine, MachineBatch, MachineConfig};
use serde::{Deserialize, Serialize, Value};
use std::cell::RefCell;
use std::fmt;

/// Per-trial bookkeeping the driver folds into run-level accounting:
/// the ground-truth interrupt-delivery count and the machine's fault
/// audit, captured at the end of the trial.
///
/// Every [`Scenario::run_batch`] implementation returns one of these per
/// trial (use [`TrialStats::of`] on the trial's machine right after the
/// trial body). Like the outputs, stats must be a pure function of
/// `(config, ctx, fault_override)` — the chunk-geometry contract covers
/// them too, and both merge commutatively ([`RunTotals`] and
/// [`FaultLog`] implement [`MergeReport`]), so run-level accounting is
/// schedule-independent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialStats {
    /// Ground-truth interrupt deliveries during the trial.
    pub gt_deliveries: u64,
    /// Fault-injection audit counters of the trial's machine.
    pub fault_log: FaultLog,
}

impl TrialStats {
    /// Captures the stats of a machine that just finished its trial.
    #[must_use]
    pub fn of(machine: &Machine) -> Self {
        TrialStats {
            gt_deliveries: machine.ground_truth().len() as u64,
            fault_log: *machine.fault_log(),
        }
    }
}

/// The context of one trial, handed to [`Scenario::build_machine`] and
/// [`Scenario::run_trial`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialCtx {
    /// Trial index within the experiment (`0..trials`).
    pub index: usize,
    /// The trial's private seed,
    /// `exec::derive_seed(experiment_seed, index)`.
    pub seed: u64,
    /// The experiment-level seed all trial seeds derive from.
    pub experiment_seed: u64,
}

/// One experiment that the generic driver can run: a typed config, a
/// per-trial machine recipe, the trial body, and a summary reduction.
///
/// Implementations must keep [`build_machine`](Scenario::build_machine)
/// limited to machine construction and config-level fault/layout wiring:
/// the driver installs the trace sink and the run-level fault-plan
/// override *after* it, and warm-up spins belong in
/// [`run_trial`](Scenario::run_trial) so traces cover them.
pub trait Scenario: Sync {
    /// The experiment parameters (JSON-roundtrippable; `Default` is what
    /// `segscope run <name>` uses when `--params` is omitted).
    type Config: Clone + fmt::Debug + Default + Serialize + Deserialize + Send + Sync;
    /// What one trial produces.
    type TrialOutput: Send;
    /// The reduced, JSON-able report body.
    type Summary: Serialize;

    /// Unique registry name (snake_case).
    fn name(&self) -> &'static str;

    /// One-line human description (shown by `segscope list`).
    fn describe(&self) -> &'static str;

    /// Resolves the experiment-level seed: an explicit request (the CLI's
    /// `--seed`) beats the scenario's default (typically `config.seed`
    /// for config-seeded experiments, a stable constant otherwise).
    fn experiment_seed(&self, config: &Self::Config, requested: Option<u64>) -> u64;

    /// Resolves the trial count. Repetition-style scenarios honour the
    /// request (the CLI's `--trials`); structured scenarios whose trial
    /// count is a function of the config (sites × visits, users ×
    /// sessions, …) ignore it.
    fn trial_count(&self, config: &Self::Config, requested: Option<usize>) -> usize;

    /// Builds the trial's machine: `Machine::new` plus config-level
    /// fault/layout wiring. No warm-up spins here — the driver installs
    /// the trace sink right after, and traces must cover warm-up.
    fn build_machine(&self, config: &Self::Config, ctx: &TrialCtx) -> Machine;

    /// Runs one trial on the prepared machine.
    fn run_trial(
        &self,
        config: &Self::Config,
        machine: &mut Machine,
        ctx: &TrialCtx,
    ) -> Self::TrialOutput;

    /// Reduces the ordered trial outputs into the report body.
    fn summarize(&self, config: &Self::Config, outputs: &[Self::TrialOutput]) -> Self::Summary;

    /// Runs a *chunk* of consecutive trials — the unit of work one
    /// worker claims in the untraced driver — returning one
    /// `(output, [`TrialStats`])` pair per trial, in order.
    ///
    /// The default is the scalar loop the driver always ran: a fresh
    /// [`build_machine`](Scenario::build_machine) per trial, the
    /// run-level fault override, then
    /// [`run_trial`](Scenario::run_trial). High-volume scenarios
    /// override this to recycle machine lanes (via
    /// [`with_recycled_machine`] or a [`segsim::MachineBatch`] of their
    /// own), amortizing machine construction across the chunk.
    ///
    /// Overrides **must** preserve the chunk-geometry contract: trial
    /// `i`'s pair depends only on `(config, ctxs[i], fault_override)` —
    /// never on the chunk's size, position, or lane assignment. With
    /// [`segsim::Machine::reset`] replaying `Machine::new` exactly,
    /// lane recycling satisfies this for free; the workspace-level
    /// `batch_parity` proptest holds every override to it.
    fn run_batch(
        &self,
        config: &Self::Config,
        ctxs: &[TrialCtx],
        fault_override: Option<FaultPlan>,
    ) -> Vec<(Self::TrialOutput, TrialStats)> {
        ctxs.iter()
            .map(|ctx| {
                let mut machine = self.build_machine(config, ctx);
                if let Some(plan) = fault_override {
                    machine.set_fault_plan(Some(plan));
                }
                let output = self.run_trial(config, &mut machine, ctx);
                (output, TrialStats::of(&machine))
            })
            .collect()
    }
}

/// Runs `f` on this worker thread's recycled machine lane, reset to
/// exactly the state `Machine::new(config, seed)` would produce.
///
/// The lane lives in thread-local storage: a worker's first trial pays
/// the full machine construction (the cache hierarchy alone is hundreds
/// of kilobytes of fresh pages), every later trial on that thread pays
/// only [`segsim::Machine::reset`] — an epoch bump and a reseed. Because
/// reset replays `new`'s boot draw order exactly, the closure observes a
/// machine bit-identical to a fresh one, so outputs stay independent of
/// which thread (or how many) ran which trial.
///
/// Scenario [`run_batch`](Scenario::run_batch) overrides are the
/// intended caller: replay your `build_machine` wiring inside `f`, then
/// run the trial body.
pub fn with_recycled_machine<T>(
    config: MachineConfig,
    seed: u64,
    f: impl FnOnce(&mut Machine) -> T,
) -> T {
    thread_local! {
        static LANE: RefCell<Option<MachineBatch>> = const { RefCell::new(None) };
    }
    LANE.with(|cell| {
        let mut slot = cell.borrow_mut();
        let batch = slot.get_or_insert_with(|| MachineBatch::new_uniform(&config, &[seed]));
        batch.reset_lane(0, config, seed);
        batch.with_lane_mut(0, f)
    })
}

/// Run-level options of the generic driver (the CLI's flags).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunOptions {
    /// Experiment seed override (`None` = the scenario's default).
    pub seed: Option<u64>,
    /// Trial-count override (`None` = the scenario's default; ignored by
    /// structured scenarios).
    pub trials: Option<usize>,
    /// Worker threads (`None` = `SEGSCOPE_THREADS`, else all cores).
    pub threads: Option<usize>,
    /// Per-trial trace-ring capacity in events; `0` disables tracing
    /// entirely (no sinks are installed).
    pub capacity: usize,
    /// Run-level fault-plan override, installed on every trial machine
    /// *after* [`Scenario::build_machine`]. `None` leaves whatever the
    /// config wired in place.
    pub fault_plan: Option<FaultPlan>,
}

impl RunOptions {
    /// Options with tracing enabled at the given ring capacity.
    #[must_use]
    pub fn traced(capacity: usize) -> Self {
        RunOptions {
            capacity,
            ..RunOptions::default()
        }
    }
}

/// The outcome of one driver run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRun<T, U> {
    /// The resolved experiment seed.
    pub seed: u64,
    /// The resolved trial count.
    pub trials: usize,
    /// Ordered per-trial outputs (trial `i` at index `i`).
    pub outputs: Vec<T>,
    /// Ordered per-trial ground-truth interrupt-delivery counts.
    pub gt_deliveries: Vec<u64>,
    /// The merged observability trace (`None` when `capacity` was 0).
    pub sink: Option<obs::TraceSink>,
    /// Run-level additive totals, folded per-trial via [`MergeReport`]
    /// (independent of chunk geometry by the merge laws).
    pub totals: RunTotals,
    /// Fault-injection audit counters merged across all trials, folded
    /// per-trial via [`MergeReport`] like [`totals`](Self::totals).
    pub fault_log: FaultLog,
    /// The scenario's summary over the ordered outputs.
    pub summary: U,
}

impl<T, U> ScenarioRun<T, U> {
    /// Total ground-truth interrupt deliveries across all trials.
    #[must_use]
    pub fn total_gt_deliveries(&self) -> u64 {
        self.totals.ground_truth_deliveries
    }
}

/// The resolved execution geometry of a run: the one place the
/// experiment seed, trial count, worker count, and chunk size are
/// computed from `(scenario, config, opts)`.
///
/// Every consumer of the geometry — the untraced arm of
/// [`run_scenario`], [`checkpoint_manifest`], and
/// [`run_scenario_checkpointed`] — resolves it through
/// [`run_geometry`], so the layers cannot silently drift apart (a
/// manifest cut for one geometry can never be resumed under another
/// without [`exec::ChunkManifest::matches`] noticing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunGeometry {
    /// The resolved experiment seed every trial seed derives from.
    pub experiment_seed: u64,
    /// The resolved trial count.
    pub trials: usize,
    /// Worker threads the run fans out over.
    pub threads: usize,
    /// Consecutive trials per unit of work (chunk) in the untraced
    /// driver. Outputs are chunk-size independent (see
    /// [`Scenario::run_batch`]); the value only trades scheduling
    /// overhead against load balance.
    pub chunk: usize,
}

impl RunGeometry {
    /// The empty [`exec::ChunkManifest`] of a run with this geometry.
    #[must_use]
    pub fn manifest<T>(&self) -> exec::ChunkManifest<T> {
        exec::ChunkManifest::new(self.experiment_seed, self.trials, self.chunk)
    }

    /// Whether `manifest` belongs to a run with this geometry.
    #[must_use]
    pub fn matches<T>(&self, manifest: &exec::ChunkManifest<T>) -> bool {
        manifest.matches(self.experiment_seed, self.trials, self.chunk)
    }
}

/// Resolves the execution geometry [`run_scenario`] (untraced) and the
/// checkpointed driver use for `(scenario, config, opts)`.
#[must_use]
pub fn run_geometry<S: Scenario>(
    scenario: &S,
    config: &S::Config,
    opts: &RunOptions,
) -> RunGeometry {
    let experiment_seed = scenario.experiment_seed(config, opts.seed);
    let trials = scenario.trial_count(config, opts.trials);
    let threads = exec::resolve_threads(opts.threads);
    RunGeometry {
        experiment_seed,
        trials,
        threads,
        chunk: trial_chunk(trials, threads),
    }
}

/// How many consecutive trials one worker claims per queue operation in
/// the untraced (chunked) driver: the batch a recycled lane amortizes
/// machine construction over. Outputs are chunk-size independent (see
/// [`Scenario::run_batch`]); the value only trades scheduling overhead
/// against load balance.
fn trial_chunk(trials: usize, threads: usize) -> usize {
    trials.div_ceil(threads.max(1) * 2).clamp(1, 32)
}

/// Runs `scenario` under `config` and `opts`: derives per-trial seeds,
/// builds each trial's machine, applies the run-level fault-plan
/// override, installs trace sinks (when `opts.capacity > 0`), fans the
/// trials out, and reduces the ordered outputs into the summary.
///
/// Bit-identical at any worker count; with tracing enabled the per-trial
/// wiring matches the layout the attacks' hand-rolled `*_traced`
/// functions used (machine ring of `capacity - 2` events inside the
/// engine's `TrialStart`/`TrialEnd` brackets), so pre-refactor golden
/// traces stay byte-identical.
pub fn run_scenario<S: Scenario>(
    scenario: &S,
    config: &S::Config,
    opts: &RunOptions,
) -> ScenarioRun<S::TrialOutput, S::Summary> {
    let geometry = run_geometry(scenario, config, opts);
    let RunGeometry {
        experiment_seed: seed,
        trials,
        threads,
        chunk,
    } = geometry;
    let make_ctx = |i: usize, trial_seed: u64| TrialCtx {
        index: i,
        seed: trial_seed,
        experiment_seed: seed,
    };
    let (ran, sink) = if opts.capacity == 0 {
        // Untraced runs take the batched path: a chunk of consecutive
        // trials is the unit of work, handed whole to the scenario's
        // `run_batch` so lane-recycling overrides can amortize machine
        // construction across it. Chunk geometry cannot leak into the
        // outputs (see `Scenario::run_batch`), so this arm stays
        // bit-identical to the per-trial fan-out it replaced.
        let ran = exec::parallel_trial_chunks(seed, trials, threads, chunk, |start, seeds| {
            let ctxs: Vec<TrialCtx> = seeds
                .iter()
                .enumerate()
                .map(|(k, &s)| make_ctx(start + k, s))
                .collect();
            scenario.run_batch(config, &ctxs, opts.fault_plan)
        });
        (ran, None)
    } else {
        let capacity = opts.capacity;
        let (ran, sink) =
            exec::parallel_trials_traced(seed, trials, threads, capacity, |i, s, task_sink| {
                let ctx = make_ctx(i, s);
                let mut machine = scenario.build_machine(config, &ctx);
                if let Some(plan) = opts.fault_plan {
                    machine.set_fault_plan(Some(plan));
                }
                // Leave room for the engine's TrialStart/TrialEnd
                // brackets so a machine-full ring cannot overflow the
                // task sink.
                machine.install_trace_sink(obs::TraceSink::with_capacity(
                    capacity.saturating_sub(2).max(1),
                ));
                let output = scenario.run_trial(config, &mut machine, &ctx);
                let machine_sink = machine.take_trace_sink().expect("sink installed");
                task_sink.absorb(&machine_sink, 0);
                let stats = TrialStats::of(&machine);
                (output, stats)
            });
        (ran, Some(sink))
    };
    assemble_run(scenario, config, seed, trials, sink, ran)
}

/// Folds the ordered `(output, stats)` pairs into a [`ScenarioRun`]:
/// the shared tail of the plain and checkpointed drivers.
fn assemble_run<S: Scenario>(
    scenario: &S,
    config: &S::Config,
    seed: u64,
    trials: usize,
    sink: Option<obs::TraceSink>,
    ran: Vec<(S::TrialOutput, TrialStats)>,
) -> ScenarioRun<S::TrialOutput, S::Summary> {
    let mut outputs = Vec::with_capacity(ran.len());
    let mut gt_deliveries = Vec::with_capacity(ran.len());
    let mut totals = RunTotals::empty();
    let mut fault_log = FaultLog::empty();
    for (output, stats) in ran {
        outputs.push(output);
        gt_deliveries.push(stats.gt_deliveries);
        totals.merge(&RunTotals::from_trial(stats.gt_deliveries));
        fault_log.merge(&stats.fault_log);
    }
    let summary = scenario.summarize(config, &outputs);
    ScenarioRun {
        seed,
        trials,
        outputs,
        gt_deliveries,
        sink,
        totals,
        fault_log,
        summary,
    }
}

/// The empty [`exec::ChunkManifest`] a checkpointed run of `scenario`
/// under `config` and `opts` starts from: same experiment seed, trial
/// count, and chunk geometry as [`run_scenario`] would use.
///
/// Callers that resume from disk validate the loaded manifest against
/// this one's geometry first:
///
/// ```ignore
/// let fresh = checkpoint_manifest(&scenario, &config, &opts);
/// let loaded = exec::ChunkManifest::from_json(&text)?;
/// assert!(loaded.matches(fresh.experiment_seed(), fresh.trials(), fresh.chunk()));
/// ```
#[must_use]
pub fn checkpoint_manifest<S: Scenario>(
    scenario: &S,
    config: &S::Config,
    opts: &RunOptions,
) -> exec::ChunkManifest<(S::TrialOutput, TrialStats)> {
    run_geometry(scenario, config, opts).manifest()
}

/// [`run_scenario`], resumable: runs only the chunks `manifest` has not
/// completed, handing the manifest to `persist` after every wave of
/// chunks, then assembles the same [`ScenarioRun`] an uninterrupted
/// [`run_scenario`] with the same inputs produces — bit-identical
/// outputs, totals, and summary, no matter where (or how often) the
/// previous run was killed.
///
/// Checkpointing covers the untraced path only (`opts.capacity` must be
/// 0): a merged trace is not resumable chunk-wise, and long
/// multi-trial campaigns — the runs worth checkpointing — run untraced.
///
/// The manifest must come from [`checkpoint_manifest`] with the same
/// `(scenario, config, opts)`, or from a persisted copy of one (see
/// [`exec::ChunkManifest::matches`] for the loader-side check).
///
/// # Panics
///
/// Panics when `opts.capacity != 0` or when `manifest` does not match
/// the run geometry `(scenario, config, opts)` resolves to.
pub fn run_scenario_checkpointed<S>(
    scenario: &S,
    config: &S::Config,
    opts: &RunOptions,
    manifest: &mut exec::ChunkManifest<(S::TrialOutput, TrialStats)>,
    persist: impl FnMut(&exec::ChunkManifest<(S::TrialOutput, TrialStats)>),
) -> ScenarioRun<S::TrialOutput, S::Summary>
where
    S: Scenario,
    S::TrialOutput: Clone,
{
    assert_eq!(opts.capacity, 0, "checkpointed runs are untraced");
    let geometry = run_geometry(scenario, config, opts);
    let RunGeometry {
        experiment_seed: seed,
        trials,
        threads,
        chunk,
    } = geometry;
    assert!(
        geometry.matches(manifest),
        "manifest (seed {:#x}, {} trials, chunk {}) does not belong to \
         this run (seed {seed:#x}, {trials} trials, chunk {chunk})",
        manifest.experiment_seed(),
        manifest.trials(),
        manifest.chunk(),
    );
    exec::resume_chunks_with(
        manifest,
        threads,
        threads,
        |start, seeds| {
            let ctxs: Vec<TrialCtx> = seeds
                .iter()
                .enumerate()
                .map(|(k, &s)| TrialCtx {
                    index: start + k,
                    seed: s,
                    experiment_seed: seed,
                })
                .collect();
            scenario.run_batch(config, &ctxs, opts.fault_plan)
        },
        persist,
    );
    assemble_run(
        scenario,
        config,
        seed,
        trials,
        None,
        manifest.clone().into_outputs(),
    )
}

/// A structured, JSON-able record of one driver run.
///
/// Deliberately excludes the worker count and everything else
/// schedule-dependent, so reports are byte-identical at any thread
/// count — the determinism contract the parity tests pin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Registry name of the scenario.
    pub scenario: String,
    /// Resolved experiment seed.
    pub seed: u64,
    /// Resolved trial count.
    pub trials: usize,
    /// Total ground-truth interrupt deliveries across trials.
    pub ground_truth_deliveries: u64,
    /// The resolved config the run used, serialized.
    pub params: Value,
    /// The scenario's summary, serialized.
    pub summary: Value,
}

/// Errors of the type-erased driver entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// No registered scenario has the requested name.
    UnknownScenario(String),
    /// The params JSON did not deserialize into the scenario's config.
    Params(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnknownScenario(name) => {
                write!(f, "unknown scenario `{name}` (see `segscope list`)")
            }
            ScenarioError::Params(msg) => write!(f, "invalid scenario params: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// The outcome of a type-erased run: the report plus the merged trace,
/// and the [`MergeReport`]-foldable accounting fragments a campaign
/// layer aggregates across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DynRun {
    /// The structured report.
    pub report: RunReport,
    /// The merged observability trace (`None` when tracing was off).
    pub sink: Option<obs::TraceSink>,
    /// Run-level additive totals (trials, ground-truth deliveries).
    pub totals: RunTotals,
    /// Fault-injection audit counters merged across all trials.
    pub fault_log: FaultLog,
}

/// Object-safe face of [`Scenario`], for registries and the CLI.
///
/// Blanket-implemented for every [`Scenario`]; do not implement it
/// directly.
pub trait DynScenario: Sync {
    /// Registry name.
    fn name(&self) -> &'static str;
    /// One-line description.
    fn describe(&self) -> &'static str;
    /// The scenario's default config, serialized (what `--params`
    /// overrides).
    fn default_params(&self) -> Value;
    /// Checks that `params` deserializes into the scenario's config
    /// type without running anything — the upfront validation a
    /// campaign performs over every grid cell before committing to a
    /// long sweep.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Params`] when `params` does not deserialize into
    /// the scenario's config type.
    fn check_params(&self, params: &Value) -> Result<(), ScenarioError>;
    /// Runs the scenario from serialized params (`None` = defaults).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Params`] when `params` does not deserialize into
    /// the scenario's config type.
    fn run_dyn(&self, params: Option<&Value>, opts: &RunOptions) -> Result<DynRun, ScenarioError>;
}

impl<S: Scenario> DynScenario for S {
    fn name(&self) -> &'static str {
        Scenario::name(self)
    }

    fn describe(&self) -> &'static str {
        Scenario::describe(self)
    }

    fn default_params(&self) -> Value {
        S::Config::default().to_value()
    }

    fn check_params(&self, params: &Value) -> Result<(), ScenarioError> {
        S::Config::from_value(params)
            .map(|_| ())
            .map_err(|e| ScenarioError::Params(e.to_string()))
    }

    fn run_dyn(&self, params: Option<&Value>, opts: &RunOptions) -> Result<DynRun, ScenarioError> {
        let config = match params {
            Some(value) => {
                S::Config::from_value(value).map_err(|e| ScenarioError::Params(e.to_string()))?
            }
            None => S::Config::default(),
        };
        let run = run_scenario(self, &config, opts);
        let report = RunReport {
            scenario: Scenario::name(self).to_owned(),
            seed: run.seed,
            trials: run.trials,
            ground_truth_deliveries: run.total_gt_deliveries(),
            params: config.to_value(),
            summary: run.summary.to_value(),
        };
        Ok(DynRun {
            report,
            sink: run.sink,
            totals: run.totals,
            fault_log: run.fault_log,
        })
    }
}

/// A static table of scenarios, addressable by name.
#[derive(Debug, Clone, Copy)]
pub struct Registry {
    entries: &'static [&'static dyn DynScenario],
}

impl Registry {
    /// Wraps a static scenario table.
    #[must_use]
    pub const fn new(entries: &'static [&'static dyn DynScenario]) -> Self {
        Registry { entries }
    }

    /// All registered scenarios, in registration order.
    #[must_use]
    pub fn entries(&self) -> &'static [&'static dyn DynScenario] {
        self.entries
    }

    /// Number of registered scenarios.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks a scenario up by its registry name.
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<&'static dyn DynScenario> {
        self.entries.iter().copied().find(|s| s.name() == name)
    }

    /// Like [`by_name`](Registry::by_name), as a `Result`.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::UnknownScenario`] when no scenario has `name`.
    pub fn get(&self, name: &str) -> Result<&'static dyn DynScenario, ScenarioError> {
        self.by_name(name)
            .ok_or_else(|| ScenarioError::UnknownScenario(name.to_owned()))
    }
}

impl fmt::Debug for dyn DynScenario + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DynScenario")
            .field("name", &self.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segsim::MachineConfig;

    /// A minimal scenario exercising the driver: each trial spins the
    /// machine briefly and reports its seed and interrupt count.
    struct Probe;

    #[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
    struct ProbeConfig {
        spins: u64,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct ProbeSummary {
        seeds: Vec<u64>,
    }

    impl Scenario for Probe {
        type Config = ProbeConfig;
        type TrialOutput = u64;
        type Summary = ProbeSummary;

        fn name(&self) -> &'static str {
            "probe"
        }

        fn describe(&self) -> &'static str {
            "driver self-test scenario"
        }

        fn experiment_seed(&self, _config: &ProbeConfig, requested: Option<u64>) -> u64 {
            requested.unwrap_or(0x5CE0)
        }

        fn trial_count(&self, _config: &ProbeConfig, requested: Option<usize>) -> usize {
            requested.unwrap_or(3)
        }

        fn build_machine(&self, _config: &ProbeConfig, ctx: &TrialCtx) -> Machine {
            Machine::new(MachineConfig::xiaomi_air13(), ctx.seed)
        }

        fn run_trial(&self, config: &ProbeConfig, machine: &mut Machine, ctx: &TrialCtx) -> u64 {
            machine.spin(config.spins.max(1_000_000));
            ctx.seed
        }

        fn summarize(&self, _config: &ProbeConfig, outputs: &[u64]) -> ProbeSummary {
            ProbeSummary {
                seeds: outputs.to_vec(),
            }
        }
    }

    static TEST_REGISTRY: [&dyn DynScenario; 1] = [&Probe];

    #[test]
    fn driver_derives_trial_seeds() {
        let run = run_scenario(&Probe, &ProbeConfig::default(), &RunOptions::default());
        assert_eq!(run.trials, 3);
        for (i, &seed) in run.outputs.iter().enumerate() {
            assert_eq!(seed, exec::derive_seed(0x5CE0, i as u64));
        }
        assert_eq!(run.summary.seeds, run.outputs);
        assert!(run.sink.is_none(), "capacity 0 disables tracing");
        assert_eq!(run.gt_deliveries.len(), 3);
    }

    #[test]
    fn traced_and_untraced_runs_agree_and_are_thread_invariant() {
        let config = ProbeConfig { spins: 40_000_000 };
        let reference = run_scenario(&Probe, &config, &RunOptions::default());
        for threads in [1, 2, 4] {
            let opts = RunOptions {
                threads: Some(threads),
                capacity: 1 << 12,
                ..RunOptions::default()
            };
            let traced = run_scenario(&Probe, &config, &opts);
            assert_eq!(traced.outputs, reference.outputs);
            assert_eq!(traced.gt_deliveries, reference.gt_deliveries);
            let sink = traced.sink.expect("traced");
            assert!(!sink.is_empty());
        }
    }

    #[test]
    fn traced_sinks_are_bit_identical_across_thread_counts() {
        let config = ProbeConfig { spins: 40_000_000 };
        let run_at = |threads| {
            run_scenario(
                &Probe,
                &config,
                &RunOptions {
                    threads: Some(threads),
                    capacity: 1 << 12,
                    ..RunOptions::default()
                },
            )
        };
        let reference = run_at(1).sink.expect("traced");
        for threads in [2, 4] {
            assert_eq!(run_at(threads).sink.expect("traced"), reference);
        }
    }

    #[test]
    fn dyn_face_round_trips_params_and_builds_reports() {
        let registry = Registry::new(&TEST_REGISTRY);
        assert_eq!(registry.len(), 1);
        assert!(!registry.is_empty());
        let scenario = registry.get("probe").expect("registered");
        assert_eq!(scenario.describe(), "driver self-test scenario");
        assert!(matches!(
            registry.get("nope"),
            Err(ScenarioError::UnknownScenario(_))
        ));
        let params = scenario.default_params();
        let run = scenario
            .run_dyn(Some(&params), &RunOptions::default())
            .expect("params valid");
        assert_eq!(run.report.scenario, "probe");
        assert_eq!(run.report.trials, 3);
        assert_eq!(run.report.seed, 0x5CE0);
        // The report round-trips through JSON.
        let text = serde_json::to_string(&run.report).expect("serializable");
        let back: RunReport = serde_json::from_str(&text).expect("parses");
        assert_eq!(back, run.report);
        // Bad params surface as a typed error.
        let bad = Value::Map(vec![("spins".to_owned(), Value::Str("x".to_owned()))]);
        assert!(matches!(
            scenario.run_dyn(Some(&bad), &RunOptions::default()),
            Err(ScenarioError::Params(_))
        ));
    }

    #[test]
    fn reports_are_identical_across_thread_counts() {
        let registry = Registry::new(&TEST_REGISTRY);
        let scenario = registry.get("probe").expect("registered");
        let report_at = |threads| {
            let opts = RunOptions {
                threads: Some(threads),
                capacity: 1 << 12,
                ..RunOptions::default()
            };
            serde_json::to_string(&scenario.run_dyn(None, &opts).expect("runs").report)
                .expect("serializable")
        };
        let reference = report_at(1);
        for threads in [2, 4] {
            assert_eq!(report_at(threads), reference);
        }
    }

    /// A scenario whose `run_batch` recycles a lane through
    /// [`with_recycled_machine`], mirroring the kaslr/covert overrides.
    struct RecycledProbe;

    impl Scenario for RecycledProbe {
        type Config = ProbeConfig;
        type TrialOutput = u64;
        type Summary = ProbeSummary;

        fn name(&self) -> &'static str {
            "recycled_probe"
        }

        fn describe(&self) -> &'static str {
            "lane-recycling self-test scenario"
        }

        fn experiment_seed(&self, _config: &ProbeConfig, requested: Option<u64>) -> u64 {
            requested.unwrap_or(0x5CE0)
        }

        fn trial_count(&self, _config: &ProbeConfig, requested: Option<usize>) -> usize {
            requested.unwrap_or(12)
        }

        fn build_machine(&self, _config: &ProbeConfig, ctx: &TrialCtx) -> Machine {
            Machine::new(MachineConfig::xiaomi_air13(), ctx.seed)
        }

        fn run_trial(&self, config: &ProbeConfig, machine: &mut Machine, _ctx: &TrialCtx) -> u64 {
            machine.spin(config.spins.max(1_000_000));
            machine.kernel_entries()
        }

        fn run_batch(
            &self,
            config: &ProbeConfig,
            ctxs: &[TrialCtx],
            fault_override: Option<FaultPlan>,
        ) -> Vec<(u64, TrialStats)> {
            ctxs.iter()
                .map(|ctx| {
                    with_recycled_machine(MachineConfig::xiaomi_air13(), ctx.seed, |machine| {
                        if let Some(plan) = fault_override {
                            machine.set_fault_plan(Some(plan));
                        }
                        let output = self.run_trial(config, machine, ctx);
                        (output, TrialStats::of(machine))
                    })
                })
                .collect()
        }

        fn summarize(&self, _config: &ProbeConfig, outputs: &[u64]) -> ProbeSummary {
            ProbeSummary {
                seeds: outputs.to_vec(),
            }
        }
    }

    #[test]
    fn recycled_batch_override_matches_fresh_machines_at_any_geometry() {
        let config = ProbeConfig { spins: 30_000_000 };
        // Reference: fresh machine per trial (what the default
        // `run_batch` would do with RecycledProbe's trial body).
        let reference: Vec<u64> = (0..12)
            .map(|i| {
                let ctx = TrialCtx {
                    index: i,
                    seed: exec::derive_seed(0x5CE0, i as u64),
                    experiment_seed: 0x5CE0,
                };
                let mut machine = RecycledProbe.build_machine(&config, &ctx);
                RecycledProbe.run_trial(&config, &mut machine, &ctx)
            })
            .collect();
        for threads in [1, 2, 4] {
            let run = run_scenario(
                &RecycledProbe,
                &config,
                &RunOptions {
                    threads: Some(threads),
                    ..RunOptions::default()
                },
            );
            assert_eq!(run.outputs, reference, "threads {threads}");
            assert_eq!(run.totals.trials, 12);
            assert_eq!(run.total_gt_deliveries(), run.gt_deliveries.iter().sum());
        }
    }

    #[test]
    fn totals_fold_matches_per_trial_deliveries() {
        let run = run_scenario(&Probe, &ProbeConfig::default(), &RunOptions::default());
        assert_eq!(run.totals.trials as usize, run.trials);
        assert_eq!(
            run.totals.ground_truth_deliveries,
            run.gt_deliveries.iter().sum::<u64>()
        );
    }

    #[test]
    fn fault_plan_override_reaches_the_machine() {
        // The override must change the run (the machine audits faults),
        // while `None` must leave the config-level wiring untouched.
        let config = ProbeConfig { spins: 80_000_000 };
        let nominal = run_scenario(&Probe, &config, &RunOptions::default());
        let faulted = run_scenario(
            &Probe,
            &config,
            &RunOptions {
                fault_plan: Some(FaultPlan::delivery_storm()),
                ..RunOptions::default()
            },
        );
        // Seeds (the outputs) are schedule-independent either way.
        assert_eq!(faulted.outputs, nominal.outputs);
        assert_eq!(nominal.trials, faulted.trials);
    }

    #[test]
    fn checkpointed_run_matches_run_scenario() {
        let config = ProbeConfig { spins: 30_000_000 };
        let opts = RunOptions {
            trials: Some(12),
            threads: Some(2),
            ..RunOptions::default()
        };
        let reference = run_scenario(&RecycledProbe, &config, &opts);
        let mut manifest = checkpoint_manifest(&RecycledProbe, &config, &opts);
        let run = run_scenario_checkpointed(&RecycledProbe, &config, &opts, &mut manifest, |_| {});
        assert!(manifest.is_complete());
        assert_eq!(run, reference);
    }

    #[test]
    fn killed_checkpointed_run_resumes_to_the_identical_report() {
        let config = ProbeConfig { spins: 30_000_000 };
        let opts = RunOptions {
            trials: Some(12),
            threads: Some(2),
            ..RunOptions::default()
        };
        let reference = run_scenario(&RecycledProbe, &config, &opts);

        // First life: run until the first persist, then "die" holding
        // only what persist saw — exactly what a kill leaves on disk.
        let mut first = checkpoint_manifest(&RecycledProbe, &config, &opts);
        let mut saved: Option<String> = None;
        let salvaged = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_scenario_checkpointed(&RecycledProbe, &config, &opts, &mut first, |m| {
                if saved.is_none() {
                    saved = Some(m.to_json());
                    panic!("killed");
                }
            })
        }));
        assert!(salvaged.is_err(), "the kill must interrupt the run");
        let saved = saved.expect("one wave persisted before the kill");

        // Second life: load the persisted manifest, validate it against
        // the run geometry, and resume.
        let mut revived: exec::ChunkManifest<(u64, TrialStats)> =
            exec::ChunkManifest::from_json(&saved).expect("parses");
        let fresh = checkpoint_manifest(&RecycledProbe, &config, &opts);
        assert!(revived.matches(fresh.experiment_seed(), fresh.trials(), fresh.chunk()));
        assert!(!revived.is_complete(), "the kill left work behind");
        let resumed =
            run_scenario_checkpointed(&RecycledProbe, &config, &opts, &mut revived, |_| {});
        assert_eq!(resumed, reference);
        assert_eq!(
            serde_json::to_string(&resumed.summary).expect("serializable"),
            serde_json::to_string(&reference.summary).expect("serializable"),
        );
    }

    /// A scenario that records the chunk partition its `run_batch` sees,
    /// so tests can observe the untraced driver's actual geometry.
    struct ChunkSpy {
        chunks: std::sync::Mutex<Vec<(usize, usize)>>,
    }

    impl Scenario for ChunkSpy {
        type Config = ProbeConfig;
        type TrialOutput = u64;
        type Summary = ProbeSummary;

        fn name(&self) -> &'static str {
            "chunk_spy"
        }

        fn describe(&self) -> &'static str {
            "records the chunk partition the driver hands run_batch"
        }

        fn experiment_seed(&self, _config: &ProbeConfig, requested: Option<u64>) -> u64 {
            requested.unwrap_or(0x5CE0)
        }

        fn trial_count(&self, _config: &ProbeConfig, requested: Option<usize>) -> usize {
            requested.unwrap_or(3)
        }

        fn build_machine(&self, _config: &ProbeConfig, ctx: &TrialCtx) -> Machine {
            Machine::new(MachineConfig::xiaomi_air13(), ctx.seed)
        }

        fn run_trial(&self, _config: &ProbeConfig, _machine: &mut Machine, ctx: &TrialCtx) -> u64 {
            ctx.seed
        }

        fn run_batch(
            &self,
            config: &ProbeConfig,
            ctxs: &[TrialCtx],
            fault_override: Option<FaultPlan>,
        ) -> Vec<(u64, TrialStats)> {
            self.chunks
                .lock()
                .unwrap()
                .push((ctxs[0].index, ctxs.len()));
            ctxs.iter()
                .map(|ctx| {
                    let mut machine = self.build_machine(config, ctx);
                    if let Some(plan) = fault_override {
                        machine.set_fault_plan(Some(plan));
                    }
                    (
                        self.run_trial(config, &mut machine, ctx),
                        TrialStats::of(&machine),
                    )
                })
                .collect()
        }

        fn summarize(&self, _config: &ProbeConfig, outputs: &[u64]) -> ProbeSummary {
            ProbeSummary {
                seeds: outputs.to_vec(),
            }
        }
    }

    /// Satellite of the campaign PR: the chunk geometry is resolved in
    /// exactly one place ([`run_geometry`]), so the untraced driver, the
    /// fresh manifest, and the checkpointed driver can never drift.
    #[test]
    fn geometry_is_shared_by_driver_manifest_and_checkpointed_run() {
        let config = ProbeConfig::default();
        for (trials, threads) in [(3usize, 1usize), (12, 2), (37, 4), (1, 8)] {
            let opts = RunOptions {
                trials: Some(trials),
                threads: Some(threads),
                ..RunOptions::default()
            };
            let geometry = run_geometry(&ChunkSpy::default(), &config, &opts);
            assert_eq!(geometry.experiment_seed, 0x5CE0);
            assert_eq!(geometry.trials, trials);
            assert_eq!(geometry.threads, threads);
            assert_eq!(geometry.chunk, trial_chunk(trials, threads));

            // The fresh checkpoint manifest carries the same geometry.
            let spy = ChunkSpy::default();
            let manifest = checkpoint_manifest(&spy, &config, &opts);
            assert!(geometry.matches(&manifest));
            assert!(manifest.matches(geometry.experiment_seed, geometry.trials, geometry.chunk));

            // And the untraced driver partitions the trials into exactly
            // the chunks that geometry describes.
            let _ = run_scenario(&spy, &config, &opts);
            let mut seen = spy.chunks.lock().unwrap().clone();
            seen.sort_unstable();
            let expected: Vec<(usize, usize)> = (0..trials)
                .step_by(geometry.chunk)
                .map(|start| (start, geometry.chunk.min(trials - start)))
                .collect();
            assert_eq!(seen, expected, "trials {trials}, threads {threads}");
        }
    }

    impl Default for ChunkSpy {
        fn default() -> Self {
            ChunkSpy {
                chunks: std::sync::Mutex::new(Vec::new()),
            }
        }
    }

    #[test]
    fn fault_log_folds_across_trials() {
        // A delivery-storm override must surface in the merged run-level
        // fault log (the campaign layer folds these across cells).
        let config = ProbeConfig { spins: 80_000_000 };
        let nominal = run_scenario(&Probe, &config, &RunOptions::default());
        assert!(nominal.fault_log.is_clean());
        let faulted = run_scenario(
            &Probe,
            &config,
            &RunOptions {
                fault_plan: Some(FaultPlan::delivery_storm()),
                ..RunOptions::default()
            },
        );
        assert!(
            faulted.fault_log.delivery_faults() > 0,
            "a delivery storm over {} deliveries must log faults",
            faulted.total_gt_deliveries(),
        );
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn checkpointed_run_rejects_a_foreign_manifest() {
        let config = ProbeConfig { spins: 30_000_000 };
        let opts = RunOptions {
            trials: Some(12),
            threads: Some(2),
            ..RunOptions::default()
        };
        let mut manifest = exec::ChunkManifest::new(0xBAD, 99, 1);
        let _ = run_scenario_checkpointed(&RecycledProbe, &config, &opts, &mut manifest, |_| {});
    }
}
