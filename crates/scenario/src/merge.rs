//! Commutative report merging — the reduction contract chunked trial
//! runners rely on.
//!
//! The chunked driver ([`run_scenario`](crate::run_scenario) over
//! [`exec::parallel_trial_chunks`]) produces per-chunk partial totals
//! whose grouping depends on the chunk geometry (thread count × chunk
//! size). For the run-level totals to be schedule-independent — the
//! crate's headline determinism contract — the reduction must not care
//! how the trials were grouped or in which order the groups fold:
//! [`MergeReport`] captures exactly that, and the property tests
//! (`tests/merge_props.rs`) hold every implementation to identity,
//! commutativity, and associativity.

use segsim::FaultLog;
use serde::{Deserialize, Serialize};

/// A report fragment that folds commutatively and associatively.
///
/// Laws (pinned by `tests/merge_props.rs` for every implementation
/// here):
///
/// * **identity** — `x.merge(&empty()) == x` and vice versa;
/// * **commutativity** — `x ⊕ y == y ⊕ x`;
/// * **associativity** — `(x ⊕ y) ⊕ z == x ⊕ (y ⊕ z)`.
///
/// Together these make the fold independent of chunk geometry: any
/// partition of the trials into chunks, folded in any order, yields the
/// same total.
pub trait MergeReport: Sized {
    /// The identity element: merging it changes nothing.
    fn empty() -> Self;

    /// Folds `other` into `self`.
    fn merge(&mut self, other: &Self);

    /// Folds an iterator of fragments into one total.
    fn merged<I: IntoIterator<Item = Self>>(parts: I) -> Self {
        let mut total = Self::empty();
        for part in parts {
            total.merge(&part);
        }
        total
    }
}

/// Run-level totals extracted from the per-trial outputs: the additive
/// part of [`RunReport`](crate::RunReport), as a mergeable fragment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunTotals {
    /// Trials folded into this fragment.
    pub trials: u64,
    /// Ground-truth interrupt deliveries across those trials.
    pub ground_truth_deliveries: u64,
}

impl RunTotals {
    /// The fragment one trial contributes.
    #[must_use]
    pub fn from_trial(gt_deliveries: u64) -> Self {
        RunTotals {
            trials: 1,
            ground_truth_deliveries: gt_deliveries,
        }
    }
}

impl MergeReport for RunTotals {
    fn empty() -> Self {
        RunTotals::default()
    }

    fn merge(&mut self, other: &Self) {
        self.trials += other.trials;
        self.ground_truth_deliveries += other.ground_truth_deliveries;
    }
}

/// Fault accounting is pure counters, so per-trial logs merge the same
/// way (conformance sweeps sum them across machines).
impl MergeReport for FaultLog {
    fn empty() -> Self {
        FaultLog::default()
    }

    fn merge(&mut self, other: &Self) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.coalesced += other.coalesced;
        self.jittered += other.jittered;
        self.bursts += other.bursts;
        self.clamped_steps += other.clamped_steps;
    }
}

/// Streaming evaluators tally per-chunk confusion matrices and fold
/// them into the run-level matrix; elementwise addition of counts obeys
/// all three laws, with the zero-class matrix as the shape-adopting
/// identity.
impl MergeReport for nnet::ConfusionMatrix {
    fn empty() -> Self {
        nnet::ConfusionMatrix::empty()
    }

    fn merge(&mut self, other: &Self) {
        nnet::ConfusionMatrix::merge(self, other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_fold_trials_and_deliveries() {
        let total = RunTotals::merged([3u64, 0, 7].into_iter().map(RunTotals::from_trial));
        assert_eq!(
            total,
            RunTotals {
                trials: 3,
                ground_truth_deliveries: 10
            }
        );
        assert_eq!(RunTotals::merged(std::iter::empty()), RunTotals::empty());
    }

    #[test]
    fn fault_logs_merge_field_wise() {
        let a = FaultLog {
            dropped: 1,
            duplicated: 2,
            coalesced: 3,
            jittered: 4,
            bursts: 5,
            clamped_steps: 6,
        };
        let mut total = FaultLog::empty();
        total.merge(&a);
        total.merge(&a);
        assert_eq!(total.dropped, 2);
        assert_eq!(total.clamped_steps, 12);
        assert_eq!(total.delivery_faults(), 12);
    }
}
