//! Property tests pinning the [`MergeReport`] laws — identity,
//! commutativity, associativity — for every implementation. These laws
//! are what make the chunked driver's totals independent of chunk
//! geometry: any partition of the trials, folded in any order, must
//! yield the same run-level total.

use nnet::ConfusionMatrix;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scenario::{MergeReport, RunTotals};
use segsim::FaultLog;

fn totals_from(seed: u64) -> RunTotals {
    let mut rng = SmallRng::seed_from_u64(seed);
    RunTotals {
        trials: rng.gen_range(0..1_000),
        ground_truth_deliveries: rng.gen_range(0..1_000_000),
    }
}

fn fault_log_from(seed: u64) -> FaultLog {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA17);
    FaultLog {
        dropped: rng.gen_range(0..1_000),
        duplicated: rng.gen_range(0..1_000),
        coalesced: rng.gen_range(0..1_000),
        jittered: rng.gen_range(0..1_000),
        bursts: rng.gen_range(0..1_000),
        clamped_steps: rng.gen_range(0..1_000),
    }
}

fn confusion_from(seed: u64, classes: usize) -> ConfusionMatrix {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0F5);
    let mut m = ConfusionMatrix::new(classes);
    for _ in 0..rng.gen_range(0..50usize) {
        let truth = rng.gen_range(0..classes);
        let pred = rng.gen_range(0..classes);
        m.record(truth, pred);
    }
    m
}

/// Asserts the three merge laws for arbitrary `(x, y, z)`.
fn assert_merge_laws<T: MergeReport + Clone + PartialEq + std::fmt::Debug>(x: &T, y: &T, z: &T) {
    // Identity.
    let mut with_empty = x.clone();
    with_empty.merge(&T::empty());
    assert_eq!(&with_empty, x, "right identity");
    let mut empty_with = T::empty();
    empty_with.merge(x);
    assert_eq!(&empty_with, x, "left identity");
    // Commutativity.
    let mut xy = x.clone();
    xy.merge(y);
    let mut yx = y.clone();
    yx.merge(x);
    assert_eq!(xy, yx, "commutativity");
    // Associativity.
    let mut xy_z = xy.clone();
    xy_z.merge(z);
    let mut yz = y.clone();
    yz.merge(z);
    let mut x_yz = x.clone();
    x_yz.merge(&yz);
    assert_eq!(xy_z, x_yz, "associativity");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn run_totals_obey_the_merge_laws(sx in 0u64..100_000, sy in 0u64..100_000, sz in 0u64..100_000) {
        assert_merge_laws(&totals_from(sx), &totals_from(sy), &totals_from(sz));
    }

    #[test]
    fn fault_logs_obey_the_merge_laws(sx in 0u64..100_000, sy in 0u64..100_000, sz in 0u64..100_000) {
        assert_merge_laws(&fault_log_from(sx), &fault_log_from(sy), &fault_log_from(sz));
    }

    /// The streaming evaluator's tally is a [`ConfusionMatrix`]; its
    /// chunk-geometry independence rides on the same laws. The
    /// zero-class [`ConfusionMatrix::empty`] is the identity even
    /// though the operands carry a concrete class count.
    #[test]
    fn confusion_matrices_obey_the_merge_laws(
        sx in 0u64..100_000,
        sy in 0u64..100_000,
        sz in 0u64..100_000,
        classes in 1usize..6,
    ) {
        assert_merge_laws(
            &confusion_from(sx, classes),
            &confusion_from(sy, classes),
            &confusion_from(sz, classes),
        );
    }

    /// Geometry independence, end to end: any partition of a trial
    /// sequence into chunks, with the chunk totals folded in any order,
    /// yields the same run total as the flat fold.
    #[test]
    fn chunked_folds_match_the_flat_fold(
        gts in prop::collection::vec(0u64..10_000, 0..40),
        chunk in 1usize..10,
        rotate in 0usize..10,
    ) {
        let flat = RunTotals::merged(gts.iter().map(|&g| RunTotals::from_trial(g)));
        let mut chunked: Vec<RunTotals> = gts
            .chunks(chunk)
            .map(|c| RunTotals::merged(c.iter().map(|&g| RunTotals::from_trial(g))))
            .collect();
        if !chunked.is_empty() {
            let r = rotate % chunked.len();
            chunked.rotate_left(r); // fold order must not matter
        }
        prop_assert_eq!(RunTotals::merged(chunked), flat);
    }
}
