//! Delivery auditing: detecting when interrupt-path faults broke the
//! probe's per-interrupt exactness.
//!
//! SegScope's headline claim — every interrupt observed exactly once —
//! only holds when the interrupt fabric delivers faithfully. Under an
//! injected [`FaultPlan`](segsim::FaultPlan) with *delivery* faults
//! (drops, duplicates, coalescing) the observed count is wrong by
//! construction; the conformance harness requires that this damage be
//! *detectable* rather than silently reported as a confident count. A
//! [`DeliveryAudit`] reconciles three books:
//!
//! * **observed** — probe samples the attacker collected (one per return
//!   to user space that flipped the marker);
//! * **delivered** — ground-truth records (every handler that actually
//!   ran, including coalesced cascades and ghost duplicates);
//! * the [`FaultLog`](segsim::FaultLog) counters of injected faults.
//!
//! `intended = delivered + dropped − duplicated` reconstructs how many
//! interrupts the nominal machine would have delivered. Comparing it with
//! `observed` yields a typed verdict instead of a wrong-but-confident
//! number.

use segsim::Machine;
use serde::{Deserialize, Serialize};

/// Reconciliation of observed probe samples against the simulator's
/// ground-truth and fault accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryAudit {
    /// Interrupts the probe observed (marker flips / returns to user).
    pub observed: u64,
    /// Interrupts actually delivered to the core (ground-truth records).
    pub delivered: u64,
    /// Interrupts the fault plan dropped before delivery.
    pub dropped: u64,
    /// Ghost duplicates the fault plan injected. Counted at injection
    /// time, so a ghost still pending when the run ends inflates the
    /// spurious estimate by one — an upper bound, never an undercount.
    pub duplicated: u64,
    /// Interrupts merged into an earlier kernel stint by coalescing
    /// (delivered, but with no return to user space of their own).
    pub coalesced: u64,
    /// Synthetic exits inserted by the padding defense. Counted in
    /// `delivered` (they are real ground-truth records) but *not*
    /// intended by the nominal machine — to the probe they are
    /// indistinguishable from interrupts, which is exactly how padding
    /// degrades counting attacks.
    pub padded: u64,
}

/// The audit's verdict on the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditVerdict {
    /// Every intended interrupt was observed exactly once.
    Exact,
    /// Delivery faults broke the correspondence: the probe's counts are
    /// degraded and must not be trusted as exact.
    Degraded {
        /// Intended interrupts the probe never saw (drops + coalesces).
        missed: u64,
        /// Observations with no intended interrupt behind them
        /// (duplicate ghosts).
        spurious: u64,
    },
}

impl DeliveryAudit {
    /// Builds the audit for a finished run on `machine`, given how many
    /// samples the probe observed.
    ///
    /// Call with the same machine the probe ran on, without clearing its
    /// ground truth between the probed window and this call.
    #[must_use]
    pub fn for_machine(machine: &Machine, observed: usize) -> Self {
        let log = machine.fault_log();
        DeliveryAudit {
            observed: observed as u64,
            delivered: machine.ground_truth().len() as u64,
            dropped: log.dropped,
            duplicated: log.duplicated,
            coalesced: log.coalesced,
            padded: machine.padded_exits(),
        }
    }

    /// How many interrupts the nominal (fault-free, defense-free)
    /// machine would have delivered: actual deliveries, plus the dropped
    /// ones, minus the injected ghosts and the synthetic padding exits.
    #[must_use]
    pub fn intended(&self) -> u64 {
        (self.delivered + self.dropped).saturating_sub(self.duplicated + self.padded)
    }

    /// The typed verdict: [`AuditVerdict::Exact`] only when observation
    /// and intent reconcile perfectly with no delivery fault (and no
    /// padding exit) on record.
    #[must_use]
    pub fn verdict(&self) -> AuditVerdict {
        let intended = self.intended();
        let delivery_faults = self.dropped + self.duplicated + self.coalesced + self.padded;
        if delivery_faults == 0 && self.observed == intended {
            return AuditVerdict::Exact;
        }
        AuditVerdict::Degraded {
            missed: intended.saturating_sub(self.observed),
            spurious: self.observed.saturating_sub(intended),
        }
    }

    /// Whether the verdict is [`AuditVerdict::Exact`].
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.verdict() == AuditVerdict::Exact
    }

    /// Reconciles this audit's books against an observability trace
    /// recorded during the same run.
    ///
    /// The trace is a fourth, independent ledger: `IrqDelivered` events
    /// must match the ground truth one for one, and every delivery fault
    /// in the [`FaultLog`](segsim::FaultLog) must have a matching
    /// `IrqDropped`/`IrqDuplicated`/`IrqCoalesced` event. Counts are only
    /// trustworthy when the ring never overflowed, so an over-capacity
    /// sink reports [`TraceReconciliation::ring_overflowed`] instead of
    /// pretending to reconcile.
    #[must_use]
    pub fn reconcile_trace(&self, sink: &obs::TraceSink) -> TraceReconciliation {
        TraceReconciliation {
            delivered_events: sink.count_class(obs::EventClass::IrqDelivered) as u64,
            dropped_events: sink.count_class(obs::EventClass::IrqDropped) as u64,
            duplicated_events: sink.count_class(obs::EventClass::IrqDuplicated) as u64,
            coalesced_events: sink.count_class(obs::EventClass::IrqCoalesced) as u64,
            aex_events: sink.count_class(obs::EventClass::AexExit) as u64,
            pad_events: sink.count_class(obs::EventClass::DefensePad) as u64,
            ring_overflowed: sink.dropped() > 0,
            audit: *self,
        }
    }
}

/// The comparison of a [`DeliveryAudit`]'s books with the event counts of
/// an observability trace from the same run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceReconciliation {
    /// `IrqDelivered` events in the trace.
    pub delivered_events: u64,
    /// `IrqDropped` events in the trace.
    pub dropped_events: u64,
    /// `IrqDuplicated` events in the trace.
    pub duplicated_events: u64,
    /// `IrqCoalesced` events in the trace.
    pub coalesced_events: u64,
    /// `AexExit` events in the trace (AEX-classified deliveries).
    pub aex_events: u64,
    /// `DefensePad` events in the trace (synthetic padding exits).
    pub pad_events: u64,
    /// Whether the ring overwrote events (counts are then lower bounds).
    pub ring_overflowed: bool,
    /// The audit the trace is compared against.
    pub audit: DeliveryAudit,
}

impl TraceReconciliation {
    /// Unmatched kernel-exit events: the absolute difference between the
    /// trace's deliveries (ordinary, AEX, and padding exits together —
    /// one event per ground-truth record) and the ground truth's. Zero
    /// on any faithful trace — including fault-injected runs, since the
    /// trace records what actually happened, not what was intended.
    #[must_use]
    pub fn unmatched_deliveries(&self) -> u64 {
        (self.delivered_events + self.aex_events + self.pad_events).abs_diff(self.audit.delivered)
    }

    /// Whether every ledger agrees: deliveries match ground truth and
    /// each fault-log counter matches its event count. Always `false`
    /// when the ring overflowed (the books can no longer be balanced).
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        !self.ring_overflowed
            && self.unmatched_deliveries() == 0
            && self.dropped_events == self.audit.dropped
            && self.duplicated_events == self.audit.duplicated
            && self.coalesced_events == self.audit.coalesced
            && self.pad_events == self.audit.padded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SegProbe;
    use segsim::{FaultPlan, MachineConfig};

    fn audit_run(cfg: MachineConfig, seed: u64, n: usize) -> DeliveryAudit {
        let mut machine = Machine::new(cfg, seed);
        let mut probe = SegProbe::new();
        let samples = probe.probe_n(&mut machine, n).expect("probe runs");
        DeliveryAudit::for_machine(&machine, samples.len())
    }

    #[test]
    fn clean_run_is_exact() {
        let audit = audit_run(MachineConfig::default(), 0xA0D1, 200);
        assert_eq!(audit.verdict(), AuditVerdict::Exact);
        assert!(audit.is_exact());
        assert_eq!(audit.observed, audit.intended());
    }

    #[test]
    fn timing_storm_stays_exact() {
        let cfg = MachineConfig::default().with_fault_plan(FaultPlan::timing_storm());
        let audit = audit_run(cfg, 0xA0D2, 200);
        assert_eq!(audit.verdict(), AuditVerdict::Exact);
    }

    #[test]
    fn drops_surface_as_missed() {
        let cfg = MachineConfig::default().with_fault_plan(FaultPlan::none().with_drop_prob(0.3));
        let audit = audit_run(cfg, 0xA0D3, 200);
        match audit.verdict() {
            AuditVerdict::Degraded { missed, .. } => assert!(missed > 0, "audit: {audit:?}"),
            AuditVerdict::Exact => panic!("30% drops cannot be exact: {audit:?}"),
        }
    }

    #[test]
    fn duplicates_surface_as_spurious() {
        let cfg =
            MachineConfig::default().with_fault_plan(FaultPlan::none().with_duplicate_prob(0.4));
        let audit = audit_run(cfg, 0xA0D4, 200);
        match audit.verdict() {
            AuditVerdict::Degraded { spurious, .. } => {
                assert!(spurious > 0, "audit: {audit:?}");
            }
            AuditVerdict::Exact => panic!("40% duplicates cannot be exact: {audit:?}"),
        }
    }

    fn traced_audit_run(
        cfg: MachineConfig,
        seed: u64,
        n: usize,
    ) -> (DeliveryAudit, obs::TraceSink) {
        let mut machine = Machine::new(cfg, seed);
        machine.install_trace_sink(obs::TraceSink::with_capacity(1 << 15));
        let mut probe = SegProbe::new();
        let samples = probe.probe_n(&mut machine, n).expect("probe runs");
        let audit = DeliveryAudit::for_machine(&machine, samples.len());
        (audit, machine.take_trace_sink().expect("sink installed"))
    }

    #[test]
    fn clean_trace_reconciles_exactly() {
        let (audit, sink) = traced_audit_run(MachineConfig::default(), 0xA0E1, 150);
        let rec = audit.reconcile_trace(&sink);
        assert!(audit.is_exact());
        assert_eq!(rec.unmatched_deliveries(), 0);
        assert!(rec.is_consistent(), "reconciliation: {rec:?}");
        assert_eq!(rec.dropped_events, 0);
        assert_eq!(rec.duplicated_events, 0);
    }

    #[test]
    fn faulted_trace_contains_matching_fault_events() {
        let cfg = MachineConfig::default().with_fault_plan(
            FaultPlan::none()
                .with_drop_prob(0.25)
                .with_duplicate_prob(0.2),
        );
        let (audit, sink) = traced_audit_run(cfg, 0xA0E2, 150);
        assert!(audit.dropped > 0 && audit.duplicated > 0);
        let rec = audit.reconcile_trace(&sink);
        // The trace mirrors the fault log event for event, so the books
        // balance even though the audit verdict is Degraded.
        assert!(rec.is_consistent(), "reconciliation: {rec:?}");
        assert_eq!(rec.dropped_events, audit.dropped);
        assert_eq!(rec.duplicated_events, audit.duplicated);
        assert_eq!(rec.unmatched_deliveries(), 0);
    }

    #[test]
    fn overflowed_ring_refuses_to_reconcile() {
        let mut machine = Machine::new(MachineConfig::default(), 0xA0E3);
        machine.install_trace_sink(obs::TraceSink::with_capacity(8));
        let mut probe = SegProbe::new();
        let samples = probe.probe_n(&mut machine, 50).expect("probe runs");
        let audit = DeliveryAudit::for_machine(&machine, samples.len());
        let sink = machine.take_trace_sink().unwrap();
        assert!(sink.dropped() > 0, "tiny ring must overflow");
        let rec = audit.reconcile_trace(&sink);
        assert!(rec.ring_overflowed);
        assert!(!rec.is_consistent());
    }

    #[test]
    fn coalescing_surfaces_as_missed() {
        let cfg = MachineConfig::default()
            .with_fault_plan(FaultPlan::none().with_coalesce_window(irq::Ps::from_ms(5)));
        let audit = audit_run(cfg, 0xA0D5, 100);
        match audit.verdict() {
            AuditVerdict::Degraded { missed, .. } => assert!(missed > 0, "audit: {audit:?}"),
            AuditVerdict::Exact => panic!("5 ms coalescing cannot be exact: {audit:?}"),
        }
        assert!(audit.coalesced > 0);
    }
}
