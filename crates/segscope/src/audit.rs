//! Delivery auditing: detecting when interrupt-path faults broke the
//! probe's per-interrupt exactness.
//!
//! SegScope's headline claim — every interrupt observed exactly once —
//! only holds when the interrupt fabric delivers faithfully. Under an
//! injected [`FaultPlan`](segsim::FaultPlan) with *delivery* faults
//! (drops, duplicates, coalescing) the observed count is wrong by
//! construction; the conformance harness requires that this damage be
//! *detectable* rather than silently reported as a confident count. A
//! [`DeliveryAudit`] reconciles three books:
//!
//! * **observed** — probe samples the attacker collected (one per return
//!   to user space that flipped the marker);
//! * **delivered** — ground-truth records (every handler that actually
//!   ran, including coalesced cascades and ghost duplicates);
//! * the [`FaultLog`](segsim::FaultLog) counters of injected faults.
//!
//! `intended = delivered + dropped − duplicated` reconstructs how many
//! interrupts the nominal machine would have delivered. Comparing it with
//! `observed` yields a typed verdict instead of a wrong-but-confident
//! number.

use segsim::Machine;
use serde::{Deserialize, Serialize};

/// Reconciliation of observed probe samples against the simulator's
/// ground-truth and fault accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryAudit {
    /// Interrupts the probe observed (marker flips / returns to user).
    pub observed: u64,
    /// Interrupts actually delivered to the core (ground-truth records).
    pub delivered: u64,
    /// Interrupts the fault plan dropped before delivery.
    pub dropped: u64,
    /// Ghost duplicates the fault plan injected. Counted at injection
    /// time, so a ghost still pending when the run ends inflates the
    /// spurious estimate by one — an upper bound, never an undercount.
    pub duplicated: u64,
    /// Interrupts merged into an earlier kernel stint by coalescing
    /// (delivered, but with no return to user space of their own).
    pub coalesced: u64,
}

/// The audit's verdict on the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditVerdict {
    /// Every intended interrupt was observed exactly once.
    Exact,
    /// Delivery faults broke the correspondence: the probe's counts are
    /// degraded and must not be trusted as exact.
    Degraded {
        /// Intended interrupts the probe never saw (drops + coalesces).
        missed: u64,
        /// Observations with no intended interrupt behind them
        /// (duplicate ghosts).
        spurious: u64,
    },
}

impl DeliveryAudit {
    /// Builds the audit for a finished run on `machine`, given how many
    /// samples the probe observed.
    ///
    /// Call with the same machine the probe ran on, without clearing its
    /// ground truth between the probed window and this call.
    #[must_use]
    pub fn for_machine(machine: &Machine, observed: usize) -> Self {
        let log = machine.fault_log();
        DeliveryAudit {
            observed: observed as u64,
            delivered: machine.ground_truth().len() as u64,
            dropped: log.dropped,
            duplicated: log.duplicated,
            coalesced: log.coalesced,
        }
    }

    /// How many interrupts the nominal (fault-free) machine would have
    /// delivered: actual deliveries, plus the dropped ones, minus the
    /// injected ghosts.
    #[must_use]
    pub fn intended(&self) -> u64 {
        (self.delivered + self.dropped).saturating_sub(self.duplicated)
    }

    /// The typed verdict: [`AuditVerdict::Exact`] only when observation
    /// and intent reconcile perfectly with no delivery fault on record.
    #[must_use]
    pub fn verdict(&self) -> AuditVerdict {
        let intended = self.intended();
        let delivery_faults = self.dropped + self.duplicated + self.coalesced;
        if delivery_faults == 0 && self.observed == intended {
            return AuditVerdict::Exact;
        }
        AuditVerdict::Degraded {
            missed: intended.saturating_sub(self.observed),
            spurious: self.observed.saturating_sub(intended),
        }
    }

    /// Whether the verdict is [`AuditVerdict::Exact`].
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.verdict() == AuditVerdict::Exact
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SegProbe;
    use segsim::{FaultPlan, MachineConfig};

    fn audit_run(cfg: MachineConfig, seed: u64, n: usize) -> DeliveryAudit {
        let mut machine = Machine::new(cfg, seed);
        let mut probe = SegProbe::new();
        let samples = probe.probe_n(&mut machine, n).expect("probe runs");
        DeliveryAudit::for_machine(&machine, samples.len())
    }

    #[test]
    fn clean_run_is_exact() {
        let audit = audit_run(MachineConfig::default(), 0xA0D1, 200);
        assert_eq!(audit.verdict(), AuditVerdict::Exact);
        assert!(audit.is_exact());
        assert_eq!(audit.observed, audit.intended());
    }

    #[test]
    fn timing_storm_stays_exact() {
        let cfg = MachineConfig::default().with_fault_plan(FaultPlan::timing_storm());
        let audit = audit_run(cfg, 0xA0D2, 200);
        assert_eq!(audit.verdict(), AuditVerdict::Exact);
    }

    #[test]
    fn drops_surface_as_missed() {
        let cfg = MachineConfig::default().with_fault_plan(FaultPlan::none().with_drop_prob(0.3));
        let audit = audit_run(cfg, 0xA0D3, 200);
        match audit.verdict() {
            AuditVerdict::Degraded { missed, .. } => assert!(missed > 0, "audit: {audit:?}"),
            AuditVerdict::Exact => panic!("30% drops cannot be exact: {audit:?}"),
        }
    }

    #[test]
    fn duplicates_surface_as_spurious() {
        let cfg =
            MachineConfig::default().with_fault_plan(FaultPlan::none().with_duplicate_prob(0.4));
        let audit = audit_run(cfg, 0xA0D4, 200);
        match audit.verdict() {
            AuditVerdict::Degraded { spurious, .. } => {
                assert!(spurious > 0, "audit: {audit:?}");
            }
            AuditVerdict::Exact => panic!("40% duplicates cannot be exact: {audit:?}"),
        }
    }

    #[test]
    fn coalescing_surfaces_as_missed() {
        let cfg = MachineConfig::default()
            .with_fault_plan(FaultPlan::none().with_coalesce_window(irq::Ps::from_ms(5)));
        let audit = audit_run(cfg, 0xA0D5, 100);
        match audit.verdict() {
            AuditVerdict::Degraded { missed, .. } => assert!(missed > 0, "audit: {audit:?}"),
            AuditVerdict::Exact => panic!("5 ms coalescing cannot be exact: {audit:?}"),
        }
        assert!(audit.coalesced > 0);
    }
}
