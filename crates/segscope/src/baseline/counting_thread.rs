//! The counting-thread timer baseline (Lipp et al. / Schwarz et al.'s
//! optimized-asm variant): a dedicated SMT-sibling thread increments a
//! global counter that the attacker reads as a timestamp.

use segsim::Machine;
use serde::{Deserialize, Serialize};

/// A counting-thread timer.
///
/// Unlike the SegScope timer it needs a second hardware thread, and its
/// readings are disturbed by SMT port contention and (in the cloud)
/// steal time — the stability gap of paper Table III. But it does not
/// need any architectural timer, so it also works under `CR4.TSD`.
///
/// ```
/// use segscope::CountingThreadTimer;
/// use segsim::{Machine, MachineConfig};
///
/// let mut m = Machine::new(MachineConfig::default(), 5);
/// let mut ct = CountingThreadTimer::start(&mut m);
/// m.spin(10_000);
/// assert!(ct.elapsed(&mut m) > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountingThreadTimer {
    started_at_count: u64,
}

impl CountingThreadTimer {
    /// Spawns (conceptually) the sibling counting thread and snapshots its
    /// counter.
    #[must_use]
    pub fn start(machine: &mut Machine) -> Self {
        CountingThreadTimer {
            started_at_count: machine.counting_thread_read(),
        }
    }

    /// Reads the current counter value.
    #[must_use]
    pub fn read(&self, machine: &mut Machine) -> u64 {
        machine.counting_thread_read()
    }

    /// Counter increments since [`CountingThreadTimer::start`].
    #[must_use]
    pub fn elapsed(&mut self, machine: &mut Machine) -> u64 {
        let now = machine.counting_thread_read();
        now.saturating_sub(self.started_at_count)
    }

    /// Times one execution of `f`, returning the counter delta across it.
    #[must_use]
    pub fn time<T>(machine: &mut Machine, f: impl FnOnce(&mut Machine) -> T) -> (T, u64) {
        let before = machine.counting_thread_read();
        let value = f(machine);
        let after = machine.counting_thread_read();
        (value, after.saturating_sub(before))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segsim::MachineConfig;

    #[test]
    fn longer_work_reads_larger() {
        let mut m = Machine::new(MachineConfig::default(), 0xC7);
        let (_, small) = CountingThreadTimer::time(&mut m, |mm| mm.spin(100_000));
        let (_, large) = CountingThreadTimer::time(&mut m, |mm| mm.spin(1_000_000));
        assert!(large > small * 5, "small {small} large {large}");
    }

    #[test]
    fn granularity_matches_machine_parameter() {
        let mut m = Machine::new(MachineConfig::default(), 0xC8);
        let spin = 2_000_000u64;
        let (_, delta) = CountingThreadTimer::time(&mut m, |mm| mm.spin(spin));
        let expected = spin as f64 / m.config().counting_thread_iter_cycles;
        let rel = (delta as f64 - expected).abs() / expected;
        assert!(rel < 0.25, "delta {delta} vs expected {expected}");
    }

    #[test]
    fn works_under_cr4_tsd() {
        // The counting thread is exactly the "build your own timer"
        // fallback: it must work when rdtsc does not.
        let mut m = Machine::new(MachineConfig::default().with_cr4_tsd(true), 0xC9);
        assert!(m.rdtsc().is_err());
        let mut ct = CountingThreadTimer::start(&mut m);
        m.spin(50_000);
        assert!(ct.elapsed(&mut m) > 0);
    }

    #[test]
    fn elapsed_is_monotone() {
        let mut m = Machine::new(MachineConfig::default(), 0xCA);
        let mut ct = CountingThreadTimer::start(&mut m);
        let a = ct.elapsed(&mut m);
        m.spin(500_000);
        let b = ct.elapsed(&mut m);
        assert!(b >= a);
    }
}
