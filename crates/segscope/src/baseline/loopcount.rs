//! The low-resolution loop-counting prober (Lipp et al. style): a
//! self-incrementing counter sampled by a 1 ms-resolution architectural
//! timer every 5 ms; a counter "plunge" below an empirical threshold
//! signals an interrupt.

use crate::stats;
use irq::time::Ps;
use segsim::{Machine, SimError, SpanEnd};
use serde::{Deserialize, Serialize};

/// One sampled counter window (the data behind paper Fig. 5b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoopCountSample {
    /// The counter value accumulated over one sampling window.
    pub counter: u64,
    /// Ground truth: whether any interrupt landed in the window.
    pub interrupted: bool,
}

/// The loop-counting interrupt prober.
///
/// Its sampling period fundamentally caps detection at
/// `1 / sample_interval` interrupts per second (200/s with the paper's
/// 5 ms window) — the saturation visible in paper Table II at HZ ≥ 250.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoopCountProber {
    /// Sampling interval (the paper uses 5 ms).
    pub sample_interval: Ps,
    /// Resolution of the architectural timer used to delimit windows.
    pub clock_resolution: Ps,
    /// Cost of one counter increment + clock check, cycles.
    pub loop_cycles: f64,
    /// Detection threshold: windows whose counter falls below it are
    /// reported as interrupted. `None` until calibrated.
    pub threshold: Option<f64>,
}

impl LoopCountProber {
    /// The paper's configuration: 5 ms windows delimited by a 1 ms timer.
    #[must_use]
    pub fn paper_default() -> Self {
        LoopCountProber {
            sample_interval: Ps::from_ms(5),
            clock_resolution: Ps::from_ms(1),
            loop_cycles: 44.0,
            threshold: None,
        }
    }

    /// Collects one sampling window, returning its counter value and the
    /// ground-truth interruption label.
    ///
    /// # Errors
    ///
    /// [`SimError::TimerRestricted`] when the architectural clock is
    /// unavailable (`CR4.TSD`).
    pub fn sample_window(&self, machine: &mut Machine) -> Result<LoopCountSample, SimError> {
        // The technique needs the (coarse) architectural timer to pace
        // its sampling.
        let _ = machine.clock_read(self.clock_resolution)?;
        let start = machine.now();
        let deadline = start + self.sample_interval;
        let mut cycles = 0.0f64;
        let mut interrupted = false;
        loop {
            let span = machine.run_user_until(deadline);
            cycles += span.cycles;
            match span.ended_by {
                SpanEnd::Interrupt(_) => interrupted = true,
                SpanEnd::Deadline => break,
            }
        }
        Ok(LoopCountSample {
            counter: (cycles / self.loop_cycles) as u64,
            interrupted,
        })
    }

    /// eBPF-style calibration (paper Section III-B): observes `windows`
    /// labeled windows and places the threshold just below the clean
    /// (uninterrupted) cluster — `4σ` under its mean with a small floor —
    /// so any counter plunge is flagged. When no clean window was seen
    /// (HZ ≥ 250 interrupts every window) the threshold sits above the
    /// dirty cluster instead, which is what saturates the detector at one
    /// count per window in paper Table II.
    ///
    /// # Errors
    ///
    /// [`SimError::TimerRestricted`] when the clock is unavailable.
    pub fn calibrate(&mut self, machine: &mut Machine, windows: usize) -> Result<f64, SimError> {
        let mut clean = Vec::new();
        let mut dirty = Vec::new();
        for _ in 0..windows {
            let s = self.sample_window(machine)?;
            if s.interrupted {
                dirty.push(s.counter as f64);
            } else {
                clean.push(s.counter as f64);
            }
        }
        let threshold = match (clean.is_empty(), dirty.is_empty()) {
            (false, _) => {
                let margin = (4.0 * stats::std_dev(&clean)).max(25.0);
                stats::mean(&clean) - margin
            }
            (true, false) => stats::mean(&dirty) + 2.0 * stats::std_dev(&dirty),
            (true, true) => 0.0,
        };
        self.threshold = Some(threshold);
        Ok(threshold)
    }

    /// Runs the prober for `duration`, returning the number of windows
    /// whose counter fell below the threshold (the technique's detection
    /// count; at most one detection per window regardless of how many
    /// interrupts actually landed).
    ///
    /// # Errors
    ///
    /// [`SimError::TimerRestricted`] when the clock is unavailable.
    ///
    /// # Panics
    ///
    /// Panics if the prober has not been calibrated.
    pub fn probe_for(&self, machine: &mut Machine, duration: Ps) -> Result<u64, SimError> {
        let threshold = self.threshold.expect("calibrate the prober first");
        let deadline = machine.now() + duration;
        let mut detections = 0u64;
        while machine.now() + self.sample_interval <= deadline {
            let s = self.sample_window(machine)?;
            if (s.counter as f64) < threshold {
                detections += 1;
            }
        }
        Ok(detections)
    }

    /// Collects `n` labeled windows (the data of paper Fig. 5b).
    ///
    /// # Errors
    ///
    /// [`SimError::TimerRestricted`] when the clock is unavailable.
    pub fn sample_measurements(
        &self,
        machine: &mut Machine,
        n: usize,
    ) -> Result<Vec<LoopCountSample>, SimError> {
        (0..n).map(|_| self.sample_window(machine)).collect()
    }
}

impl Default for LoopCountProber {
    fn default() -> Self {
        LoopCountProber::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segsim::MachineConfig;

    fn machine(seed: u64) -> Machine {
        let mut m = Machine::new(MachineConfig::default(), seed);
        m.spin(200_000_000); // warm the governor
        m
    }

    #[test]
    fn detection_saturates_at_window_rate() {
        // At HZ = 250 every 5 ms window contains ≥ 1 interrupt: detections
        // cap at 200/s regardless of the true rate (paper Table II).
        let mut m = machine(0x10C0);
        let mut prober = LoopCountProber::paper_default();
        prober.calibrate(&mut m, 200).unwrap();
        m.ground_truth_mut().clear();
        let detections = prober.probe_for(&mut m, Ps::from_secs(2)).unwrap();
        let truth = m.ground_truth().len() as u64;
        assert!(truth > 450, "ground truth {truth}");
        assert!(detections <= 400, "cap violated: {detections}");
        assert!(detections > 300, "most windows should plunge: {detections}");
    }

    #[test]
    fn interrupted_windows_plunge_on_average() {
        let mut m = machine(0x10C1);
        let prober = LoopCountProber::paper_default();
        let samples = prober.sample_measurements(&mut m, 400).unwrap();
        let clean: Vec<f64> = samples
            .iter()
            .filter(|s| !s.interrupted)
            .map(|s| s.counter as f64)
            .collect();
        let dirty: Vec<f64> = samples
            .iter()
            .filter(|s| s.interrupted)
            .map(|s| s.counter as f64)
            .collect();
        // At HZ=250, most windows are interrupted; to get clean windows
        // some Poisson luck is required, so guard the comparison.
        if clean.len() >= 10 && dirty.len() >= 10 {
            assert!(
                stats::mean(&dirty) < stats::mean(&clean),
                "dirty {} !< clean {}",
                stats::mean(&dirty),
                stats::mean(&clean)
            );
        }
        // Counter magnitude sanity: ~5 ms at GHz frequencies / ~44 cycles.
        let typical = stats::mean(&dirty);
        assert!(
            (1.0e5..1.0e6).contains(&typical),
            "typical counter {typical}"
        );
    }

    #[test]
    fn requires_architectural_clock() {
        let mut m = Machine::new(MachineConfig::default().with_cr4_tsd(true), 1);
        let prober = LoopCountProber::paper_default();
        assert_eq!(
            prober.sample_window(&mut m).unwrap_err(),
            SimError::TimerRestricted
        );
    }

    #[test]
    #[should_panic(expected = "calibrate")]
    fn probing_uncalibrated_panics() {
        let mut m = machine(0x10C2);
        let prober = LoopCountProber::paper_default();
        let _ = prober.probe_for(&mut m, Ps::from_ms(100));
    }

    #[test]
    fn calibration_sets_threshold_between_classes() {
        let mut m = machine(0x10C3);
        let mut prober = LoopCountProber::paper_default();
        let threshold = prober.calibrate(&mut m, 300).unwrap();
        assert!(threshold > 0.0);
        assert_eq!(prober.threshold, Some(threshold));
    }
}
