//! The timer-based interrupt-probing baselines SegScope is compared
//! against (paper Section III-B, Table II, Fig. 5), and the counting-thread
//! timer baseline (paper Table III).
//!
//! All baselines require architectural timers and therefore fail under
//! `CR4.TSD` — the scenario SegScope was designed for.

mod counting_thread;
mod loopcount;
mod tsjump;

pub use counting_thread::CountingThreadTimer;
pub use loopcount::{LoopCountProber, LoopCountSample};
pub use tsjump::{TsJumpProber, TsJumpSample};
