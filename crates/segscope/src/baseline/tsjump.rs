//! The high-resolution timestamp-jump prober (Schwarz et al. style):
//! read `rdtsc` back-to-back in a loop and report an interrupt whenever
//! consecutive timestamps differ by more than an empirical threshold.

use irq::dist;
use irq::time::Ps;
use rand::Rng;
use segsim::{Machine, SimError, SpanEnd};
use serde::{Deserialize, Serialize};

/// One timestamp-delta measurement (the data behind paper Fig. 5a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TsJumpSample {
    /// The observed timestamp delta, TSC cycles.
    pub delta: u64,
    /// Ground truth: whether an interrupt landed inside the measurement.
    pub interrupted: bool,
}

/// The timestamp-jump interrupt prober.
///
/// Unlike SegScope, the detector is a *threshold test*: occasional
/// heavy-tail stalls (SMIs, cache misses, TLB walks) also exceed the
/// threshold, producing the false positives of paper Table II; and the
/// threshold itself is an empirical, machine-specific constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TsJumpProber {
    /// Detection threshold, TSC cycles (the paper calibrates 1000 via
    /// eBPF).
    pub threshold: u64,
    /// Cost of one probe-loop iteration (two timestamp reads plus the
    /// compare), cycles.
    pub loop_cycles: u64,
}

impl TsJumpProber {
    /// The paper's configuration: threshold 1000 cycles.
    #[must_use]
    pub fn paper_default() -> Self {
        TsJumpProber {
            threshold: 1_000,
            loop_cycles: 52,
        }
    }

    /// Probability that a single *uninterrupted* loop iteration exceeds
    /// the threshold under the machine's noise model (the analytic
    /// false-positive rate per iteration).
    #[must_use]
    pub fn fp_prob_per_iter(&self, machine: &Machine) -> f64 {
        let noise = &machine.config().noise;
        if (self.threshold as f64) >= noise.tail_max {
            return 0.0;
        }
        let thr = (self.threshold as f64).max(noise.tail_min);
        // Tail stalls are log-uniform on [tail_min, tail_max].
        let p_exceed_given_tail =
            (noise.tail_max.ln() - thr.ln()) / (noise.tail_max.ln() - noise.tail_min.ln());
        noise.tail_prob * p_exceed_given_tail.clamp(0.0, 1.0)
    }

    /// Runs the prober for `duration`, returning the number of reported
    /// interrupt detections (true positives at every delivered interrupt —
    /// kernel stints dwarf the threshold — plus threshold-crossing noise).
    ///
    /// Uses the machine's analytic fast path: per uninterrupted span of
    /// `n` iterations, the number of tail-induced detections is
    /// Poisson(`n × fp_prob`).
    ///
    /// # Errors
    ///
    /// [`SimError::TimerRestricted`] when `CR4.TSD` disables `rdtsc` —
    /// the technique simply does not work in the paper's threat model.
    pub fn probe_for(&self, machine: &mut Machine, duration: Ps) -> Result<u64, SimError> {
        // The technique requires the timestamp instruction.
        let _ = machine.rdtsc()?;
        let fp_prob = self.fp_prob_per_iter(machine);
        let deadline = machine.now() + duration;
        let mut detections = 0u64;
        while machine.now() < deadline {
            let span = machine.run_user_until(deadline);
            let iters = span.cycles / self.loop_cycles as f64;
            let lambda = iters * fp_prob;
            detections += dist::poisson(machine.rng_mut(), lambda);
            if let SpanEnd::Interrupt(_) = span.ended_by {
                // The kernel stint inflates one delta far past any sane
                // threshold: a guaranteed (true) detection.
                detections += 1;
            }
        }
        Ok(detections)
    }

    /// Collects labeled timestamp-delta measurements (the data of paper
    /// Fig. 5a): `n_clean` deltas from uninterrupted iterations and
    /// `n_dirty` deltas from iterations an interrupt landed in.
    ///
    /// Clean deltas are drawn from the machine's per-op noise model (loop
    /// cost + Gaussian jitter + the occasional heavy-tail stall); dirty
    /// deltas come from the actual kernel stints of delivered interrupts,
    /// converted to TSC cycles.
    ///
    /// # Errors
    ///
    /// [`SimError::TimerRestricted`] when `rdtsc` is unavailable.
    pub fn sample_measurements(
        &self,
        machine: &mut Machine,
        n_clean: usize,
        n_dirty: usize,
    ) -> Result<Vec<TsJumpSample>, SimError> {
        let _ = machine.rdtsc()?;
        let mut out = Vec::with_capacity(n_clean + n_dirty);
        let noise = machine.config().noise;
        let base = self.loop_cycles as f64;
        for _ in 0..n_clean {
            let rng = machine.rng_mut();
            let mut delta = base + dist::normal(rng, 0.0, noise.op_jitter_std * 1.5).abs();
            if rng.gen::<f64>() < 2.0 * noise.tail_prob {
                let u: f64 = rng.gen();
                delta +=
                    (noise.tail_min.ln() + u * (noise.tail_max.ln() - noise.tail_min.ln())).exp();
            }
            out.push(TsJumpSample {
                delta: delta.round() as u64,
                interrupted: false,
            });
        }
        let base_khz = machine.config().tsc_khz();
        while out.len() < n_clean + n_dirty {
            let span = machine.run_user_until(Ps::MAX);
            if let SpanEnd::Interrupt(irq) = span.ended_by {
                let delta = self.loop_cycles + irq.kernel_span.cycles_at(base_khz);
                out.push(TsJumpSample {
                    delta,
                    interrupted: true,
                });
            }
        }
        Ok(out)
    }
}

impl Default for TsJumpProber {
    fn default() -> Self {
        TsJumpProber::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segsim::MachineConfig;

    fn machine(seed: u64) -> Machine {
        Machine::new(MachineConfig::default(), seed)
    }

    #[test]
    fn detects_more_than_ground_truth() {
        // The prober never misses an interrupt but adds false positives:
        // its count strictly dominates the true count.
        let mut m = machine(0x7541);
        m.ground_truth_mut().clear();
        let prober = TsJumpProber::paper_default();
        let detections = prober.probe_for(&mut m, Ps::from_secs(5)).unwrap();
        let truth = m.ground_truth().len() as u64;
        assert!(
            detections >= truth,
            "detections {detections} < truth {truth}"
        );
        assert!(
            detections > truth + 10,
            "expected visible false positives: {detections} vs {truth}"
        );
    }

    #[test]
    fn requires_rdtsc() {
        let mut m = Machine::new(MachineConfig::default().with_cr4_tsd(true), 1);
        let prober = TsJumpProber::paper_default();
        assert_eq!(
            prober.probe_for(&mut m, Ps::from_ms(100)),
            Err(SimError::TimerRestricted)
        );
    }

    #[test]
    fn fp_prob_reflects_threshold() {
        let m = machine(2);
        let low = TsJumpProber {
            threshold: 700,
            loop_cycles: 52,
        };
        let high = TsJumpProber {
            threshold: 20_000,
            loop_cycles: 52,
        };
        assert!(low.fp_prob_per_iter(&m) > high.fp_prob_per_iter(&m));
        let impossible = TsJumpProber {
            threshold: 1_000_000,
            loop_cycles: 52,
        };
        assert_eq!(impossible.fp_prob_per_iter(&m), 0.0);
    }

    #[test]
    fn interrupted_measurements_have_huge_deltas() {
        let mut m = machine(3);
        let prober = TsJumpProber::paper_default();
        let samples = prober.sample_measurements(&mut m, 1_000, 200).unwrap();
        let interrupted: Vec<_> = samples.iter().filter(|s| s.interrupted).collect();
        assert_eq!(interrupted.len(), 200);
        for s in &interrupted {
            assert!(
                s.delta > prober.threshold,
                "interrupted delta {} under threshold",
                s.delta
            );
        }
        // The *typical* clean delta sits near the loop cost, far below the
        // threshold — but the rare tail (seen at scale) crosses it, which
        // is where Table II's false positives come from.
        let clean_typical = samples
            .iter()
            .filter(|s| !s.interrupted)
            .map(|s| s.delta)
            .sum::<u64>() as f64
            / 1_000.0;
        assert!(clean_typical < 200.0, "typical clean delta {clean_typical}");
    }

    #[test]
    fn clean_tail_crosses_threshold_at_scale() {
        let mut m = machine(4);
        let prober = TsJumpProber::paper_default();
        // ~2 * tail_prob per measurement: 3M draws expect ~1.8 crossings.
        let samples = prober.sample_measurements(&mut m, 3_000_000, 0).unwrap();
        let crossings = samples
            .iter()
            .filter(|s| !s.interrupted && s.delta > prober.threshold)
            .count();
        assert!(crossings >= 1, "expected at least one tail false positive");
    }
}
