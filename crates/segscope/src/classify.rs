//! Separating interrupt kinds by their SegCnt statistics (paper Fig. 6).

use crate::probe::ProbeSample;
use crate::stats::ZScoreFilter;
use irq::InterruptKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Classifies probe samples into "timer edge" vs "other interrupt" purely
/// from attacker-visible SegCnt values.
///
/// Timer interrupts fire at a fixed period, so their SegCnt concentrates
/// around `period × freq / k`; rescheduling IPIs, PMIs and device
/// interrupts land *inside* an interval, splitting it into shorter pieces
/// whose SegCnt scatters low. An iteratively-fit Z-score band around the
/// dominant mode therefore retains (almost exactly) the timer samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimerEdgeClassifier {
    filter: ZScoreFilter,
}

impl TimerEdgeClassifier {
    /// Fits the classifier on attacker-visible SegCnt values.
    #[must_use]
    pub fn fit(segcnts: &[f64]) -> Self {
        TimerEdgeClassifier {
            filter: ZScoreFilter::fit_iterative(segcnts, 2.0, 8),
        }
    }

    /// Whether a SegCnt value is classified as a timer edge.
    #[must_use]
    pub fn is_timer_edge(&self, segcnt: f64) -> bool {
        self.filter.retains(segcnt)
    }

    /// The underlying Z-score filter.
    #[must_use]
    pub fn filter(&self) -> &ZScoreFilter {
        &self.filter
    }

    /// Evaluates the classifier against ground-truth-labeled samples,
    /// returning (true-positive rate on timer samples, false-positive
    /// rate on non-timer samples).
    #[must_use]
    pub fn evaluate(&self, samples: &[ProbeSample]) -> (f64, f64) {
        let mut timer_total = 0u32;
        let mut timer_hit = 0u32;
        let mut other_total = 0u32;
        let mut other_hit = 0u32;
        for s in samples {
            let retained = self.is_timer_edge(s.segcnt as f64);
            if s.kind == InterruptKind::Timer {
                timer_total += 1;
                timer_hit += u32::from(retained);
            } else {
                other_total += 1;
                other_hit += u32::from(retained);
            }
        }
        let tpr = if timer_total == 0 {
            0.0
        } else {
            f64::from(timer_hit) / f64::from(timer_total)
        };
        let fpr = if other_total == 0 {
            0.0
        } else {
            f64::from(other_hit) / f64::from(other_total)
        };
        (tpr, fpr)
    }
}

/// Per-kind SegCnt statistics (the data behind paper Fig. 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct KindHistogram {
    /// Per-kind (count, mean SegCnt, std SegCnt).
    pub by_kind: BTreeMap<InterruptKind, (usize, f64, f64)>,
}

impl KindHistogram {
    /// Builds the per-kind summary from ground-truth-labeled samples.
    #[must_use]
    pub fn from_samples(samples: &[ProbeSample]) -> Self {
        let mut buckets: BTreeMap<InterruptKind, Vec<f64>> = BTreeMap::new();
        for s in samples {
            buckets.entry(s.kind).or_default().push(s.segcnt as f64);
        }
        let by_kind = buckets
            .into_iter()
            .map(|(kind, xs)| {
                (
                    kind,
                    (
                        xs.len(),
                        crate::stats::mean(&xs),
                        crate::stats::std_dev(&xs),
                    ),
                )
            })
            .collect();
        KindHistogram { by_kind }
    }

    /// The kind with the most samples (the timer on any ticking system).
    #[must_use]
    pub fn dominant_kind(&self) -> Option<InterruptKind> {
        self.by_kind
            .iter()
            .max_by_key(|(_, (count, _, _))| *count)
            .map(|(&kind, _)| kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::SegProbe;
    use segsim::{Machine, MachineConfig};

    fn samples(seed: u64, n: usize) -> (Vec<ProbeSample>, Machine) {
        // More non-timer activity so both classes are populated.
        let cfg = MachineConfig {
            pmi_rate_hz: 5.0,
            resched_rate_hz: 5.0,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg, seed);
        m.spin(200_000_000); // warm up the governor
                             // Trace only the probed window so per-kind ground-truth counts
                             // can be compared against the classifier's counts exactly.
        m.ground_truth_mut().clear();
        let samples = SegProbe::new().probe_n(&mut m, n).unwrap();
        (samples, m)
    }

    #[test]
    fn timer_dominates_and_concentrates() {
        let (samples, machine) = samples(0xC1A5, 400);
        let hist = KindHistogram::from_samples(&samples);
        assert_eq!(hist.dominant_kind(), Some(InterruptKind::Timer));
        // The histogram is not merely non-empty: its per-kind counts match
        // the simulator's ground truth delivery-for-delivery.
        let truth = machine.ground_truth().count_by_kind();
        for (&kind, &(count, _, _)) in &hist.by_kind {
            assert_eq!(
                count, truth[&kind],
                "{kind} histogram count {count} != ground truth {}",
                truth[&kind]
            );
        }
        assert_eq!(hist.by_kind.len(), truth.len(), "kinds differ from truth");
        let (_, timer_mean, timer_std) = hist.by_kind[&InterruptKind::Timer];
        assert!(
            timer_std / timer_mean < 0.2,
            "timer rel-std {}",
            timer_std / timer_mean
        );
        // Non-timer kinds have clearly lower mean SegCnt (they cut
        // intervals short).
        for (&kind, &(count, mean, _)) in &hist.by_kind {
            if kind != InterruptKind::Timer && count >= 5 {
                assert!(
                    mean < timer_mean * 0.9,
                    "{kind} mean {mean} vs timer {timer_mean}"
                );
            }
        }
    }

    #[test]
    fn classifier_separates_timer_edges() {
        let (samples, machine) = samples(0xC1A6, 500);
        let segcnts: Vec<f64> = samples.iter().map(|s| s.segcnt as f64).collect();
        let classifier = TimerEdgeClassifier::fit(&segcnts);
        let (tpr, fpr) = classifier.evaluate(&samples);
        assert!(tpr > 0.9, "timer retention {tpr}");
        assert!(fpr < 0.3, "non-timer leakage {fpr}");
        assert!(tpr > fpr + 0.5, "separation too weak: tpr {tpr} fpr {fpr}");
        // The number of samples the classifier retains tracks the number
        // of timer interrupts the machine actually delivered.
        let retained = samples
            .iter()
            .filter(|s| classifier.is_timer_edge(s.segcnt as f64))
            .count();
        let truth_timers = machine.ground_truth().of_kind(InterruptKind::Timer).count();
        let slack = truth_timers / 10;
        assert!(
            retained.abs_diff(truth_timers) <= slack,
            "classifier retained {retained}, ground truth delivered {truth_timers} timers"
        );
    }

    #[test]
    fn histogram_counts_sum_to_total() {
        let (samples, machine) = samples(0xC1A7, 200);
        let hist = KindHistogram::from_samples(&samples);
        let total: usize = hist.by_kind.values().map(|(c, _, _)| c).sum();
        assert_eq!(total, samples.len());
        // One observation per delivered interrupt: the histogram total is
        // also the ground-truth delivery count for the probed window.
        assert_eq!(total, machine.ground_truth().len());
    }
}
