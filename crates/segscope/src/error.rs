//! Errors reported by the SegScope probing and timing APIs.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Failure modes of the SegScope probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeError {
    /// The machine restricts unprivileged segment-register writes, so the
    /// marker cannot be planted (the restriction mitigation from the
    /// paper's Discussion section).
    SegmentWriteDenied,
    /// No footprint appeared within the wait bound: the machine preserves
    /// selectors across privilege-level returns (the future-architecture
    /// mitigation) or no interrupts arrive at all.
    MitigatedMachine,
    /// Not enough samples survived filtering to produce a calibration.
    InsufficientSamples {
        /// How many samples were available.
        got: usize,
        /// How many were required.
        needed: usize,
    },
}

impl fmt::Display for ProbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeError::SegmentWriteDenied => {
                write!(f, "segment-register writes are restricted on this machine")
            }
            ProbeError::MitigatedMachine => write!(
                f,
                "no segment footprint observed: selectors preserved or interrupts absent"
            ),
            ProbeError::InsufficientSamples { got, needed } => {
                write!(
                    f,
                    "insufficient samples after filtering: got {got}, needed {needed}"
                )
            }
        }
    }
}

impl Error for ProbeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        assert!(ProbeError::SegmentWriteDenied
            .to_string()
            .contains("restricted"));
        assert!(ProbeError::MitigatedMachine
            .to_string()
            .contains("footprint"));
        let e = ProbeError::InsufficientSamples { got: 3, needed: 10 };
        assert!(e.to_string().contains("got 3"));
    }

    #[test]
    fn is_error_send_sync() {
        fn check<T: Error + Send + Sync>() {}
        check::<ProbeError>();
    }
}
